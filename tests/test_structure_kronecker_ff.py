"""Tests for the Kronecker and Forest Fire generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphstats import average_clustering
from repro.structure import (
    ForestFire,
    KroneckerGenerator,
    RMat,
    create_generator,
)


class TestKronecker:
    INITIATOR = [[0.9, 0.5], [0.5, 0.2]]

    def test_power_of_side_required(self):
        generator = KroneckerGenerator(
            seed=0, initiator=self.INITIATOR
        )
        with pytest.raises(ValueError, match="power of 2"):
            generator.run(1000)

    def test_runs_at_power_of_two(self):
        generator = KroneckerGenerator(
            seed=0, initiator=self.INITIATOR, edge_factor=8
        )
        table = generator.run(512)
        assert table.num_tail_nodes == 512
        assert table.num_edges > 0

    def test_three_by_three_initiator(self):
        initiator = np.full((3, 3), 1.0 / 9)
        generator = KroneckerGenerator(
            seed=1, initiator=initiator, edge_factor=4
        )
        table = generator.run(81)  # 3^4
        assert table.num_tail_nodes == 81

    def test_uniform_initiator_like_er(self):
        """A uniform initiator gives near-uniform degrees (no hubs)."""
        initiator = np.full((2, 2), 0.25)
        generator = KroneckerGenerator(
            seed=1, initiator=initiator, edge_factor=8
        )
        degrees = generator.run(1024).degrees()
        assert degrees.max() < 6 * max(degrees.mean(), 1)

    def test_skewed_initiator_makes_hubs(self):
        generator = KroneckerGenerator(
            seed=1, initiator=self.INITIATOR, edge_factor=8
        )
        degrees = generator.run(1024).degrees()
        assert degrees.max() > 8 * degrees.mean()

    def test_validates_initiator(self):
        with pytest.raises(ValueError, match="square"):
            KroneckerGenerator(seed=0, initiator=[[0.5, 0.5]])
        with pytest.raises(ValueError):
            KroneckerGenerator(seed=0, initiator=[[1.0]])
        with pytest.raises(ValueError):
            KroneckerGenerator(
                seed=0, initiator=[[-1.0, 1.0], [1.0, 1.0]]
            )

    def test_deterministic(self):
        a = KroneckerGenerator(
            seed=3, initiator=self.INITIATOR
        ).run(256)
        b = KroneckerGenerator(
            seed=3, initiator=self.INITIATOR
        ).run(256)
        assert a == b

    def test_registered(self):
        generator = create_generator(
            "kronecker", seed=0, initiator=self.INITIATOR
        )
        assert generator.run(64).num_edges > 0

    def test_rmat_is_special_case_shape(self):
        """A 2x2 Kronecker with R-MAT weights produces a similar degree
        profile to RMat itself (not identical draws — different
        sampling streams — but the same heavy-tail shape)."""
        initiator = [[0.57, 0.19], [0.19, 0.05]]
        kron = KroneckerGenerator(
            seed=4, initiator=initiator, edge_factor=16
        ).run(1024)
        rmat = RMat(seed=4).run_scale(10)
        from repro.stats import fit_power_law_exponent

        gamma_k = fit_power_law_exponent(kron.degrees(), xmin=4)
        gamma_r = fit_power_law_exponent(rmat.degrees(), xmin=4)
        assert abs(gamma_k - gamma_r) < 0.8


class TestForestFire:
    def test_connected_growth(self):
        table = ForestFire(seed=1, p=0.3).run(500)
        from repro.graphstats import largest_component_fraction

        assert largest_component_fraction(table) == 1.0

    def test_clustering_present(self):
        table = ForestFire(seed=1, p=0.35).run(800)
        assert average_clustering(table) > 0.15

    def test_heavier_burning_denser(self):
        sparse = ForestFire(seed=2, p=0.2).run(600)
        dense = ForestFire(seed=2, p=0.45).run(600)
        assert dense.num_edges > sparse.num_edges

    def test_max_burn_cap(self):
        capped = ForestFire(seed=3, p=0.45, max_burn=3).run(600)
        # Each arriving node adds at most max_burn edges.
        assert capped.num_edges <= 3 * 600

    def test_validates_p(self):
        with pytest.raises(ValueError):
            ForestFire(seed=0, p=1.0)

    def test_deterministic(self):
        a = ForestFire(seed=5, p=0.3).run(300)
        b = ForestFire(seed=5, p=0.3).run(300)
        assert a == b

    def test_tiny_graphs(self):
        assert ForestFire(seed=0).run(0).num_edges == 0
        assert ForestFire(seed=0).run(1).num_edges == 0
        assert ForestFire(seed=0).run(2).num_edges == 1

    def test_registered(self):
        generator = create_generator("forest_fire", seed=0, p=0.3)
        assert generator.run(100).num_edges >= 99


class TestHyperbolic:
    from repro.structure import HyperbolicGenerator

    @pytest.fixture(scope="class")
    def graph(self):
        from repro.structure import HyperbolicGenerator

        return HyperbolicGenerator(
            seed=1, avg_degree=10, gamma=2.5
        ).run(1500)

    def test_geometry_induces_clustering(self, graph):
        assert average_clustering(graph) > 0.4

    def test_heavy_tail(self, graph):
        from repro.stats import fit_power_law_exponent

        degrees = graph.degrees()
        assert degrees.max() > 10 * degrees.mean()
        gamma = fit_power_law_exponent(degrees, xmin=3)
        assert 1.8 < gamma < 3.5

    def test_mean_degree_calibration(self, graph):
        # Pilot calibration is rough; within a factor ~2 of target.
        mean = graph.degrees().mean()
        assert 4 <= mean <= 20

    def test_deterministic(self):
        from repro.structure import HyperbolicGenerator

        a = HyperbolicGenerator(seed=2, avg_degree=8).run(400)
        b = HyperbolicGenerator(seed=2, avg_degree=8).run(400)
        assert a == b

    def test_rejects_bad_gamma(self):
        from repro.structure import HyperbolicGenerator

        with pytest.raises(ValueError, match="gamma"):
            HyperbolicGenerator(seed=0, gamma=2.0)

    def test_tiny(self):
        from repro.structure import HyperbolicGenerator

        assert HyperbolicGenerator(seed=0).run(1).num_edges == 0

    def test_registered(self):
        generator = create_generator("hyperbolic", seed=0, avg_degree=6)
        assert generator.run(300).num_edges > 0
