"""Out-of-core sharded generation: equivalence with the in-memory path.

The load-bearing claim of ``core/sharded.py`` is *byte-identity*: for
any shard size and worker count, streaming the pipeline per id-range
shard into the existing sinks writes exactly the bytes the in-memory
``export_graph`` writes.  These tests pin that claim on three zoo
recipes (covering chunkable structures, sequential structures, strict
cardinalities, and both correlated matching variants), plus the spool
and manifest-merge layers underneath it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    GraphGenerator,
    ShardedError,
    ShardedExecutor,
    execute_sharded,
    parse_memory_budget,
)
from repro.core.schema import (
    Cardinality,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.core.sharded import shard_rows_for_budget
from repro.io import (
    TableSpool,
    export_graph,
    make_sink,
    make_source,
    merge_shard_manifests,
)
from repro.scenarios import compile_scenario
from repro.scenarios.zoo import load_zoo

# Reduced scales keep each recipe fast while exercising multi-shard
# paths; recommender keeps its recipe scale because head_nodes is baked
# into the structure params.
RECIPE_SCALES = {
    "social_network": {"Person": 220},
    "web_graph_rmat": {"Page": 512},
    "recommender_bipartite": None,
}


@pytest.fixture(scope="module")
def compiled_recipes():
    return {
        name: compile_scenario(load_zoo(name), scale=scale)
        for name, scale in RECIPE_SCALES.items()
    }


@pytest.fixture(scope="module")
def serial_graphs(compiled_recipes):
    return {
        name: GraphGenerator(
            c.schema, c.scale, seed=c.seed
        ).generate()
        for name, c in compiled_recipes.items()
    }


def _tree_bytes(root):
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _run_sharded(compiled, sink, shard_rows, workers, spool_dir,
                 backend="thread"):
    result = ShardedExecutor(
        compiled.schema,
        compiled.scale,
        seed=compiled.seed,
        shard_rows=shard_rows,
        workers=workers,
        spool_dir=spool_dir,
        backend=backend,
    ).run(sink=sink)
    result.cleanup()
    return result


WHOLE = 10**9  # one shard covers the whole graph


class TestSinkByteIdentity:
    """Sharded sink output == in-memory export, byte for byte."""

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "graphml", "edgelist"])
    @pytest.mark.parametrize("compress", [None, "gzip"])
    def test_social_network_matrix(
        self, compiled_recipes, serial_graphs, tmp_path, fmt, compress
    ):
        self._assert_matrix(
            compiled_recipes["social_network"],
            serial_graphs["social_network"],
            tmp_path, fmt, compress,
            shard_sizes=(97, 1024, WHOLE),
        )

    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_web_graph_rmat(
        self, compiled_recipes, serial_graphs, tmp_path, fmt
    ):
        self._assert_matrix(
            compiled_recipes["web_graph_rmat"],
            serial_graphs["web_graph_rmat"],
            tmp_path, fmt, None,
            shard_sizes=(97, 1024, WHOLE),
        )

    @pytest.mark.parametrize("compress", [None, "gzip"])
    def test_recommender_bipartite(
        self, compiled_recipes, serial_graphs, tmp_path, compress
    ):
        self._assert_matrix(
            compiled_recipes["recommender_bipartite"],
            serial_graphs["recommender_bipartite"],
            tmp_path, "csv", compress,
            shard_sizes=(1031, WHOLE),
        )

    @staticmethod
    def _assert_matrix(compiled, serial, tmp_path, fmt, compress,
                       shard_sizes):
        ref = tmp_path / "ref"
        export_graph(serial, make_sink(fmt, ref, compress=compress))
        expected = _tree_bytes(ref)
        for shard_rows in shard_sizes:
            for workers in (1, 2):
                out = tmp_path / f"s{shard_rows}w{workers}"
                _run_sharded(
                    compiled,
                    make_sink(fmt, out, compress=compress),
                    shard_rows, workers,
                    tmp_path / f"spool{shard_rows}w{workers}",
                )
                got = _tree_bytes(out)
                assert got.keys() == expected.keys(), (
                    fmt, compress, shard_rows, workers
                )
                for key in expected:
                    assert got[key] == expected[key], (
                        fmt, compress, shard_rows, workers, key
                    )


class TestShardedTables:
    """Table-level equality and round-trips beyond the sink bytes."""

    def test_materialize_equals_serial(
        self, compiled_recipes, serial_graphs, tmp_path
    ):
        compiled = compiled_recipes["social_network"]
        serial = serial_graphs["social_network"]
        result = ShardedExecutor(
            compiled.schema, compiled.scale, seed=compiled.seed,
            shard_rows=53, spool_dir=tmp_path / "spool",
        ).run()
        graph = result.materialize()
        assert graph.node_counts == serial.node_counts
        for key, table in serial.node_properties.items():
            got = graph.node_properties[key]
            assert got.values.dtype == table.values.dtype
            assert list(got.values) == list(table.values)
        for key, table in serial.edge_tables.items():
            assert graph.edge_tables[key] == table
        for key, table in serial.edge_properties.items():
            assert np.array_equal(
                np.asarray(graph.edge_properties[key].values),
                np.asarray(table.values),
            )
        result.cleanup()

    def test_source_round_trip(self, compiled_recipes, tmp_path):
        """sharded run → sink → GraphSource reads the serial tables."""
        compiled = compiled_recipes["social_network"]
        out = tmp_path / "out"
        execute_sharded(
            compiled.schema, compiled.scale, seed=compiled.seed,
            sink=make_sink("csv", out), shard_rows=64,
            spool_dir=tmp_path / "spool",
        ).cleanup()
        source = make_source("csv", out)
        serial = GraphGenerator(
            compiled.schema, compiled.scale, seed=compiled.seed
        ).generate()
        knows = source.read_edge_table("knows")
        assert np.array_equal(knows.tails, serial.edges("knows").tails)
        assert np.array_equal(knows.heads, serial.edges("knows").heads)
        country = source.read_property_table("Person.country")
        assert list(country.values) == list(
            serial.node_property("Person", "country").values
        )

    def test_memory_budget_selects_shard_rows(self):
        assert parse_memory_budget("1KB") == 1024
        assert parse_memory_budget("512MB") == 512 * 1024**2
        assert parse_memory_budget("2GiB") == 2 * 1024**3
        assert parse_memory_budget(4096) == 4096
        assert shard_rows_for_budget(parse_memory_budget("64MB")) == (
            64 * 1024**2 // 512
        )
        # Tiny budgets clamp to the floor instead of degenerating.
        assert shard_rows_for_budget(1) == 1024
        with pytest.raises(ValueError):
            parse_memory_budget("a lot")
        with pytest.raises(ValueError):
            parse_memory_budget(0)

    def test_fractional_budgets_parse(self):
        """Regression: fractional sizes in every accepted spelling.

        ``".5GB"`` used to fail outright (the regex required a digit
        before the dot) and bare fractions truncated to 0 bytes,
        surfacing as a misleading "must be positive" error.
        """
        assert parse_memory_budget("1.5GB") == int(1.5 * 1024**3)
        assert parse_memory_budget("0.5GiB") == 512 * 1024**2
        assert parse_memory_budget(".5GB") == 512 * 1024**2
        assert parse_memory_budget(".25 MB") == 256 * 1024
        assert parse_memory_budget("1.5K") == 1536
        # Fractional *byte* counts are rejected, not truncated.
        with pytest.raises(ValueError, match="fractional byte"):
            parse_memory_budget("0.5")
        with pytest.raises(ValueError, match="fractional byte"):
            parse_memory_budget("1.5B")

    def test_budget_error_lists_accepted_forms(self):
        """The parse error teaches the accepted spellings."""
        with pytest.raises(ValueError) as exc_info:
            parse_memory_budget("a lot")
        message = str(exc_info.value)
        assert "512MB" in message
        assert "1.5GB" in message
        assert "KiB/MiB/GiB/TiB" in message

    def test_budget_boundary_forms(self):
        assert parse_memory_budget("1b") == 1
        assert parse_memory_budget("  2 GiB ") == 2 * 1024**3
        assert parse_memory_budget("1t") == 1024**4
        assert parse_memory_budget(np.int64(4096)) == 4096
        for bad in ("", ".", "GB", "1.5.5GB", "-1MB", "1e3MB"):
            with pytest.raises(ValueError):
                parse_memory_budget(bad)


class TestSpoolCleanupOnFailure:
    """Regression: a mid-run failure must not leak the temp spool.

    ``ShardedExecutor.run`` creates its own spool directory when the
    caller does not pass ``spool_dir``; a stage raising mid-run used
    to abandon that directory (and its shard files) in ``$TMPDIR``.
    """

    @staticmethod
    def _failing_schema():
        from repro.properties.base import PropertyGenerator
        from repro.properties.registry import (
            register_property_generator,
        )

        class ExplodingPG(PropertyGenerator):
            name = "sharded_test_exploding"
            access = "random"

            def parameter_names(self):
                return set()

            def run_many(self, ids, stream, *deps):
                raise RuntimeError("injected stage failure")

        try:
            register_property_generator(ExplodingPG)
        except ValueError:
            pass  # registered by a previous test in this session
        return Schema(node_types=[
            NodeType("Person", properties=[
                PropertyDef(
                    "age", "long",
                    GeneratorSpec("uniform_int", {"low": 1, "high": 9}),
                ),
                PropertyDef(
                    "boom", "long",
                    GeneratorSpec("sharded_test_exploding", {}),
                ),
            ]),
        ])

    @staticmethod
    def _temp_spools():
        import tempfile

        tmp = Path(tempfile.gettempdir())
        return {p for p in tmp.glob("repro-spool-*")}

    def test_owned_spool_removed_when_stage_raises(self):
        schema = self._failing_schema()
        before = self._temp_spools()
        with pytest.raises(RuntimeError, match="injected"):
            ShardedExecutor(
                schema, {"Person": 64}, seed=3, shard_rows=16
            ).run()
        leaked = self._temp_spools() - before
        assert not leaked, (
            f"failed run leaked spool directories: {sorted(leaked)}"
        )

    def test_explicit_spool_dir_preserved_on_failure(self, tmp_path):
        """Caller-owned directories are never deleted — they may hold
        shards worth inspecting after the failure."""
        schema = self._failing_schema()
        spool_dir = tmp_path / "spool"
        with pytest.raises(RuntimeError, match="injected"):
            ShardedExecutor(
                schema, {"Person": 64}, seed=3, shard_rows=16,
                spool_dir=spool_dir,
            ).run()
        assert spool_dir.exists()

    def test_successful_run_still_owns_and_keeps_spool(self):
        """The happy path is unchanged: the result owns its temp spool
        until ``cleanup()``."""
        schema = Schema(node_types=[
            NodeType("Person", properties=[
                PropertyDef(
                    "age", "long",
                    GeneratorSpec("uniform_int", {"low": 1, "high": 9}),
                ),
            ]),
        ])
        result = ShardedExecutor(
            schema, {"Person": 64}, seed=3, shard_rows=16
        ).run()
        spool_dir = Path(result.spool.directory)
        assert spool_dir.exists()
        result.cleanup()
        assert not spool_dir.exists()

    def test_budget_mode_is_identical_to_shard_rows_mode(
        self, compiled_recipes, serial_graphs, tmp_path
    ):
        compiled = compiled_recipes["web_graph_rmat"]
        serial = serial_graphs["web_graph_rmat"]
        result = ShardedExecutor(
            compiled.schema, compiled.scale, seed=compiled.seed,
            memory_budget="1MB", spool_dir=tmp_path / "spool",
        ).run()
        assert result.spool.shard_rows == shard_rows_for_budget(
            parse_memory_budget("1MB")
        )
        graph = result.materialize()
        for key, table in serial.edge_tables.items():
            assert graph.edge_tables[key] == table
        result.cleanup()


class TestProcessBackend:
    """``backend="process"``: identical bytes, crash containment, and
    a leak-free file lifecycle."""

    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    @pytest.mark.parametrize(
        "recipe", ["social_network", "recommender_bipartite"]
    )
    def test_backend_worker_matrix(
        self, compiled_recipes, serial_graphs, tmp_path, recipe, fmt
    ):
        """Every backend x workers cell writes the serial bytes."""
        compiled = compiled_recipes[recipe]
        ref = tmp_path / "ref"
        export_graph(serial_graphs[recipe], make_sink(fmt, ref))
        expected = _tree_bytes(ref)
        for backend in ("thread", "process"):
            for workers in (1, 2, 4):
                tag = f"{backend}-{workers}"
                out = tmp_path / f"out-{tag}"
                _run_sharded(
                    compiled, make_sink(fmt, out), 101, workers,
                    tmp_path / f"spool-{tag}", backend=backend,
                )
                assert _tree_bytes(out) == expected, (
                    recipe, fmt, backend, workers,
                )

    @staticmethod
    def _sigkill_schema():
        from repro.properties.base import PropertyGenerator
        from repro.properties.registry import (
            register_property_generator,
        )

        class SigkillPG(PropertyGenerator):
            name = "sharded_test_sigkill"
            access = "random"

            def parameter_names(self):
                return set()

            def run_many(self, ids, stream, *deps):
                import os
                import signal

                os.kill(os.getpid(), signal.SIGKILL)

        try:
            register_property_generator(SigkillPG)
        except ValueError:
            pass  # registered by a previous test in this session
        return Schema(node_types=[
            NodeType("Person", properties=[
                PropertyDef(
                    "boom", "long",
                    GeneratorSpec("sharded_test_sigkill", {}),
                ),
            ]),
        ])

    def test_worker_death_raises_sharded_error_and_cleans_spool(self):
        """SIGKILL mid-shard: a clean ShardedError, no leaked spool."""
        import tempfile

        schema = self._sigkill_schema()
        tmp = Path(tempfile.gettempdir())
        before = set(tmp.glob("repro-spool-*"))
        with pytest.raises(ShardedError, match="died mid-shard"):
            ShardedExecutor(
                schema, {"Person": 64}, seed=3, shard_rows=16,
                workers=2, backend="process",
            ).run()
        leaked = set(tmp.glob("repro-spool-*")) - before
        assert not leaked, (
            f"crashed run leaked spool directories: {sorted(leaked)}"
        )

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedExecutor(
                Schema(node_types=[NodeType("Person")]),
                {"Person": 8}, backend="greenlet",
            )


def test_spool_lifecycle_clean_under_resource_warnings(tmp_path):
    """A full sharded run + materialise + cleanup closes every mmap
    and file handle: the pipeline survives ``-W error::ResourceWarning``
    with a silent stderr (warnings raised inside ``__del__`` cannot
    change the exit code, so the assertion reads the stream too)."""
    import os
    import subprocess
    import sys

    import repro

    script = """
import gc
from pathlib import Path
from repro.core import ShardedExecutor
from repro.io import make_sink
from repro.scenarios import compile_scenario
from repro.scenarios.zoo import load_zoo

out = Path({out!r})
compiled = compile_scenario(
    load_zoo("social_network"), scale={{"Person": 60}}
)
result = ShardedExecutor(
    compiled.schema, compiled.scale, seed=compiled.seed,
    shard_rows=25, workers=2, backend="process",
    spool_dir=out / "spool",
).run(sink=make_sink("csv", out / "csv"))
graph = result.materialize()
assert graph.edge_tables
result.cleanup()
del result, graph
gc.collect()
print("LIFECYCLE-OK")
""".format(out=str(tmp_path))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    proc = subprocess.run(
        [sys.executable, "-W", "error::ResourceWarning", "-c", script],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "LIFECYCLE-OK" in proc.stdout
    assert "ResourceWarning" not in proc.stderr, proc.stderr


class TestEmptyShardContract:
    """Zero-row tables keep their generator dtype end to end."""

    @staticmethod
    def _tiny_schema():
        schema = Schema(node_types=[
            NodeType("Person", properties=[
                PropertyDef(
                    "age", "long",
                    GeneratorSpec("uniform_int", {"low": 18, "high": 80}),
                ),
                PropertyDef(
                    "handle", "string",
                    GeneratorSpec("composite_key", {"prefix": "p"}),
                ),
            ]),
            NodeType("Message", properties=[
                PropertyDef(
                    "length", "long",
                    GeneratorSpec("uniform_int", {"low": 1, "high": 100}),
                ),
            ]),
        ])
        schema.add_edge_type(EdgeType(
            "knows", tail_type="Person", head_type="Person",
            structure=GeneratorSpec(
                "erdos_renyi_m", {"edges_per_node": 2}
            ),
        ))
        schema.add_edge_type(EdgeType(
            "creates", tail_type="Person", head_type="Message",
            cardinality=Cardinality.ONE_TO_MANY,
            directed=True,
            structure=GeneratorSpec("one_to_many", {
                "degree_distribution": _zipf(1.2, 4),
                "degree_offset": 0,
            }),
        ))
        return schema

    @pytest.mark.parametrize("persons", [0, 1])
    def test_degenerate_scales_match_serial(self, tmp_path, persons):
        """Person=0 → every table empty; Person=1 → zero-edge tables.

        Both degenerate shapes must round-trip the sharded path with
        the exact dtypes the serial engine produces (the PR-1 dtype
        guarantee extended to structure chunking).
        """
        schema = self._tiny_schema()
        serial = GraphGenerator(
            schema, {"Person": persons}, seed=3
        ).generate()
        result = ShardedExecutor(
            schema, {"Person": persons}, seed=3, shard_rows=8,
            spool_dir=tmp_path / "spool",
        ).run()
        graph = result.materialize()
        assert graph.node_counts == serial.node_counts
        for key, table in serial.node_properties.items():
            got = graph.node_properties[key]
            assert got.values.dtype == table.values.dtype, key
            assert list(got.values) == list(table.values)
        for key, table in serial.edge_tables.items():
            spooled = result.edge_tables[key]
            tails, heads = spooled.read_range(0, len(spooled))
            assert tails.dtype == np.int64
            assert heads.dtype == np.int64
            assert graph.edge_tables[key] == table
        result.cleanup()

    def test_empty_tables_recorded_in_manifest(self, tmp_path):
        schema = self._tiny_schema()
        result = ShardedExecutor(
            schema, {"Person": 0}, seed=3, shard_rows=8,
            spool_dir=tmp_path / "spool",
        ).run()
        manifest = json.loads(
            (tmp_path / "spool" / "manifest.json").read_text()
        )
        tables = manifest["tables"]
        assert tables["Person.age"]["rows"] == 0
        assert tables["Person.age"]["dtype"] == "<i8"
        assert tables["Person.handle"]["dtype"] == "object"
        assert tables["knows"]["rows"] == 0
        assert tables["knows"]["kind"] == "edge"
        result.cleanup()


def _zipf(alpha, k):
    from repro.stats import Zipf

    return Zipf(alpha, k)


class TestTableSpool:
    """The spool layer in isolation."""

    def test_property_round_trip_across_shards(self, tmp_path):
        spool = TableSpool(tmp_path, shard_rows=4)
        values = np.arange(11, dtype=np.int64) * 3
        for index, (lo, hi) in enumerate(spool.shard_bounds(11)):
            spool.write_property_shard("T.x", index, values[lo:hi])
        table = spool.finish_property("T.x")
        assert len(table) == 11
        assert table.values.dtype == np.int64
        assert np.array_equal(table.read_range(0, 11), values)
        assert np.array_equal(table.read_range(3, 9), values[3:9])
        # Chunk starts are global — independent of shard geometry.
        chunks = list(table.iter_chunks(5))
        assert [lo for lo, _ in chunks] == [0, 5, 10]
        assert np.array_equal(
            np.concatenate([c for _, c in chunks]), values
        )
        assert np.array_equal(
            table.gather(np.array([10, 0, 5, 5])),
            values[[10, 0, 5, 5]],
        )

    def test_object_dtype_round_trip(self, tmp_path):
        spool = TableSpool(tmp_path, shard_rows=2)
        values = np.array(["a", "bb", None, "ccc"], dtype=object)
        spool.write_property_shard("T.s", 0, values[:2])
        spool.write_property_shard("T.s", 1, values[2:])
        table = spool.finish_property("T.s")
        assert table.values.dtype == object
        assert list(table.values) == list(values)
        assert list(np.asarray(table.values)) == list(values)

    def test_out_of_order_shard_rejected(self, tmp_path):
        spool = TableSpool(tmp_path, shard_rows=4)
        with pytest.raises(ValueError, match="out of order"):
            spool.write_property_shard(
                "T.x", 1, np.arange(4, dtype=np.int64)
            )

    def test_edge_table_round_trip(self, tmp_path):
        spool = TableSpool(tmp_path, shard_rows=3)
        tails = np.array([0, 1, 2, 3, 4], dtype=np.int64)
        heads = np.array([1, 2, 3, 4, 0], dtype=np.int64)
        spool.write_edge_shard("e", 0, tails[:3], heads[:3])
        spool.write_edge_shard("e", 1, tails[3:], heads[3:])
        table = spool.finish_edge("e", 5, 5, False)
        assert table.num_edges == 5
        t, h = table.read_range(1, 4)
        assert np.array_equal(t, tails[1:4])
        assert np.array_equal(h, heads[1:4])
        loaded = table.to_edge_table()
        assert np.array_equal(loaded.tails, tails)
        assert loaded.num_tail_nodes == 5

    def test_finish_edge_synthesizes_empty_int64_shard(self, tmp_path):
        spool = TableSpool(tmp_path, shard_rows=3)
        table = spool.finish_edge("e", 7, 7, True)
        assert len(table) == 0
        tails, heads = table.read_range(0, 0)
        assert tails.dtype == np.int64
        part = np.load(spool._part_path(0, "e", "tails"))
        assert part.dtype == np.int64 and part.size == 0

    def test_spill_returns_mmap_view(self, tmp_path):
        from repro.io.spool import SpillView

        spool = TableSpool(tmp_path, shard_rows=3)
        array = np.arange(10, dtype=np.int64)
        view = spool.spill("codes", array)
        assert isinstance(view, SpillView)
        assert isinstance(view.array, np.memmap)
        assert np.array_equal(np.asarray(view), array)
        assert np.array_equal(np.asarray(view[2:5]), array[2:5])
        spool.drop_scratch("codes")
        assert not spool.scratch_path("codes").exists()

    def test_spill_view_pickles_as_path(self, tmp_path):
        import pickle

        spool = TableSpool(tmp_path, shard_rows=3)
        array = np.arange(6, dtype=np.int64)
        view = spool.spill("codes", array)
        clone = pickle.loads(pickle.dumps(view))
        assert np.array_equal(np.asarray(clone), array)
        clone.close()
        spool.cleanup()


class TestMergeShardManifests:
    @staticmethod
    def _prop(rows, dtype="<i8", role="node_property"):
        return {
            "kind": "property", "role": role,
            "rows": rows, "dtype": dtype,
        }

    @staticmethod
    def _edge(rows, n_tail=5, n_head=5, directed=False):
        return {
            "kind": "edge", "rows": rows,
            "num_tail_nodes": n_tail, "num_head_nodes": n_head,
            "directed": directed,
        }

    def test_rows_summed_and_metadata_reconciled(self):
        merged = merge_shard_manifests([
            {"version": 1, "shard": 0, "tables": {
                "T.x": self._prop(4), "e": self._edge(3),
            }},
            {"version": 1, "shard": 1, "tables": {
                "T.x": self._prop(2), "e": self._edge(1),
            }},
        ])
        assert merged["shards"] == 2
        assert merged["tables"]["T.x"]["rows"] == 6
        assert merged["tables"]["T.x"]["dtype"] == "<i8"
        assert merged["tables"]["e"]["rows"] == 4
        assert merged["tables"]["e"]["num_tail_nodes"] == 5

    def test_single_shard_degenerate_case(self):
        merged = merge_shard_manifests([
            {"version": 1, "shard": 0,
             "tables": {"T.x": self._prop(0, dtype="object")}},
        ])
        assert merged["shards"] == 1
        assert merged["tables"]["T.x"]["rows"] == 0
        assert merged["tables"]["T.x"]["dtype"] == "object"

    def test_empty_shards_do_not_decide_dtype(self):
        """dtype reconciliation: empty shards defer to non-empty ones."""
        merged = merge_shard_manifests([
            {"shard": 0, "tables": {"T.x": self._prop(0, "<f8")}},
            {"shard": 1, "tables": {"T.x": self._prop(3, "object")}},
        ])
        assert merged["tables"]["T.x"]["dtype"] == "object"

    def test_all_empty_falls_back_to_first_dtype(self):
        merged = merge_shard_manifests([
            {"shard": 0, "tables": {"T.x": self._prop(0, "<f8")}},
            {"shard": 1, "tables": {"T.x": self._prop(0, "<i8")}},
        ])
        assert merged["tables"]["T.x"]["dtype"] == "<f8"

    def test_dtype_conflict_between_nonempty_shards(self):
        with pytest.raises(ValueError, match="dtype mismatch"):
            merge_shard_manifests([
                {"shard": 0, "tables": {"T.x": self._prop(2, "<i8")}},
                {"shard": 1, "tables": {"T.x": self._prop(2, "<f8")}},
            ])

    def test_edge_shape_conflict(self):
        with pytest.raises(ValueError, match="num_tail_nodes differs"):
            merge_shard_manifests([
                {"shard": 0, "tables": {"e": self._edge(2, n_tail=5)}},
                {"shard": 1, "tables": {"e": self._edge(2, n_tail=6)}},
            ])

    def test_kind_conflict(self):
        with pytest.raises(ValueError, match="kind changes"):
            merge_shard_manifests([
                {"shard": 0, "tables": {"x": self._prop(2)}},
                {"shard": 1, "tables": {"x": self._edge(2)}},
            ])

    def test_missing_shard_rejected(self):
        with pytest.raises(ValueError, match="not contiguous"):
            merge_shard_manifests([
                {"shard": 0, "tables": {}},
                {"shard": 2, "tables": {}},
            ])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no shard manifests"):
            merge_shard_manifests([])

    def test_spool_writes_mergeable_manifests(self, tmp_path):
        """End-to-end: per-shard manifests on disk merge to the root."""
        spool = TableSpool(tmp_path, shard_rows=4)
        values = np.arange(6, dtype=np.float64)
        for index, (lo, hi) in enumerate(spool.shard_bounds(6)):
            spool.write_property_shard("T.x", index, values[lo:hi])
        spool.write_edge_shard(
            "e", 0,
            np.array([0, 1], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
        )
        spool.finish_edge("e", 2, 2, False)
        merged = spool.write_manifests()
        on_disk = [
            json.loads(
                (spool.shard_dir(i) / "manifest.json").read_text()
            )
            for i in range(2)
        ]
        assert merge_shard_manifests(on_disk) == merged
        root = json.loads((tmp_path / "manifest.json").read_text())
        assert root == merged
        assert root["tables"]["T.x"]["rows"] == 6
