"""Tests for SBM-Part: the paper's core contribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import (
    edge_count_target,
    sbm_part_assign,
    sbm_part_match,
)
from repro.partitioning import mixing_matrix
from repro.prng import RandomStream
from repro.stats import (
    JointDistribution,
    empirical_joint,
    homophily_joint,
)
from repro.structure import StochasticBlockModel
from repro.tables import EdgeTable, PropertyTable


class TestEdgeCountTarget:
    def test_mass_convention(self):
        joint = JointDistribution([[0.5, 0.1], [0.1, 0.3]])
        target = edge_count_target(joint, 100)
        # Diagonal: m * P(i,i); off-diagonal doubled (full pair count).
        assert target[0, 0] == pytest.approx(50.0)
        assert target[0, 1] == pytest.approx(20.0)
        assert target[1, 1] == pytest.approx(30.0)

    def test_consistent_with_mixing_matrix(self):
        """A graph whose mixing matrix *is* the joint's expectation must
        have zero Frobenius error against the target."""
        # Path 0-1-2-3 with labels [0,0,1,1]: W = [[1,1],[1,1]].
        table = EdgeTable("p", [0, 1, 2], [1, 2, 3], num_tail_nodes=4)
        labels = np.array([0, 0, 1, 1])
        observed = empirical_joint(table.tails, table.heads, labels, k=2)
        target = edge_count_target(observed, table.num_edges)
        achieved = mixing_matrix(table, labels, k=2)
        assert np.allclose(target, achieved)

    def test_negative_edges_rejected(self):
        joint = JointDistribution(np.ones((2, 2)))
        with pytest.raises(ValueError):
            edge_count_target(joint, -1)


class TestSbmPartAssign:
    def test_respects_group_sizes(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 3, n // 3, n - 2 * (n // 3)])
        joint = homophily_joint(sizes / n, 0.6)
        target = edge_count_target(joint, table.num_edges)
        labels = sbm_part_assign(table, sizes, target)
        assert np.array_equal(np.bincount(labels, minlength=3), sizes)

    def test_all_assigned(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n, 0, 0])
        joint = JointDistribution(np.eye(3) + 0.01)
        labels = sbm_part_assign(
            table, sizes, edge_count_target(joint, table.num_edges)
        )
        assert (labels == 0).all()

    def test_capacity_shortfall_raises(self, triangle_table):
        with pytest.raises(ValueError, match="group sizes sum"):
            sbm_part_assign(
                triangle_table, np.array([1, 1]), np.zeros((2, 2))
            )

    def test_target_shape_validated(self, triangle_table):
        with pytest.raises(ValueError, match="target"):
            sbm_part_assign(
                triangle_table, np.array([2, 1]), np.zeros((3, 3))
            )

    def test_deterministic(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        joint = homophily_joint(sizes / n, 0.5)
        target = edge_count_target(joint, table.num_edges)
        a = sbm_part_assign(table, sizes, target)
        b = sbm_part_assign(table, sizes, target)
        assert np.array_equal(a, b)

    def test_achieved_matrix_tracks_mixing(self, small_lfr):
        """The incremental W maintained by the stream must equal the
        mixing matrix recomputed from scratch (update correctness)."""
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        joint = homophily_joint(np.array([0.5, 0.5]), 0.7)
        pt = PropertyTable(
            "v", np.repeat([0, 1], sizes)
        )
        result = sbm_part_match(pt, joint, table)
        recomputed = mixing_matrix(table, result.assignment, k=2)
        assert np.allclose(result.achieved, recomputed)


class TestSbmPartMatch:
    def test_mapping_is_injective(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([0, 1], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.7)
        result = sbm_part_match(pt, joint, table)
        assert np.unique(result.mapping).size == n

    def test_mapping_respects_values(self, small_lfr):
        """Node assigned group g must map to a PT row holding value g."""
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([10, 20], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.7)
        result = sbm_part_match(pt, joint, table)
        mapped_values = pt.values[result.mapping]
        expected_values = np.where(result.assignment == 0, 10, 20)
        assert np.array_equal(mapped_values, expected_values)

    def test_k_mismatch_raises(self, small_lfr):
        pt = PropertyTable(
            "v", np.zeros(small_lfr.table.num_nodes, dtype=np.int64)
        )
        joint = homophily_joint(np.array([0.5, 0.5]), 0.5)
        with pytest.raises(ValueError, match="categories"):
            sbm_part_match(pt, joint, small_lfr.table)

    def test_pt_too_small_raises(self, small_lfr):
        pt = PropertyTable("v", np.array([0, 1]))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.5)
        with pytest.raises(ValueError, match="rows"):
            sbm_part_match(pt, joint, small_lfr.table)

    def test_recovers_planted_sbm_structure(self):
        """On a graph drawn from the target SBM, SBM-Part must realise
        a joint substantially closer to the request than random
        matching.  (Full recovery is blocked by label-symmetry: a
        single-pass greedy cannot decide *which* coarse group hosts
        which planted block — the paper's own §5 open question; see
        EXPERIMENTS.md, experiment E-SBM.)"""
        marginal = np.array([0.5, 0.3, 0.2])
        joint = homophily_joint(marginal, 0.8)
        n = 1500
        sizes = (marginal * n).astype(np.int64)
        sizes[0] += n - sizes.sum()
        delta = joint.sbm_probabilities(sizes, 12_000)
        sbm = StochasticBlockModel(
            seed=2, sizes=sizes, probabilities=delta
        )
        table = sbm.run(n)
        pt = PropertyTable(
            "v", np.repeat(np.arange(3, dtype=np.int64), sizes)
        )
        order = RandomStream(5, "arrival").permutation(n)
        result = sbm_part_match(pt, joint, table, order=order)
        observed = empirical_joint(
            table.tails, table.heads,
            pt.values[result.mapping], k=3,
        )
        from repro.stats import compare_joints

        comparison = compare_joints(joint, observed)
        from repro.core.matching import random_match

        random_observed = empirical_joint(
            table.tails, table.heads,
            pt.values[random_match(pt, table, seed=1)], k=3,
        )
        random_comparison = compare_joints(joint, random_observed)
        assert comparison.ks < 0.45
        assert comparison.ks < random_comparison.ks
        assert np.trace(observed.matrix) > np.trace(
            random_observed.matrix
        )

    def test_beats_random_on_lfr(self, small_lfr):
        """The headline claim of the evaluation."""
        from repro.core.matching import random_match
        from repro.partitioning import ldg_partition
        from repro.stats import TruncatedGeometric, compare_joints

        table = small_lfr.table
        n = table.num_nodes
        k = 8
        sizes = TruncatedGeometric(0.4, k).sizes(n)
        labels = ldg_partition(table, sizes)
        expected = empirical_joint(table.tails, table.heads, labels, k=k)
        pt = PropertyTable(
            "v",
            np.repeat(np.arange(k, dtype=np.int64),
                      np.bincount(labels, minlength=k)),
        )
        order = RandomStream(7, "arrival").permutation(n)
        sbm_result = sbm_part_match(pt, expected, table, order=order)
        sbm_observed = empirical_joint(
            table.tails, table.heads, pt.values[sbm_result.mapping], k=k
        )
        random_mapping = random_match(pt, table, seed=3)
        random_observed = empirical_joint(
            table.tails, table.heads, pt.values[random_mapping], k=k
        )
        sbm_ks = compare_joints(expected, sbm_observed).ks
        random_ks = compare_joints(expected, random_observed).ks
        assert sbm_ks < random_ks

    def test_capacity_weighting_flag(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([0, 1], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.6)
        weighted = sbm_part_match(
            pt, joint, table, capacity_weighting=True
        )
        unweighted = sbm_part_match(
            pt, joint, table, capacity_weighting=False
        )
        # Both must satisfy the capacities; assignments may differ.
        for result in (weighted, unweighted):
            assert np.array_equal(
                np.bincount(result.assignment, minlength=2), sizes
            )

    def test_frobenius_error_property(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([0, 1], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.6)
        result = sbm_part_match(pt, joint, table)
        manual = float(
            np.linalg.norm(result.achieved - result.target, ord="fro")
        )
        assert result.frobenius_error == pytest.approx(manual)
