"""Tests for the discrete distribution family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    Categorical,
    Constant,
    Empirical,
    Geometric,
    Poisson,
    PowerLaw,
    TruncatedGeometric,
    Uniform,
    Zipf,
)


class TestCategorical:
    def test_normalises(self):
        dist = Categorical([2.0, 6.0])
        assert np.allclose(dist.pmf(), [0.25, 0.75])

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            Categorical([])
        with pytest.raises(ValueError):
            Categorical([-1.0, 2.0])
        with pytest.raises(ValueError):
            Categorical([0.0, 0.0])

    def test_sampling_matches_pmf(self, stream):
        dist = Categorical([0.5, 0.3, 0.2])
        draws = dist.sample(stream, np.arange(60_000))
        freq = np.bincount(draws, minlength=3) / 60_000
        assert np.allclose(freq, dist.pmf(), atol=0.01)

    def test_k(self):
        assert Categorical([1, 1, 1, 1]).k == 4


class TestUniform:
    def test_pmf(self):
        assert np.allclose(Uniform(4).pmf(), [0.25] * 4)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Uniform(0)


class TestGeometric:
    def test_ratio(self):
        pmf = Geometric(0.5, 10).pmf()
        ratios = pmf[1:] / pmf[:-1]
        assert np.allclose(ratios, 0.5)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Geometric(0.0, 5)
        with pytest.raises(ValueError):
            Geometric(1.0, 5)


class TestTruncatedGeometric:
    """The paper's evaluation group-size distribution."""

    def test_floor_at_uniform_share(self):
        dist = TruncatedGeometric(0.4, 16)
        pmf = dist.pmf()
        # Tail categories all equal the floored uniform share.
        geo = 0.4 * 0.6 ** np.arange(16)
        floored = np.maximum(geo, 1 / 16)
        assert np.allclose(pmf, floored / floored.sum())

    def test_head_dominates(self):
        pmf = TruncatedGeometric(0.4, 16).pmf()
        assert pmf[0] > pmf[-1]
        assert pmf[0] > 1 / 16

    def test_sizes_sum_exactly(self):
        for n in (10, 999, 12_345):
            sizes = TruncatedGeometric(0.4, 16).sizes(n)
            assert int(sizes.sum()) == n
            assert (sizes >= 0).all()

    def test_paper_formula(self):
        # size_i = n * max(geo(0.4, i), 1/k) / normaliser
        n, k = 10_000, 8
        sizes = TruncatedGeometric(0.4, k).sizes(n)
        geo = 0.4 * 0.6 ** np.arange(k)
        weights = np.maximum(geo, 1 / k)
        expected = n * weights / weights.sum()
        assert np.abs(sizes - expected).max() <= 1.0


class TestZipf:
    def test_monotone_decreasing(self):
        pmf = Zipf(1.0, 20).pmf()
        assert (np.diff(pmf) < 0).all()

    def test_exponent_two(self):
        pmf = Zipf(2.0, 3).pmf()
        raw = np.array([1.0, 0.25, 1 / 9])
        assert np.allclose(pmf, raw / raw.sum())


class TestPowerLaw:
    def test_support_values(self):
        dist = PowerLaw(2.0, 5, 9)
        assert np.array_equal(dist.values(), [5, 6, 7, 8, 9])

    def test_sample_values_in_range(self, stream):
        dist = PowerLaw(2.0, 3, 12)
        values = dist.sample_values(stream, np.arange(5000))
        assert values.min() >= 3
        assert values.max() <= 12

    def test_mean_value_between_bounds(self):
        dist = PowerLaw(2.0, 5, 50)
        assert 5 < dist.mean_value() < 50

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            PowerLaw(2.0, 0, 5)
        with pytest.raises(ValueError):
            PowerLaw(2.0, 6, 5)


class TestPoisson:
    def test_mode_near_lambda(self):
        pmf = Poisson(5.0, 20).pmf()
        assert abs(int(np.argmax(pmf)) - 5) <= 1

    def test_normalised(self):
        assert np.isclose(Poisson(3.0, 15).pmf().sum(), 1.0)


class TestEmpirical:
    def test_from_counts(self):
        dist = Empirical([1, 3])
        assert np.allclose(dist.pmf(), [0.25, 0.75])

    def test_from_samples(self):
        dist = Empirical.from_samples([0, 1, 1, 2, 2, 2])
        assert np.allclose(dist.pmf(), [1 / 6, 2 / 6, 3 / 6])

    def test_from_samples_with_k(self):
        dist = Empirical.from_samples([0, 0, 1], k=4)
        assert dist.k == 4
        assert dist.pmf()[3] == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical.from_samples([])


class TestConstant:
    def test_point_mass(self):
        dist = Constant(2, 5)
        pmf = dist.pmf()
        assert pmf[2] == 1.0
        assert pmf.sum() == 1.0

    def test_sampling_always_value(self, stream):
        draws = Constant(3, 6).sample(stream, np.arange(100))
        assert (draws == 3).all()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Constant(5, 5)


class TestDistributionProtocol:
    @pytest.mark.parametrize(
        "dist",
        [
            Categorical([0.2, 0.8]),
            Uniform(7),
            Geometric(0.3, 9),
            TruncatedGeometric(0.4, 16),
            Zipf(1.5, 11),
            PowerLaw(2.0, 2, 20),
            Poisson(4.0, 25),
            Empirical([5, 1, 4]),
            Constant(0, 3),
        ],
    )
    def test_pmf_is_probability_vector(self, dist):
        pmf = dist.pmf()
        assert pmf.ndim == 1
        assert (pmf >= 0).all()
        assert np.isclose(pmf.sum(), 1.0)
        assert dist.k == pmf.size
        assert np.isclose(dist.cdf()[-1], 1.0)
        assert dist.entropy() >= 0.0

    def test_sizes_largest_remainder_exact(self):
        dist = Categorical([0.31, 0.29, 0.40])
        sizes = dist.sizes(10)
        assert int(sizes.sum()) == 10
