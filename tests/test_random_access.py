"""The random-access protocol: ``properties_of`` / ``neighbors_of``.

Pins the serving-mode contract (docs/serving.md):

* every builtin PG declares ``access = "random"`` and its
  ``properties_of(ids)`` returns exactly the rows of a full run —
  chained to the **golden fixtures**, so the guarantee is byte-level
  against the frozen pre-rewrite values, for arbitrary scattered
  subsets;
* random-access SGs answer ``neighbors_of`` / ``edge_exists`` in
  exact agreement with their materialised edge table;
* sequential generators refuse the random-access entry points with
  ``TypeError`` (the serving layer maps this to 501);
* empty id sets round-trip with the correct dtype.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.properties import (
    available_property_generators,
    create_property_generator,
)
from repro.properties.base import PropertyGenerator
from repro.structure import create_generator

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "properties"

_spec = importlib.util.spec_from_file_location(
    "properties_golden_regenerate", GOLDEN_DIR / "regenerate.py"
)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)

FIXTURES = json.loads(
    (GOLDEN_DIR / "fixtures.json").read_text(encoding="utf-8")
)

CASE_SEEDS = [
    (case, seed)
    for case in sorted(golden.CASES)
    for seed in golden.SEEDS
]

#: scattered, unsorted, repeated positions inside the golden N rows.
SUBSETS = [
    [0],
    [golden.N - 1, 0],
    [7, 2, 2, 41, 19],
    list(range(0, golden.N, 5))[::-1],
]


class TestPropertyRandomAccess:
    def test_every_builtin_declares_random_access(self):
        for name in available_property_generators():
            generator = _minimal_generator(name)
            assert generator.access == "random", name
            assert generator.random_access(), name

    @pytest.mark.parametrize("case,seed", CASE_SEEDS)
    def test_properties_of_matches_golden_subsets(self, case, seed):
        """Scattered subsets equal the pinned full-run rows."""
        name, params, ids, stream, deps = golden.case_inputs(case, seed)
        generator = create_property_generator(name, **params)
        full = generator.run_many(ids, stream, *deps)
        # Chain to the frozen fixture, then gather against it.
        fixture = FIXTURES["cases"][case]["seeds"][str(seed)]
        assert golden.encode_values(full) == fixture
        for positions in SUBSETS:
            pos = np.asarray(positions, dtype=np.int64)
            sub = generator.properties_of(
                ids[pos], stream, *(dep[pos] for dep in deps)
            )
            assert sub.dtype == full.dtype, (case, positions)
            expected = full[pos]
            if expected.dtype.kind == "f":
                assert (
                    np.array_equal(sub, expected, equal_nan=True)
                ), (case, positions)
            else:
                assert (sub == expected).all(), (case, positions)

    @pytest.mark.parametrize("case,seed", [(c, golden.SEEDS[0])
                                           for c in sorted(golden.CASES)])
    def test_properties_of_empty_ids(self, case, seed):
        """Empty subsets keep the column dtype (empty pages/shards)."""
        name, params, ids, stream, deps = golden.case_inputs(case, seed)
        generator = create_property_generator(name, **params)
        full = generator.run_many(ids, stream, *deps)
        empty = np.empty(0, dtype=np.int64)
        sub = generator.properties_of(
            empty, stream, *(dep[:0] for dep in deps)
        )
        assert sub.shape == (0,)
        assert sub.dtype == full.dtype, case

    def test_sequential_generator_refuses(self):
        class Sequential(PropertyGenerator):
            name = "sequential_only_test"
            access = "sequential"

            def run_many(self, ids, stream, *deps):
                return np.zeros(len(ids), dtype=np.int64)

        generator = Sequential()
        assert not generator.random_access()
        with pytest.raises(TypeError, match="sequential"):
            generator.properties_of(
                np.array([1, 2]), RandomStream(1, "x")
            )


def _minimal_generator(name):
    """A constructible instance of each registered PG.

    Parameters come from the golden-fixture harness, which covers
    every registered generator with known-good configurations.
    """
    for case in sorted(golden.CASES):
        case_name, params, _, _, _ = golden.case_inputs(
            case, golden.SEEDS[0]
        )
        if case_name == name:
            return create_property_generator(name, **params)
    raise AssertionError(f"no golden case covers {name!r}")


def _zipf():
    from repro.stats import Zipf

    return Zipf(1.2, 8)


RANDOM_ACCESS_SGS = [
    ("erdos_renyi", {"p": 0.05}, 64),
    ("erdos_renyi_m", {"m": 200}, 64),
    ("sbm", {"fractions": [0.5, 0.5],
             "probabilities": [[0.2, 0.02], [0.02, 0.2]]}, 60),
    ("rmat", {"edge_factor": 4, "simplify": False}, 64),
    ("one_to_many", {"degree_distribution": _zipf(),
                     "degree_offset": 1}, 50),
]


def _neighbor_oracle(table, node_id, direction):
    """Reference neighbourhood from the materialised edge table."""
    tails = np.asarray(table.tails)
    heads = np.asarray(table.heads)
    parts = []
    if direction in ("out", "both"):
        parts.append(heads[tails == node_id])
    if direction in ("in", "both"):
        mask = heads == node_id
        if direction == "both":
            mask &= tails != heads
        parts.append(tails[mask])
    return np.sort(np.concatenate(parts))


class TestStructureRandomAccess:
    @pytest.mark.parametrize("name,params,n", RANDOM_ACCESS_SGS)
    def test_declares_random_access(self, name, params, n):
        generator = create_generator(name, seed=5, **params)
        assert generator.access == "random"
        assert generator.random_access(n)

    def test_rmat_simplify_gates_random_access(self):
        simplified = create_generator("rmat", seed=5, edge_factor=4)
        assert simplified.access == "random"
        assert not simplified.random_access(64)
        with pytest.raises(TypeError, match="random-access"):
            simplified.neighbors_of(64, [0])

    def test_sequential_generator_refuses(self):
        ba = create_generator("barabasi_albert", seed=5, m=2)
        assert ba.access == "sequential"
        assert not ba.random_access(64)
        with pytest.raises(TypeError, match="random-access"):
            ba.edge_exists(64, 0, 1)

    @pytest.mark.parametrize("name,params,n", RANDOM_ACCESS_SGS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_neighbors_match_materialised_table(self, name, params,
                                                n, seed):
        generator = create_generator(name, seed=seed, **params)
        table = generator.run(n)
        probe = sorted({
            int(table.tails[0]), int(table.heads[-1]),
            int(table.tails[len(table) // 2]),
        })
        for direction in ("out", "in", "both"):
            got = generator.neighbors_of(
                n, probe, chunk_edges=17, direction=direction
            )
            assert sorted(got) == probe
            for node_id in probe:
                assert (
                    np.sort(got[node_id])
                    == _neighbor_oracle(table, node_id, direction)
                ).all(), (name, direction, node_id)

    @pytest.mark.parametrize("name,params,n", RANDOM_ACCESS_SGS)
    def test_edge_exists_matches_materialised_table(self, name,
                                                    params, n):
        generator = create_generator(name, seed=7, **params)
        table = generator.run(n)
        pairs = set(zip(table.tails.tolist(), table.heads.tolist()))
        # Present edges, in stored orientation.
        for src, dst in list(pairs)[:5]:
            assert generator.edge_exists(n, src, dst, chunk_edges=19)
        # Undirected tables accept the reversed orientation too.
        if not table.directed:
            src, dst = next(iter(pairs))
            assert generator.edge_exists(n, dst, src, chunk_edges=19)
        # An absent pair.
        absent = None
        for src in range(table.num_tail_nodes):
            for dst in range(table.num_head_nodes):
                if (src, dst) not in pairs and (
                    table.directed or (dst, src) not in pairs
                ):
                    absent = (src, dst)
                    break
            if absent:
                break
        if absent is not None:
            assert not generator.edge_exists(n, *absent, chunk_edges=19)

    def test_neighbors_of_empty_ids(self):
        generator = create_generator("erdos_renyi", seed=5, p=0.05)
        result = generator.neighbors_of(32, [])
        assert result == {}

    def test_neighbors_of_isolated_node(self):
        generator = create_generator("one_to_many", seed=5,
                                     degree_distribution=_zipf())
        table = generator.run(40)
        isolated = table.num_head_nodes - 1  # heads may exceed tails
        got = generator.neighbors_of(40, [isolated], direction="out")
        if isolated not in set(table.tails.tolist()):
            assert got[isolated].size == 0
            assert got[isolated].dtype == np.int64

    def test_emit_is_public_and_validates(self):
        generator = create_generator("erdos_renyi_m", seed=5, m=100)
        stream = generator.run_chunked(64, 16)
        tails, heads = stream.emit(5, 25)
        assert tails.shape == heads.shape == (20,)
        full = stream.to_edge_table()
        assert (tails == full.tails[5:25]).all()
        assert (heads == full.heads[5:25]).all()
        lo, hi = stream.emit(3, 3)[0].size, stream.emit(3, 3)[1].size
        assert (lo, hi) == (0, 0)
        with pytest.raises(IndexError):
            stream.emit(-1, 4)
        with pytest.raises(IndexError):
            stream.emit(0, stream.num_edges + 1)
        with pytest.raises(IndexError):
            stream.emit(9, 3)
