"""Streaming-placement kernel: equivalence, goldens, tolerance, cold start.

The contract under test: the kernel (every implementation) places
nodes *identically* to the legacy per-node loops preserved in
``repro.core.matching.legacy``, except where the relative tie band
intentionally fixes the legacy absolute-tolerance bug (pinned by the
large golden fixture; see ``tests/golden/matching/regenerate.py``).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    available_impls,
    bipartite_sbm_part_match,
    edge_count_target,
    prepare_match_stream,
    sbm_part_assign,
    tie_threshold,
)
from repro.core.matching.kernel import (
    cold_prefix_length,
    place_cold_stream,
)
from repro.core.matching.legacy import (
    legacy_bipartite_assignments,
    legacy_ldg_partition,
    legacy_sbm_part_assign,
)
from repro.partitioning import ldg_partition
from repro.prng import RandomStream
from repro.stats import homophily_joint
from repro.structure import create_generator
from repro.tables import EdgeTable, PropertyTable

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "matching"


def _load_regenerate():
    """Import the matching regenerate script under a unique module
    name (``tests/golden/regenerate.py`` already owns "regenerate" on
    sys.path during full-suite runs)."""
    name = "golden_matching_regenerate"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


REGEN = _load_regenerate()
IMPLS = available_impls()


def _graph(name, seed, n, **params):
    return create_generator(name, seed=seed, **params).run(n)


def _instance(seed, n=1200, k=8, homophily=0.6, gname="lfr"):
    params = {
        "lfr": {"avg_degree": 12, "max_degree": 30, "mu": 0.2},
        "erdos_renyi_m": {"edges_per_node": 5},
        "forest_fire": {"p": 0.36},
    }[gname]
    table = _graph(gname, seed, n, **params)
    sizes = np.full(k, -(-n // k), dtype=np.int64)
    target = edge_count_target(
        homophily_joint(np.full(k, 1.0 / k), homophily),
        table.num_edges,
    )
    order = RandomStream(seed, "kernel.arrival").permutation(n)
    return table, sizes, target, order


# -- golden fixtures ----------------------------------------------------------


class TestGoldenFixtures:
    """The kernel reproduces the frozen assignments byte-for-byte."""

    @pytest.fixture(scope="class")
    def small_golden(self):
        return np.load(GOLDEN_DIR / "matching_small.npz")

    @pytest.mark.parametrize("impl", IMPLS)
    def test_small_cases(self, small_golden, impl, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_IMPL", impl)
        fresh = REGEN.small_cases()
        assert set(fresh) == set(small_golden.files)
        for name in small_golden.files:
            assert np.array_equal(small_golden[name], fresh[name]), name

    def test_large_case(self):
        """n=100k, k=32 — the perf-acceptance case.

        This fixture pins the kernel's relative-tie-band behaviour (the
        legacy absolute band is narrower than one ulp at this score
        scale and resolved true ties by summation noise; see the
        regenerate script's docstring).
        """
        golden = np.load(GOLDEN_DIR / "matching_large.npz")
        fresh = REGEN.large_case()
        assert np.array_equal(
            golden["sbm.er100k.k32"], fresh["sbm.er100k.k32"]
        )

    def test_structure_fixtures(self):
        """BA + forest-fire rewrites kept their exact edge streams."""
        golden = np.load(GOLDEN_DIR / "structures.npz")
        fresh = REGEN.structure_cases()
        for name in golden.files:
            assert np.array_equal(golden[name], fresh[name]), name


# -- kernel vs legacy ---------------------------------------------------------


class TestKernelMatchesLegacy:
    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("gname", ["lfr", "erdos_renyi_m",
                                       "forest_fire"])
    def test_sbm_streams_identical(self, impl, gname):
        table, sizes, target, order = _instance(31, gname=gname)
        expected = legacy_sbm_part_assign(
            table, sizes, target, order=order
        )
        got = sbm_part_assign(
            table, sizes, target, order=order, impl=impl
        )
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cold_start": "greedy"},
            {"negative_gain": "multiply"},
            {"capacity_weighting": False},
            {"tie_stream": RandomStream(3, "t")},
        ],
        ids=["greedy-cold", "multiply-gain", "unweighted", "ties"],
    )
    def test_sbm_settings_identical(self, impl, kwargs):
        table, sizes, target, order = _instance(32)
        expected = legacy_sbm_part_assign(
            table, sizes, target, order=order, **kwargs
        )
        got = sbm_part_assign(
            table, sizes, target, order=order, impl=impl, **kwargs
        )
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("impl", IMPLS)
    def test_sbm_natural_order_identical(self, impl):
        table, sizes, target, _ = _instance(33)
        expected = legacy_sbm_part_assign(table, sizes, target)
        got = sbm_part_assign(table, sizes, target, impl=impl)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("impl", IMPLS)
    def test_uneven_sizes_with_zero_groups(self, impl):
        table, _, _, order = _instance(34, k=8)
        n = table.num_nodes
        sizes = np.array([0, n // 2, 0, n - n // 2, 0, 0, 0, 0],
                         dtype=np.int64)
        target = edge_count_target(
            homophily_joint(np.full(8, 1 / 8), 0.5), table.num_edges
        )
        expected = legacy_sbm_part_assign(
            table, sizes, target, order=order
        )
        got = sbm_part_assign(
            table, sizes, target, order=order, impl=impl
        )
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("impl", IMPLS)
    def test_ldg_identical(self, impl):
        table, sizes, _, order = _instance(35)
        for tie_stream in (None, RandomStream(8, "ldg")):
            expected = legacy_ldg_partition(
                table, sizes, order=order, tie_stream=tie_stream
            )
            got = ldg_partition(
                table, sizes, order=order, tie_stream=tie_stream,
                impl=impl,
            )
            assert np.array_equal(expected, got)

    def test_bipartite_identical(self):
        rng = np.random.default_rng(44)
        nt, nh, m = 250, 400, 2000
        tails = rng.integers(0, nt, size=m)
        heads = rng.integers(0, nh, size=m)
        table = EdgeTable(
            "b", tails, heads,
            num_tail_nodes=nt, num_head_nodes=nh, directed=True,
        )
        tail_sizes = np.array([100, 80, 70], dtype=np.int64)
        head_sizes = np.array([250, 150], dtype=np.int64)
        from repro.core.matching import bipartite_edge_count_target
        from repro.core.matching.kernel import bipartite_stream

        target = bipartite_edge_count_target(
            np.array([[0.4, 0.1], [0.1, 0.2], [0.1, 0.1]]), m
        )
        order = RandomStream(2, "bip").permutation(nt + nh)
        for weighting in (True, False):
            expected = legacy_bipartite_assignments(
                table, tail_sizes, head_sizes, target,
                order=order, capacity_weighting=weighting,
            )
            got = bipartite_stream(
                table, tail_sizes, head_sizes, target,
                order=order, capacity_weighting=weighting,
            )
            assert np.array_equal(expected[0], got[0])
            assert np.array_equal(expected[1], got[1])

    def test_counts_fallback_identical(self, monkeypatch):
        """The bincount counts provider (huge n·k) matches the matrix
        provider bit-for-bit."""
        import repro.core.matching.kernel as kernel_mod

        table, sizes, target, order = _instance(36)
        a = sbm_part_assign(
            table, sizes, target, order=order, impl="numpy"
        )
        ldg_a = ldg_partition(table, sizes, order=order, impl="numpy")
        monkeypatch.setattr(
            kernel_mod, "COUNTS_MATRIX_MAX_BYTES", 0
        )
        b = sbm_part_assign(
            table, sizes, target, order=order, impl="numpy"
        )
        ldg_b = ldg_partition(table, sizes, order=order, impl="numpy")
        assert np.array_equal(a, b)
        assert np.array_equal(ldg_a, ldg_b)


@pytest.mark.skipif(
    "c" not in IMPLS, reason="no C compiler in this environment"
)
class TestCAndNumpyAgree:
    """The two kernel implementations are interchangeable."""

    def test_randomised_instances(self):
        for seed in range(40, 46):
            table, sizes, target, order = _instance(
                seed, n=800, k=6, gname="erdos_renyi_m"
            )
            a = sbm_part_assign(
                table, sizes, target, order=order, impl="numpy"
            )
            b = sbm_part_assign(
                table, sizes, target, order=order, impl="c"
            )
            assert np.array_equal(a, b), seed

    def test_ldg_agrees(self):
        table, sizes, _, order = _instance(47)
        a = ldg_partition(table, sizes, order=order, impl="numpy")
        b = ldg_partition(table, sizes, order=order, impl="c")
        assert np.array_equal(a, b)


# -- tie tolerance ------------------------------------------------------------


class TestTieTolerance:
    """Regression for the absolute-band bug at large edge counts.

    Scores grow like m²; at |score| > ~4.5e3 the old absolute band
    ``best - 1e-12`` is narrower than the spacing between adjacent
    doubles, so even mathematically tied groups (whose computed scores
    differ by one ulp of summation noise) stopped tying and were
    resolved by that noise instead of the capacity rule.
    """

    def test_absolute_band_is_noop_at_scale(self):
        # The legacy band literally cannot contain a second candidate:
        # subtracting 1e-12 does not change the float at all.
        for magnitude in (2.0 ** 44, 2.0 ** 50, 1.7e16):
            assert magnitude - 1e-12 == magnitude

    def test_relative_band_catches_adjacent_doubles(self):
        # The real divergence observed on the n=100k golden case:
        # scores ~1.9e4 differing by one ulp (mathematically tied,
        # different summation trees).  The relative band ties them;
        # the absolute band cannot.
        best = 18980.987520000006
        runner_up = np.nextafter(best, 0.0)  # one ulp below
        assert runner_up < best - 1e-12          # absolute: no tie
        assert runner_up >= tie_threshold(best)  # relative: ties

    def test_band_matches_legacy_at_small_scores(self):
        for best in (0.0, 1e-3, 0.999, -0.5, 1.0):
            assert tie_threshold(best) == best - 1e-12

    def test_band_scales(self):
        assert tie_threshold(1e9) == 1e9 - 1e-3
        assert tie_threshold(-1e9) == -1e9 - 1e-3

    def test_band_wide_enough_for_summation_noise(self):
        # ~4500 ulps at every magnitude: far above reduction-order
        # noise, far below any mathematically distinct score gap.
        for s in (10.0, 1e5, 1e12):
            band = s - tie_threshold(s)
            assert band > 100 * np.spacing(s)
            assert band < 1e-9 * s


# -- cold-start placement -----------------------------------------------------


def _reference_cold_steps(caps, loads, uniforms, mode):
    """Step-by-step replica of the legacy cold branch."""
    caps = caps.astype(np.float64)
    loads = loads.copy()
    choices = []
    for u in uniforms:
        remaining = np.maximum(caps - loads, 0.0)
        total = remaining.sum()
        if total <= 0:
            raise RuntimeError("group capacities exhausted mid-stream")
        if mode == "proportional":
            cdf = np.cumsum(remaining / total)
            choice = int(np.searchsorted(cdf, u, side="right"))
        else:
            choice = int(np.argmax(remaining))
        choices.append(choice)
        loads[choice] += 1
    return np.asarray(choices, dtype=np.int64), loads


class TestColdStart:
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        caps=st.lists(st.integers(0, 12), min_size=1, max_size=9),
        seed=st.integers(0, 2**32 - 1),
        mode=st.sampled_from(["proportional", "greedy"]),
    )
    def test_batched_matches_step_by_step(self, caps, seed, mode):
        """The batched prefix placement replays the per-step draws of
        ``tie_stream`` exactly, for both cold-start modes."""
        caps = np.asarray(caps, dtype=np.int64)
        count = int(caps.sum())
        if count == 0:
            return
        stream = RandomStream(seed, "cold.prop")
        uniforms = stream.uniform(
            np.arange(count, dtype=np.int64)
        ).tolist()
        expected, expected_loads = _reference_cold_steps(
            caps, np.zeros(caps.size, dtype=np.int64), uniforms, mode
        )
        loads = np.zeros(caps.size, dtype=np.int64)
        got = place_cold_stream(
            caps.astype(np.float64), loads, uniforms, mode
        )
        assert np.array_equal(expected, got)
        assert np.array_equal(expected_loads, loads)

    @pytest.mark.parametrize("mode", ["proportional", "greedy"])
    def test_exhausted_capacities_raise(self, mode):
        caps = np.array([2.0, 1.0])
        loads = np.zeros(2, dtype=np.int64)
        uniforms = [0.1, 0.5, 0.9, 0.2]  # one draw too many
        with pytest.raises(RuntimeError, match="exhausted"):
            place_cold_stream(caps, loads, uniforms, mode)
        # The first three placements landed before the failure.
        assert int(loads.sum()) == 3

    def test_exhausted_matches_reference_step(self):
        caps = np.array([1, 0, 2], dtype=np.int64)
        uniforms = [0.3, 0.8, 0.1, 0.99]
        with pytest.raises(RuntimeError):
            _reference_cold_steps(
                caps, np.zeros(3, dtype=np.int64), uniforms,
                "proportional",
            )
        loads = np.zeros(3, dtype=np.int64)
        with pytest.raises(RuntimeError, match="mid-stream"):
            place_cold_stream(
                caps.astype(np.float64), loads, uniforms,
                "proportional",
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="cold_start"):
            place_cold_stream(
                np.array([1.0]), np.zeros(1, dtype=np.int64),
                [0.5], "sideways",
            )

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("mode", ["proportional", "greedy"])
    def test_edgeless_graph_is_all_cold(self, impl, mode):
        """On an edgeless graph every step takes the cold path, so the
        whole stream is one batched prefix — and must equal the legacy
        loop's step-by-step placement."""
        n, k = 400, 5
        table = EdgeTable("empty", [], [], num_tail_nodes=n)
        sizes = np.full(k, n // k, dtype=np.int64)
        target = np.zeros((k, k))
        order = RandomStream(3, "cold.order").permutation(n)
        expected = legacy_sbm_part_assign(
            table, sizes, target, order=order, cold_start=mode
        )
        got = sbm_part_assign(
            table, sizes, target, order=order, cold_start=mode,
            impl=impl,
        )
        assert np.array_equal(expected, got)

    def test_cold_prefix_detection(self):
        # Path 0-1-2-3 arriving in natural order: only node 0 is
        # guaranteed cold (node 1's neighbour 0 arrives first).
        table = EdgeTable("p", [0, 1, 2], [1, 2, 3], num_tail_nodes=4)
        prep = prepare_match_stream(table)
        assert prep.cold_prefix == 1
        # Reversed order: 3 arrives first, then 2 (neighbour 3 already
        # placed) — prefix is again 1.
        prep = prepare_match_stream(
            table, order=np.array([3, 2, 1, 0])
        )
        assert prep.cold_prefix == 1
        # Isolated nodes first: all cold until the path begins.
        table = EdgeTable("q", [4], [5], num_tail_nodes=7)
        prep = prepare_match_stream(
            table, order=np.array([0, 1, 2, 3, 4, 5, 6])
        )
        assert prep.cold_prefix == 5

    def test_cold_prefix_self_loop_is_conservative(self):
        indptr = np.array([0, 2, 2])
        neighbors = np.array([0, 0])  # self-loop on node 0
        order = np.arange(2)
        positions = np.arange(2)
        assert cold_prefix_length(
            indptr, neighbors, order, positions
        ) == 0


# -- kernel plumbing ----------------------------------------------------------


class TestKernelPlumbing:
    def test_available_impls_contains_numpy(self):
        assert "numpy" in available_impls()

    def test_unknown_impl_rejected(self):
        table, sizes, target, _ = _instance(50, n=60, k=3)
        with pytest.raises(ValueError, match="impl"):
            sbm_part_assign(table, sizes, target, impl="fortran")

    def test_forced_numpy_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCH_IMPL", "numpy")
        table, sizes, target, _ = _instance(51, n=60, k=3)
        a = sbm_part_assign(table, sizes, target)
        b = sbm_part_assign(table, sizes, target, impl="numpy")
        assert np.array_equal(a, b)

    def test_prep_reuse_matches_fresh(self):
        table, sizes, target, order = _instance(52, n=500, k=4)
        prep = prepare_match_stream(table, order)
        a = sbm_part_assign(table, sizes, target, order=order)
        b = sbm_part_assign(table, sizes, target, prep=prep)
        assert np.array_equal(a, b)
        # Passing the matching order alongside the prep is fine...
        c = sbm_part_assign(
            table, sizes, target, order=order, prep=prep
        )
        assert np.array_equal(a, c)
        # ...but a mismatched (order, prep) pair is rejected instead
        # of silently streaming in the prep's order.
        other = np.roll(order, 1)
        with pytest.raises(ValueError, match="different arrival"):
            sbm_part_assign(
                table, sizes, target, order=other, prep=prep
            )
        with pytest.raises(ValueError, match="different arrival"):
            ldg_partition(table, sizes, order=other, prep=prep)

    def test_match_prepare_task_is_bit_identical(self):
        """match_edge with an executor-built prep equals the inline
        path — the DAG split changes scheduling, not results."""
        from repro.core.tasks import match_edge, match_prepare
        from repro.core.schema import (
            CorrelationSpec, EdgeType, GeneratorSpec,
        )
        from repro.stats import JointDistribution

        n = 400
        values = np.repeat([0, 1], [n // 2, n // 2])
        pt = PropertyTable("Person.group", values)
        structure = _graph(
            "erdos_renyi_m", 9, n, edges_per_node=4
        )
        edge = EdgeType(
            "knows", "Person", "Person",
            structure=GeneratorSpec("erdos_renyi_m",
                                    {"edges_per_node": 4}),
            correlation=CorrelationSpec(
                tail_property="group",
                joint=JointDistribution([[0.4, 0.1], [0.1, 0.4]]),
                values=(0, 1),
            ),
        )
        table_a, match_a = match_edge(
            edge, seed=7, task_id="match:knows",
            structure=structure, tail_count=n, head_count=n,
            tail_pt=pt,
        )
        prep = match_prepare(7, "knows", structure)
        table_b, match_b = match_edge(
            edge, seed=7, task_id="match:knows",
            structure=structure, tail_count=n, head_count=n,
            tail_pt=pt, prep=prep,
        )
        assert table_a == table_b
        assert np.array_equal(match_a.assignment, match_b.assignment)

    def test_bipartite_matcher_unchanged_contract(self):
        """Public bipartite API still enforces capacities exactly."""
        rng = np.random.default_rng(3)
        nt, nh, m = 120, 200, 900
        table = EdgeTable(
            "b", rng.integers(0, nt, m), rng.integers(0, nh, m),
            num_tail_nodes=nt, num_head_nodes=nh, directed=True,
        )
        tail_values = np.repeat([0, 1], [60, 60])
        head_values = np.repeat([0, 1], [100, 100])
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            np.array([[0.4, 0.1], [0.1, 0.4]]),
            table,
        )
        assert np.array_equal(
            np.bincount(result.tail_assignment), [60, 60]
        )
        assert np.array_equal(
            np.bincount(result.head_assignment), [100, 100]
        )
