"""Regenerate the property-generator golden fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/properties/regenerate.py

The fixtures pin the **values** every registered builtin property
generator produced *before* the batched attribute-kernel rewrite: each
case runs the frozen legacy generator
(:mod:`repro.properties.legacy` — the pre-rewrite ``run_many`` bodies,
verbatim) over several seeds and stores the outputs as JSON.
``tests/test_properties_vectorised.py`` asserts that both the frozen
legacy code and the vectorised kernels still reproduce these exact
values, so a semantic change to any generator — draw order, cdf
construction, clamping, string assembly — fails loudly instead of
silently regenerating every downstream dataset differently.

JSON keeps the fixtures reviewable; floats survive exactly
(``json`` emits shortest-roundtrip reprs), int64/bool/str directly,
and tuples (multi-value sets) are stored as lists — the test
normalises generated output the same way before comparing.

Only rerun this script when a value change is *intended*; the fixture
diff then documents exactly what changed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent
FIXTURE_PATH = GOLDEN_DIR / "fixtures.json"

SEEDS = (3, 11, 12345)
N = 48

VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
         "eta", "theta", "iota", "kappa", "lambda", "mu"]
COUNTRIES = ["de", "fr", "es", "it", "nl"]
NAME_TABLE = {
    ("de", "f"): (["Anna", "Lena", "Mia"], [5, 3, 2]),
    ("de", "m"): (["Hans", "Max"], None),
    ("fr", "f"): (["Marie", "Chloe"], [1, 1]),
    ("fr", "m"): (["Jean"], None),
    ("es", "f"): (["Lucia"], None),
    ("es", "m"): (["Hugo", "Pablo"], [2, 1]),
}


def _dep_countries(n):
    values = np.empty(n, dtype=object)
    values[:] = [COUNTRIES[i % len(COUNTRIES)] for i in range(n)]
    return values


def _dep_sexes(n):
    values = np.empty(n, dtype=object)
    values[:] = ["f" if i % 2 == 0 else "m" for i in range(n)]
    return values


def _dep_unicode(n):
    values = np.empty(n, dtype=object)
    values[:] = [("smörgås", "日本", "naïve")[i % 3] for i in range(n)]
    return values


#: case name -> (generator name, params, dependency builders).
#: Every registered builtin generator appears at least once; cases
#: cover object/unicode string deps, int64 timestamps and float deps.
CASES = {
    "text": (
        "text",
        dict(vocabulary=VOCAB, min_words=2, max_words=7,
             zipf_exponent=1.1),
        (),
    ),
    "text_flat": (
        "text",
        dict(vocabulary=VOCAB[:5], min_words=1, max_words=3,
             zipf_exponent=0),
        (),
    ),
    "template": (
        "template",
        dict(template="{0} <{1}> #{id}"),
        (_dep_countries, lambda n: np.arange(n) * 0.25),
    ),
    "template_unicode": (
        "template",
        dict(template="[{0}]"),
        (_dep_unicode,),
    ),
    "categorical": (
        "categorical",
        dict(values=["a", "b", "c", "d"], weights=[4, 3, 2, 1]),
        (),
    ),
    "categorical_int": (
        "categorical",
        dict(values=[10, 20, 30]),
        (),
    ),
    "conditional": (
        "conditional",
        dict(table=NAME_TABLE, default=(["X", "Y"], [3, 1])),
        (_dep_countries, _dep_sexes),
    ),
    "conditional_single_dep": (
        "conditional",
        dict(table={c: ([f"cap_{c}"], None) for c in COUNTRIES}),
        (_dep_countries,),
    ),
    "weighted_dict": (
        "weighted_dict",
        dict(values=[f"topic{i}" for i in range(25)], exponent=1.3),
        (),
    ),
    "multi_value": (
        "multi_value",
        dict(values=list("abcdefghij"), min_size=1, max_size=4,
             exponent=1.2),
        (),
    ),
    "multi_value_uniform": (
        "multi_value",
        dict(values=list("pqrstu"), min_size=2, max_size=3,
             exponent=0),
        (),
    ),
    "uuid": ("uuid", dict(), ()),
    "uuid_time_ordered": ("uuid", dict(time_ordered=True), ()),
    "composite_key": ("composite_key", dict(prefix="user"), ()),
    "formula": (
        "formula",
        dict(function=lambda a, b: int(a) * 2 + int(b), dtype="int64"),
        (lambda n: np.arange(n, dtype=np.int64),
         lambda n: np.arange(n, dtype=np.int64) % 7),
    ),
    "lookup": (
        "lookup",
        dict(mapping={c: c.upper() for c in COUNTRIES}, default="??"),
        (_dep_countries,),
    ),
    "date_range": (
        "date_range",
        dict(start=1_500_000_000, end=1_600_000_000),
        (),
    ),
    "date_range_day": (
        "date_range",
        dict(start=1_500_000_000, end=1_600_000_000,
             granularity="day"),
        (),
    ),
    "after_dependency": (
        "after_dependency",
        dict(min_gap=1, max_gap=10_000),
        (lambda n: 1_000_000 + np.arange(n, dtype=np.int64) * 17,
         lambda n: 1_000_000 + ((np.arange(n, dtype=np.int64) * 31)
                                % 997)),
    ),
    "uniform_int": ("uniform_int", dict(low=-5, high=40), ()),
    "uniform_float": ("uniform_float", dict(low=-1.5, high=2.5), ()),
    "normal": (
        "normal",
        dict(mean=10.0, std=3.0, clip_low=2.0, clip_high=18.0),
        (),
    ),
    "zipf_int": ("zipf_int", dict(k=50, exponent=1.4), ()),
    "sequence": ("sequence", dict(start=100, step=-3), ()),
}


def case_inputs(case, seed, n=N):
    """``(generator_name, params, ids, stream, dep_arrays)`` for a case."""
    from repro.prng import RandomStream

    generator_name, params, dep_builders = CASES[case]
    ids = np.arange(n, dtype=np.int64)
    stream = RandomStream(seed, f"golden.{case}")
    deps = tuple(build(n) for build in dep_builders)
    return generator_name, params, ids, stream, deps


def encode_values(array):
    """JSON-stable encoding of a generator output array."""
    def encode(value):
        if isinstance(value, tuple):
            return [encode(v) for v in value]
        if isinstance(value, np.generic):
            return value.item()
        return value

    return {
        "dtype": str(array.dtype),
        "values": [encode(v) for v in array.tolist()],
    }


def regenerate():
    from repro.properties import create_legacy_generator

    payload = {"n": N, "seeds": list(SEEDS), "cases": {}}
    for case in sorted(CASES):
        per_seed = {}
        for seed in SEEDS:
            name, params, ids, stream, deps = case_inputs(case, seed)
            generator = create_legacy_generator(name, **params)
            per_seed[str(seed)] = encode_values(
                generator.run_many(ids, stream, *deps)
            )
        payload["cases"][case] = {
            "generator": CASES[case][0],
            "seeds": per_seed,
        }
    FIXTURE_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True, ensure_ascii=False)
        + "\n",
        encoding="utf-8",
    )
    return FIXTURE_PATH


if __name__ == "__main__":
    print(f"wrote {regenerate()}")
