"""Regenerate the golden export fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

The fixtures pin the exact bytes every exporter produces for one small
canonical graph (the running-example social network at Person=48,
seed=11).  ``tests/test_golden.py`` regenerates the same graph and
asserts byte-equality, so any formatting change — quoting, line
endings, float repr, chunk boundaries leaking into output — fails
loudly instead of slipping into downstream consumers.

Only rerun this script when an output-format change is *intended*; the
diff of the fixtures then documents exactly what changed.
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

# One canonical graph, small enough to commit but exercising every
# column kind the exporters handle: int, float, bool-free categorical
# strings, datetimes-as-longs, and a correlated edge type.
SCHEMA_KWARGS = {"num_countries": 6}
SCALE = {"Person": 48}
SEED = 11


def build_graph():
    from repro.core import GraphGenerator
    from repro.datasets import social_network_schema

    schema = social_network_schema(**SCHEMA_KWARGS)
    return GraphGenerator(schema, SCALE, seed=SEED).generate()


def regenerate():
    from repro.io import (
        export_graph_csv,
        export_graph_jsonl,
        write_edgelist,
        write_graphml,
    )

    graph = build_graph()
    written = []
    written += export_graph_csv(graph, GOLDEN_DIR / "csv")
    written += export_graph_jsonl(graph, GOLDEN_DIR / "jsonl")
    edgelist_dir = GOLDEN_DIR / "edgelist"
    edgelist_dir.mkdir(parents=True, exist_ok=True)
    for name, table in graph.edge_tables.items():
        written.append(
            write_edgelist(table, edgelist_dir / f"{name}.edges")
        )
    graphml_dir = GOLDEN_DIR / "graphml"
    graphml_dir.mkdir(parents=True, exist_ok=True)
    written.append(
        write_graphml(graph, "knows", graphml_dir / "knows.graphml")
    )
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"wrote {path}")
