"""Regenerate the golden matching fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/matching/regenerate.py

The fixtures freeze the *assignments* produced by the streaming
matchers — ``sbm_part_assign``, ``bipartite_sbm_part_match`` and
``ldg_partition`` — on a battery of fixed-seed instances, plus the edge
arrays of the two structure generators whose hot loops were rewritten
(Barabási–Albert and forest fire).  ``tests/test_matching_kernel.py``
re-runs the same instances through the streaming-placement kernel and
asserts byte-identical output, the same pattern ``tests/golden/`` uses
to pin exporter bytes.

The fixtures were originally written by the pre-kernel per-node loops
(the code now preserved verbatim in ``repro.core.matching.legacy``), so
they certify that the kernel rewrite changed *nothing* about placement
decisions.  Only rerun this script when a placement-behaviour change is
*intended*; the fixture diff then documents exactly what changed.

Fixture files
-------------
``matching_small.npz``
    assignments of every small/medium case (int64 arrays).  These are
    the *legacy loop's* outputs, byte-for-byte: at these scales the
    kernel's relative tie band coincides with the legacy absolute one,
    so the fixtures certify the kernel rewrite changed nothing.
``matching_large.npz``
    the headline benchmark case: SBM-Part on an n=100k, k=32
    Erdős–Rényi graph, stored as uint8 (k < 256).  This fixture pins
    the *kernel's* output (numpy and C paths agree exactly), which
    intentionally differs from the legacy loop: at this scale scores
    reach ~1.9e4, where the legacy absolute 1e-12 tie band is narrower
    than one ulp, so mathematically tied groups (adjacent doubles —
    first at stream step 47500) were resolved by ulp noise instead of
    the capacity rule.  The relative band fixes that; the downstream
    cascade relabels ~22k of 100k nodes.  That is the tie-tolerance
    bug this PR's satellite fix addresses, and the documented reason
    this one fixture is not legacy-identical.
``structures.npz``
    tails/heads arrays of the Barabási–Albert and forest-fire graphs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent

#: The headline case of the perf acceptance: n=100k, k=32 (uint8-packed).
LARGE_N = 100_000
LARGE_K = 32


def _graph(name, seed, n, **params):
    from repro.structure import create_generator

    return create_generator(name, seed=seed, **params).run(n)


def _sizes(n, k, stream_seed):
    """Capacity vector: geometric-ish sizes that sum to exactly n."""
    from repro.stats import TruncatedGeometric

    return TruncatedGeometric(0.35, k).sizes(n)


def _target(table, k, homophily):
    from repro.core.matching import edge_count_target
    from repro.stats import homophily_joint

    joint = homophily_joint(np.full(k, 1.0 / k), homophily)
    return edge_count_target(joint, table.num_edges)


def _order(table, seed):
    from repro.partitioning import arrival_order
    from repro.prng import RandomStream

    return arrival_order(table, "random", stream=RandomStream(seed, "arr"))


def small_cases():
    """-> {case name: assignment} for every small/medium instance."""
    from repro.core.matching import (
        bipartite_sbm_part_match,
        sbm_part_assign,
    )
    from repro.partitioning import ldg_partition
    from repro.prng import RandomStream

    lfr = _graph("lfr", 11, 600, avg_degree=12, max_degree=30, mu=0.15)
    er = _graph("erdos_renyi_m", 12, 3_000, edges_per_node=6)
    ff = _graph("forest_fire", 13, 800, p=0.37)

    out = {}

    # -- monopartite SBM-Part: graphs x settings --------------------------
    for gname, table, k in (("lfr", lfr, 8), ("er", er, 16), ("ff", ff, 5)):
        n = table.num_nodes
        sizes = _sizes(n, k, 0)
        target = _target(table, k, 0.6)
        order = _order(table, 21)
        out[f"sbm.{gname}.natural"] = sbm_part_assign(
            table, sizes, target
        )
        out[f"sbm.{gname}.random"] = sbm_part_assign(
            table, sizes, target, order=order
        )
    # Setting ablations on the LFR instance.
    n = lfr.num_nodes
    sizes = _sizes(n, 8, 0)
    target = _target(lfr, 8, 0.4)
    order = _order(lfr, 22)
    out["sbm.lfr.greedy_cold"] = sbm_part_assign(
        lfr, sizes, target, order=order, cold_start="greedy"
    )
    out["sbm.lfr.multiply_gain"] = sbm_part_assign(
        lfr, sizes, target, order=order, negative_gain="multiply"
    )
    out["sbm.lfr.unweighted"] = sbm_part_assign(
        lfr, sizes, target, order=order, capacity_weighting=False
    )
    out["sbm.lfr.tie_stream"] = sbm_part_assign(
        lfr, sizes, target, order=order,
        tie_stream=RandomStream(77, "golden.ties"),
    )

    # -- LDG --------------------------------------------------------------
    for gname, table, k in (("lfr", lfr, 4), ("er", er, 8)):
        n = table.num_nodes
        caps = np.full(k, -(-n // k), dtype=np.int64)
        out[f"ldg.{gname}.plain"] = ldg_partition(table, caps)
        out[f"ldg.{gname}.random"] = ldg_partition(
            table, caps, order=_order(table, 23)
        )
        out[f"ldg.{gname}.ties"] = ldg_partition(
            table, caps, order=_order(table, 23),
            tie_stream=RandomStream(9, "golden.ldg"),
        )

    # -- bipartite SBM-Part ----------------------------------------------
    from repro.tables import EdgeTable, PropertyTable

    rng = np.random.default_rng(31)
    nt, nh, m = 300, 500, 2_400
    tail_values = np.repeat([0, 1, 2], [100, 100, 100])
    head_values = np.repeat([0, 1, 2], [200, 150, 150])
    value = rng.integers(0, 3, size=m)
    tails = np.where(
        rng.random(m) < 0.85,
        rng.integers(0, 100, size=m) + value * 100,
        rng.integers(0, nt, size=m),
    )
    heads = np.where(
        rng.random(m) < 0.85,
        rng.integers(0, 150, size=m)
        + np.array([0, 200, 350])[value],
        rng.integers(0, nh, size=m),
    )
    btable = EdgeTable(
        "likes", tails, heads,
        num_tail_nodes=nt, num_head_nodes=nh, directed=True,
    )
    joint = np.array(
        [[0.30, 0.02, 0.02],
         [0.02, 0.28, 0.02],
         [0.02, 0.02, 0.30]]
    )
    for label, order in (
        ("natural", None),
        ("random", RandomStream(41, "bip.arr").permutation(nt + nh)),
    ):
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            btable,
            order=order,
        )
        out[f"bip.{label}.tail"] = result.tail_assignment
        out[f"bip.{label}.head"] = result.head_assignment
    out["bip.unweighted.tail"], out["bip.unweighted.head"] = (
        lambda r: (r.tail_assignment, r.head_assignment)
    )(
        bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            btable,
            capacity_weighting=False,
        )
    )
    return out


def large_case():
    """The acceptance case: SBM-Part on n=100k, k=32 (uint8 packed)."""
    from repro.core.matching import sbm_part_assign

    table = _graph(
        "erdos_renyi_m", 14, LARGE_N, edges_per_node=8
    )
    sizes = np.full(LARGE_K, LARGE_N // LARGE_K, dtype=np.int64)
    target = _target(table, LARGE_K, 0.6)
    order = _order(table, 24)
    assignment = sbm_part_assign(table, sizes, target, order=order)
    assert assignment.max() < 256
    return {"sbm.er100k.k32": assignment.astype(np.uint8)}


def structure_cases():
    """Edge arrays of the rewritten structure generators."""
    ba = _graph("barabasi_albert", 15, 500, m=4)
    ff = _graph("forest_fire", 16, 700, p=0.40, max_burn=60)
    return {
        "ba.tails": ba.tails, "ba.heads": ba.heads,
        "ff.tails": ff.tails, "ff.heads": ff.heads,
    }


def regenerate():
    written = []
    for name, build in (
        ("matching_small.npz", small_cases),
        ("matching_large.npz", large_case),
        ("structures.npz", structure_cases),
    ):
        path = GOLDEN_DIR / name
        np.savez_compressed(path, **build())
        written.append(path)
    return written


if __name__ == "__main__":
    for path in regenerate():
        print(f"wrote {path}")
