"""Regenerate the golden planting fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/planting/regenerate.py

The fixtures freeze the full ``(template, world, ground_truth)``
triple a planted scenario run exports — every CSV table, the
``ground_truth.json`` plan document, and the export manifest with its
embedded ``"planting"`` block — for 2 seeds x 2 template kinds on a
tiny fixed world.  ``tests/test_planting.py::TestGoldenTriples``
re-runs the same recipes and asserts byte-identical output, the same
pattern ``tests/golden/`` uses to pin exporter bytes.

Because the plant plan is a pure function of ``(plants, node counts,
base edge counts, seed)``, these bytes also pin the node-map sampler,
the noise substream layout, and the appended edge-id assignment.  Only
rerun this script when a planting-behaviour change is *intended* (a
new sampling scheme, a ground-truth schema bump); the fixture diff
then documents exactly what changed.

Fixture layout
--------------
``<kind>_s<seed>/``
    one directory per (template kind, seed) combination, holding the
    exported ``N.flag.csv``, ``link.csv``, ``ground_truth.json`` and
    ``manifest.json`` of the recipe below.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: The pinned matrix: 2 seeds x 2 template kinds.
SEEDS = (11, 29)
KINDS = ("ring", "tree")


def build_recipe(kind, seed):
    """A tiny planted scenario: one categorical property, one
    small-world edge type, two injected 5-node templates with a
    forced attribute."""
    return {
        "scenario": f"golden_plant_{kind}",
        "seed": seed,
        "nodes": {
            "N": {
                "properties": {
                    "flag": {
                        "generator": "categorical",
                        "params": {
                            "values": ["clean", "marked"],
                            "weights": [0.92, 0.08],
                        },
                    },
                },
            },
        },
        "edges": {
            "link": {
                "tail": "N",
                "head": "N",
                "structure": {
                    "generator": "watts_strogatz",
                    "params": {"k": 4, "beta": 0.2},
                },
            },
        },
        "plants": {
            "probe": {
                "edge": "link",
                "template": {"kind": kind, "size": 5},
                "count": 2,
                "attributes": {"flag": "marked"},
            },
        },
        "scale": {"N": 60},
        "export": {"formats": ["csv"]},
    }


def fixture_name(kind, seed):
    return f"{kind}_s{seed}"


def write_triple(kind, seed, out_dir):
    """Run the recipe and export the planted triple into ``out_dir``."""
    from repro.scenarios import compile_scenario, run_scenario

    compiled = compile_scenario(build_recipe(kind, seed))
    graph, _, written = run_scenario(
        compiled, workers=1, out_dir=str(out_dir), validate=False
    )
    if hasattr(graph, "cleanup"):
        graph.cleanup()
    return written


def main():
    for kind in KINDS:
        for seed in SEEDS:
            target = GOLDEN_DIR / fixture_name(kind, seed)
            staging = Path(tempfile.mkdtemp(prefix="repro-golden-"))
            write_triple(kind, seed, staging)
            if target.exists():
                shutil.rmtree(target)
            shutil.copytree(staging, target)
            shutil.rmtree(staging)
            files = sorted(
                p.name for p in target.iterdir() if p.is_file()
            )
            print(f"{target.relative_to(GOLDEN_DIR.parent.parent)}: "
                  f"{', '.join(files)}")


if __name__ == "__main__":
    main()
