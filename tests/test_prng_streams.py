"""Tests for RandomStream: the paper's r(i) contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream, derive_seed


class TestRandomStreamCore:
    def test_call_is_deterministic(self, stream):
        assert int(stream(123)) == int(stream(123))

    def test_named_streams_independent(self):
        a = RandomStream(1, "Person.country")
        b = RandomStream(1, "Person.name")
        assert a.seed != b.seed
        assert int(a(0)) != int(b(0))

    def test_equality_and_hash(self):
        assert RandomStream(3, "x") == RandomStream(3, "x")
        assert hash(RandomStream(3, "x")) == hash(RandomStream(3, "x"))
        assert RandomStream(3, "x") != RandomStream(4, "x")

    def test_raw_alias(self, stream):
        assert int(stream.raw(9)) == int(stream(9))

    def test_repr_contains_name(self):
        assert "label" in repr(RandomStream(1, "label"))


class TestUniform:
    def test_range(self, stream):
        u = stream.uniform(np.arange(10_000))
        assert (u >= 0).all() and (u < 1).all()

    def test_mean_and_spread(self, stream):
        u = stream.uniform(np.arange(100_000))
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.std() - np.sqrt(1 / 12)) < 0.01

    def test_random_access(self, stream):
        whole = stream.uniform(np.arange(100))
        single = stream.uniform(np.int64(37))
        assert whole[37] == single


class TestRandint:
    def test_bounds(self, stream):
        values = stream.randint(np.arange(10_000), 5, 12)
        assert values.min() >= 5
        assert values.max() <= 11

    def test_covers_range(self, stream):
        values = stream.randint(np.arange(10_000), 0, 7)
        assert set(np.unique(values)) == set(range(7))

    def test_empty_range_raises(self, stream):
        with pytest.raises(ValueError, match="empty range"):
            stream.randint(np.arange(3), 5, 5)


class TestNormal:
    def test_moments(self, stream):
        values = stream.normal(np.arange(100_000), mean=2.0, std=3.0)
        assert abs(values.mean() - 2.0) < 0.05
        assert abs(values.std() - 3.0) < 0.05

    def test_deterministic(self, stream):
        a = stream.normal(np.arange(10))
        b = stream.normal(np.arange(10))
        assert np.array_equal(a, b)


class TestSubstreams:
    def test_substream_differs(self, stream):
        a = stream.substream("alpha")
        b = stream.substream("beta")
        assert a.seed != b.seed
        assert a.seed != stream.seed

    def test_indexed_substreams_differ(self, stream):
        assert (
            stream.indexed_substream(0).seed
            != stream.indexed_substream(1).seed
        )

    def test_indexed_substream_no_overflow_warning(self, stream):
        with np.errstate(over="raise"):
            # Must not raise despite modular arithmetic internally.
            stream.indexed_substream(2**62)


class TestPermutation:
    def test_is_permutation(self, stream):
        perm = stream.permutation(500)
        assert np.array_equal(np.sort(perm), np.arange(500))

    def test_deterministic(self, stream):
        assert np.array_equal(stream.permutation(64), stream.permutation(64))

    def test_not_identity(self, stream):
        perm = stream.permutation(100)
        assert (perm != np.arange(100)).any()

    def test_edge_sizes(self, stream):
        assert stream.permutation(0).size == 0
        assert np.array_equal(stream.permutation(1), [0])


class TestChoice:
    def test_respects_weights(self, stream):
        draws = stream.choice(np.arange(50_000), [0.7, 0.2, 0.1])
        freq = np.bincount(draws, minlength=3) / 50_000
        assert abs(freq[0] - 0.7) < 0.02
        assert abs(freq[2] - 0.1) < 0.02

    def test_rejects_bad_weights(self, stream):
        with pytest.raises(ValueError):
            stream.choice(np.arange(3), [])
        with pytest.raises(ValueError):
            stream.choice(np.arange(3), [-1.0, 2.0])
        with pytest.raises(ValueError):
            stream.choice(np.arange(3), [0.0, 0.0])


class TestDeriveSeed:
    def test_path_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_stable(self):
        assert derive_seed(42, "task", "sub") == derive_seed(
            42, "task", "sub"
        )
