"""Tests for the SplitMix64 core: determinism, avalanche, independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import GOLDEN_GAMMA, hash_string, mix64, splitmix64


class TestMix64:
    def test_deterministic(self):
        assert int(mix64(42)) == int(mix64(42))

    def test_bijective_on_sample(self):
        # A mix function must not collide on a large sample.
        inputs = np.arange(100_000, dtype=np.uint64)
        outputs = mix64(inputs)
        assert np.unique(outputs).size == inputs.size

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip ~half the output bits.
        base = np.uint64(0x0123456789ABCDEF)
        flipped = base ^ np.uint64(1)
        diff = int(mix64(base)) ^ int(mix64(flipped))
        popcount = bin(diff).count("1")
        assert 16 <= popcount <= 48

    def test_vectorised_matches_scalar(self):
        values = np.array([0, 1, 2, 2**63, 2**64 - 1], dtype=np.uint64)
        vector = mix64(values)
        for i, v in enumerate(values):
            assert int(vector[i]) == int(mix64(v))

    def test_zero_not_fixed_point_of_stream(self):
        # splitmix64 of any seed at index 0 must not be the seed itself.
        assert int(splitmix64(0, 0)) != 0


class TestSplitmix64:
    def test_random_access_equals_sequential(self):
        # The i-th output must not depend on having generated 0..i-1.
        seed = 99
        sequential = [int(splitmix64(seed, i)) for i in range(20)]
        direct = [int(splitmix64(seed, i)) for i in reversed(range(20))]
        assert sequential == direct[::-1]

    def test_streams_differ_by_seed(self):
        a = splitmix64(1, np.arange(1000))
        b = splitmix64(2, np.arange(1000))
        assert not np.array_equal(a, b)
        # Practically no collisions position-wise.
        assert (a == b).sum() <= 1

    def test_index_array_shapes(self):
        out = splitmix64(5, np.arange(12).reshape(3, 4))
        assert out.shape == (3, 4)

    def test_gamma_is_odd(self):
        # A Weyl increment must be odd to visit all 2^64 states.
        assert int(GOLDEN_GAMMA) % 2 == 1

    def test_uniformity_rough(self):
        # Top bit should be set about half the time.
        bits = splitmix64(7, np.arange(50_000)) >> np.uint64(63)
        assert 0.48 < bits.mean() < 0.52


class TestHashString:
    def test_stable_across_calls(self):
        assert hash_string("Person.country") == hash_string(
            "Person.country"
        )

    def test_differs_by_name(self):
        assert hash_string("Person.country") != hash_string("Person.name")

    def test_differs_by_seed(self):
        assert hash_string("x", seed=1) != hash_string("x", seed=2)

    def test_not_prefix_collision(self):
        # "ab" + "c" must differ from "a" + "bc" given the same seed
        # chain usage (concatenation is not the composition rule).
        assert hash_string("abc") != hash_string("ab")

    def test_unicode(self):
        assert isinstance(hash_string("Pérez—¢"), int)

    def test_range(self):
        value = hash_string("anything")
        assert 0 <= value < 2**64
