"""Tests for the shard-parallel DAG executor.

The acceptance bar: ``generate(workers=k)`` is bit-identical to the
serial engine for every task kind — count, property, structure, match,
edge_property — for ``k`` in {1, 2, 4}, across backends.  The
determinism matrix at the bottom extends the contract to IO: streamed
exports are byte-equal for every (workers, chunk_size, format)
combination.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    GraphGenerator,
    NodeType,
    ParallelExecutor,
    PropertyDef,
    Schema,
    SchemaError,
    execute_parallel,
)
from repro.datasets import social_network_schema


def assert_graphs_identical(expected, actual):
    """Bit-identity including dict insertion order and value dtypes."""
    assert expected.node_counts == actual.node_counts
    assert list(expected.node_counts) == list(actual.node_counts)

    assert list(expected.node_properties) == list(actual.node_properties)
    for key, pt in expected.node_properties.items():
        other = actual.node_properties[key]
        assert pt == other, key
        assert pt.values.dtype == other.values.dtype, key

    assert list(expected.edge_tables) == list(actual.edge_tables)
    for key, table in expected.edge_tables.items():
        assert table == actual.edge_tables[key], key

    assert list(expected.edge_properties) == list(actual.edge_properties)
    for key, pt in expected.edge_properties.items():
        other = actual.edge_properties[key]
        assert pt == other, key
        assert pt.values.dtype == other.values.dtype, key

    assert list(expected.match_results) == list(actual.match_results)
    for key, match in expected.match_results.items():
        other = actual.match_results[key]
        if match is None:
            assert other is None, key
            continue
        for attr in ("mapping", "tail_mapping", "head_mapping"):
            mine = getattr(match, attr, None)
            if mine is not None:
                assert np.array_equal(mine, getattr(other, attr)), key


@pytest.fixture(scope="module")
def social_serial():
    """Serial reference output exercising every task kind: scale and
    structure-inferred counts, plain and conditional properties, LFR
    and one-to-many structures, correlated and strict-cardinality
    matching, and edge properties with endpoint dependencies."""
    schema = social_network_schema(num_countries=8)
    return GraphGenerator(schema, {"Person": 400}, seed=23).generate()


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_social_network_across_worker_counts(
        self, social_serial, workers
    ):
        schema = social_network_schema(num_countries=8)
        graph = ParallelExecutor(
            schema, {"Person": 400}, seed=23,
            workers=workers, shard_size=64,
        ).run()
        assert_graphs_identical(social_serial, graph)

    def test_thread_backend(self, social_serial):
        schema = social_network_schema(num_countries=8)
        graph = ParallelExecutor(
            schema, {"Person": 400}, seed=23,
            workers=4, shard_size=64, backend="thread",
        ).run()
        assert_graphs_identical(social_serial, graph)

    def test_serial_backend(self, social_serial):
        schema = social_network_schema(num_countries=8)
        graph = ParallelExecutor(
            schema, {"Person": 400}, seed=23,
            workers=4, backend="serial",
        ).run()
        assert_graphs_identical(social_serial, graph)

    def test_generator_workers_flag(self, social_serial):
        schema = social_network_schema(num_countries=8)
        graph = GraphGenerator(
            schema, {"Person": 400}, seed=23, workers=2
        ).generate()
        assert_graphs_identical(social_serial, graph)

    def test_generate_call_override(self, social_serial):
        schema = social_network_schema(num_countries=8)
        generator = GraphGenerator(schema, {"Person": 400}, seed=23)
        graph = generator.generate(workers=2)
        assert_graphs_identical(social_serial, graph)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_bipartite_correlated(self, workers):
        """Bipartite many-to-many with a cross-type correlation — the
        match kernel's remaining branch."""
        from repro.stats import Zipf

        person = NodeType(
            "Person",
            properties=[
                PropertyDef(
                    "group",
                    "long",
                    GeneratorSpec(
                        "categorical",
                        {"values": [0, 1], "weights": [0.5, 0.5]},
                    ),
                )
            ],
        )
        item = NodeType(
            "Item",
            properties=[
                PropertyDef(
                    "kind",
                    "long",
                    GeneratorSpec(
                        "categorical",
                        {"values": [0, 1], "weights": [0.5, 0.5]},
                    ),
                )
            ],
        )
        likes = EdgeType(
            "likes",
            "Person",
            "Item",
            structure=GeneratorSpec(
                "bipartite_configuration",
                {
                    "tail_distribution": Zipf(1.2, 6),
                    "head_distribution": Zipf(1.2, 6),
                    "tail_offset": 1,
                    "head_offset": 1,
                    "head_nodes": 120,
                },
            ),
            correlation=CorrelationSpec(
                tail_property="group",
                head_property="kind",
                joint=np.array([[0.45, 0.05], [0.05, 0.45]]),
            ),
            directed=True,
        )
        schema = Schema(node_types=[person, item], edge_types=[likes])
        scale = {"Person": 120, "Item": 120}
        serial = GraphGenerator(schema, scale, seed=4).generate()
        parallel = execute_parallel(
            schema, scale, seed=4, workers=workers, shard_size=32
        )
        assert_graphs_identical(serial, parallel)

    def test_edge_count_anchor(self):
        """Scale anchored on an edge count: sizing via get_num_nodes in
        the coordinator must match the serial path."""
        schema = Schema(
            node_types=[
                NodeType(
                    "T",
                    properties=[
                        PropertyDef(
                            "x",
                            "long",
                            GeneratorSpec(
                                "uniform_int", {"low": 0, "high": 9}
                            ),
                        )
                    ],
                )
            ],
            edge_types=[
                EdgeType(
                    "e",
                    "T",
                    "T",
                    structure=GeneratorSpec(
                        "erdos_renyi_m", {"edges_per_node": 4}
                    ),
                )
            ],
        )
        serial = GraphGenerator(schema, {"e": 1000}, seed=6).generate()
        parallel = execute_parallel(
            schema, {"e": 1000}, seed=6, workers=2, shard_size=50
        )
        assert_graphs_identical(serial, parallel)
        assert parallel.num_edges("e") == 1000


class TestSharding:
    def test_plan_shards_respects_workers_and_size(self):
        executor = ParallelExecutor(
            Schema(node_types=[NodeType("T")]), {"T": 1},
            workers=4, shard_size=100,
        )
        assert executor._plan_shards(0) == [(0, 0)]
        assert executor._plan_shards(50) == [(0, 50)]
        assert len(executor._plan_shards(250)) == 3
        assert len(executor._plan_shards(100_000)) == 4  # capped by workers
        ranges = executor._plan_shards(399)
        assert ranges[0][0] == 0 and ranges[-1][1] == 399

    def test_shards_are_contiguous_and_nonempty(self):
        executor = ParallelExecutor(
            Schema(node_types=[NodeType("T")]), {"T": 1},
            workers=8, shard_size=10,
        )
        for count in (1, 7, 79, 81):
            ranges = executor._plan_shards(count)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == count
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert start == stop
            assert all(stop > start for start, stop in ranges)


#: chunk sizes of the determinism matrix: a tiny chunk (many boundary
#: crossings), a mid-size chunk, and one larger than any table (the
#: whole-table degenerate case).
EXPORT_CHUNK_SIZES = (7, 1000, 10**9)
EXPORT_FORMATS = ("csv", "jsonl", "edgelist", "graphml")


class TestExportDeterminismMatrix:
    """workers {1,2,4} x chunk_size {7, 1000, whole-table}: streamed
    exports of every format must be byte-equal to the serial
    whole-table reference."""

    @pytest.fixture(scope="class")
    def reference_exports(self, social_serial, tmp_path_factory):
        """Post-hoc export of the serial graph, one directory per
        format, at whole-table chunk size."""
        from repro.io import export_graph, make_sink

        root = tmp_path_factory.mktemp("reference")
        exports = {}
        for fmt in EXPORT_FORMATS:
            out = root / fmt
            export_graph(
                social_serial, make_sink(fmt, out, chunk_size=10**9)
            )
            exports[fmt] = out
        return exports

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", EXPORT_CHUNK_SIZES)
    def test_streamed_exports_byte_equal(
        self, reference_exports, tmp_path, workers, chunk_size
    ):
        from repro.io import make_sink

        schema = social_network_schema(num_countries=8)
        sinks = {
            fmt: make_sink(
                fmt, tmp_path / fmt, chunk_size=chunk_size
            )
            for fmt in EXPORT_FORMATS
        }
        generator = GraphGenerator(
            schema, {"Person": 400}, seed=23, workers=workers
        )
        for fmt, sink in sinks.items():
            # Regenerate per format: each run must independently
            # reproduce the reference bytes while streaming.
            graph = generator.generate(sink=sink)
            assert graph.num_nodes("Person") == 400
            reference = reference_exports[fmt]
            produced = {p.name for p in sink.written}
            expected = {p.name for p in reference.iterdir()}
            assert produced == expected, fmt
            for path in sorted(reference.iterdir()):
                assert (tmp_path / fmt / path.name).read_bytes() == \
                    path.read_bytes(), (fmt, path.name)

    @pytest.fixture(scope="class")
    def compressed_reference(self, tmp_path_factory):
        """Serial gzip export — the reference .gz bytes."""
        from repro.io import make_sink

        schema = social_network_schema(num_countries=8)
        out = tmp_path_factory.mktemp("gzref")
        sink = make_sink("csv", out, chunk_size=128, compress=True)
        GraphGenerator(
            schema, {"Person": 400}, seed=23
        ).generate(sink=sink)
        return {p.name: p.read_bytes() for p in sink.written}

    @pytest.mark.parametrize("workers", [2, 4])
    def test_compressed_exports_byte_equal_across_workers(
        self, compressed_reference, tmp_path, workers
    ):
        """gzip output is deterministic too: identical .gz bytes for
        every worker count."""
        from repro.io import make_sink

        schema = social_network_schema(num_countries=8)
        sink = make_sink(
            "csv", tmp_path / "out", chunk_size=128, compress=True
        )
        GraphGenerator(
            schema, {"Person": 400}, seed=23, workers=workers
        ).generate(sink=sink)
        assert {p.name for p in sink.written} == \
            set(compressed_reference)
        for path in sink.written:
            assert path.read_bytes() == \
                compressed_reference[path.name], path.name


class TestValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelExecutor(
                Schema(node_types=[NodeType("T")]), {"T": 1},
                backend="mpi",
            )

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelExecutor(
                Schema(node_types=[NodeType("T")]), {"T": 1}, workers=0
            )
        with pytest.raises(ValueError, match="workers"):
            GraphGenerator(
                Schema(node_types=[NodeType("T")]), {"T": 1}, workers=0
            )

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="shard_size"):
            ParallelExecutor(
                Schema(node_types=[NodeType("T")]), {"T": 1}, shard_size=0
            )

    def test_schema_errors_propagate(self):
        schema = Schema(
            node_types=[
                NodeType("T", properties=[PropertyDef("a", "string")])
            ],
        )
        with pytest.raises(SchemaError, match="no property generator"):
            execute_parallel(schema, {"T": 5}, workers=2)
