"""Tests for the dependency analysis (Section 4.2's running example)."""

from __future__ import annotations

import pytest

from repro.core import (
    Cardinality,
    DependencyError,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
    Task,
    TaskGraph,
    build_task_graph,
)
from repro.datasets import social_network_schema


class TestTaskGraph:
    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add(Task("a", "count", "A"))
        with pytest.raises(DependencyError, match="duplicate"):
            graph.add(Task("a", "count", "A"))

    def test_missing_reference_rejected(self):
        graph = TaskGraph()
        graph.add(Task("a", "count", "A", ["ghost"]))
        with pytest.raises(DependencyError, match="missing task"):
            graph.validate_references()

    def test_topological_order_respects_deps(self):
        graph = TaskGraph()
        graph.add(Task("c", "count", "C", ["b"]))
        graph.add(Task("b", "count", "B", ["a"]))
        graph.add(Task("a", "count", "A"))
        order = [t.task_id for t in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected_and_named(self):
        graph = TaskGraph()
        graph.add(Task("a", "count", "A", ["b"]))
        graph.add(Task("b", "count", "B", ["a"]))
        with pytest.raises(DependencyError, match="cycle"):
            graph.topological_order()

    def test_deterministic_order(self):
        graph = TaskGraph()
        for name in ("z", "m", "a"):
            graph.add(Task(name, "count", name.upper()))
        order = [t.task_id for t in graph.topological_order()]
        assert order == ["a", "m", "z"]

    def test_task_lookup(self):
        graph = TaskGraph()
        task = graph.add(Task("x", "count", "X"))
        assert graph.task("x") is task
        assert "x" in graph
        assert len(graph) == 1
        with pytest.raises(DependencyError):
            graph.task("nope")


class TestBuildTaskGraph:
    def test_running_example_plan(self):
        """The paper's exact scenario: #Messages inferred from the
        creates structure, which is sized by #Persons."""
        schema = social_network_schema(num_countries=8)
        graph = build_task_graph(schema, {"Person": 100})
        order = [t.task_id for t in graph.topological_order()]
        # The documented chain:
        assert order.index("count:Person") \
            < order.index("structure:creates") \
            < order.index("count:Message") \
            < order.index("property:Message.topic")
        # Name depends on country and sex.
        assert order.index("property:Person.country") \
            < order.index("property:Person.name")
        # Matching happens after structure and the correlated PT.
        assert order.index("property:Person.country") \
            < order.index("match:knows")
        # Edge properties run last for their edge.
        assert order.index("match:knows") \
            < order.index("property:knows.creationDate")

    def test_unsizeable_node_type_rejected(self):
        schema = Schema(
            node_types=[NodeType("Orphan")],
        )
        with pytest.raises(DependencyError, match="Orphan"):
            build_task_graph(schema, {})

    def test_edge_scale_sizes_tail_type(self):
        """Scaling by edge count sizes the tail type via get_num_nodes
        (the paper's alternative scale anchor)."""
        schema = Schema(
            node_types=[NodeType("Person")],
            edge_types=[
                EdgeType(
                    "knows",
                    "Person",
                    "Person",
                    structure=GeneratorSpec(
                        "erdos_renyi_m", {"edges_per_node": 4}
                    ),
                )
            ],
        )
        graph = build_task_graph(schema, {"knows": 4000})
        count_task = graph.task("count:Person")
        assert "structure:knows" in count_task.depends_on
        # The structure task itself must NOT depend on the count.
        structure_task = graph.task("structure:knows")
        assert "count:Person" not in structure_task.depends_on

    def test_one_to_many_head_count_from_structure(self):
        schema = social_network_schema(num_countries=8)
        graph = build_task_graph(schema, {"Person": 50})
        count_message = graph.task("count:Message")
        assert count_message.depends_on == ("structure:creates",)

    def test_edge_property_endpoint_dependencies(self):
        schema = social_network_schema(num_countries=8)
        graph = build_task_graph(schema, {"Person": 50})
        task = graph.task("property:knows.creationDate")
        assert "property:Person.creationDate" in task.depends_on
        assert "match:knows" in task.depends_on

    def test_all_tasks_created(self):
        schema = social_network_schema(num_countries=8)
        graph = build_task_graph(schema, {"Person": 10})
        ids = {t.task_id for t in graph.tasks()}
        # 2 counts + 5 Person props + 2 Message props + 2 structures
        # + 2 matches + 2 edge props = 15, plus the match_prepare
        # task of the one correlated streaming edge (knows) = 16
        assert len(ids) == 16
        assert "match_prepare:knows" in ids
        prepare = graph.task("match_prepare:knows")
        assert prepare.depends_on == ("structure:knows",)
        assert "match_prepare:knows" in graph.task(
            "match:knows"
        ).depends_on
