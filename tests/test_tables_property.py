"""Tests for PropertyTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tables import PropertyTable


class TestConstruction:
    def test_basic(self):
        pt = PropertyTable("Person.age", [10, 20, 30])
        assert len(pt) == 3
        assert pt.name == "Person.age"

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            PropertyTable("bad", np.ones((2, 2)))

    def test_object_dtype_for_strings(self):
        pt = PropertyTable("Person.name", np.array(["a", "b"], dtype=object))
        assert pt.values.dtype == object

    def test_repr(self):
        assert "n=2" in repr(PropertyTable("x", [1, 2]))

    def test_equality(self):
        assert PropertyTable("x", [1, 2]) == PropertyTable("x", [1, 2])
        assert PropertyTable("x", [1, 2]) != PropertyTable("x", [1, 3])
        assert PropertyTable("x", [1]) != PropertyTable("y", [1])


class TestRelationalView:
    def test_ids_dense(self):
        pt = PropertyTable("x", [5, 6, 7])
        assert np.array_equal(pt.ids, [0, 1, 2])

    def test_rows(self):
        pt = PropertyTable("x", [5, 6])
        assert list(pt.rows()) == [(0, 5), (1, 6)]

    def test_value_of_bounds(self):
        pt = PropertyTable("x", [5, 6])
        assert pt.value_of(1) == 6
        with pytest.raises(IndexError):
            pt.value_of(2)
        with pytest.raises(IndexError):
            pt.value_of(-1)

    def test_gather(self):
        pt = PropertyTable("x", [10, 20, 30])
        assert np.array_equal(pt.gather([2, 0, 2]), [30, 10, 30])

    def test_gather_bounds(self):
        pt = PropertyTable("x", [10])
        with pytest.raises(IndexError):
            pt.gather([0, 1])

    def test_head(self):
        pt = PropertyTable("x", [7, 8, 9])
        assert pt.head(2) == [(0, 7), (1, 8)]


class TestCategoricalHelpers:
    def test_categories(self, grouped_ptable):
        values, counts = grouped_ptable.categories()
        assert np.array_equal(values, [0, 1, 2])
        assert np.array_equal(counts, [5, 3, 2])

    def test_codes_roundtrip(self):
        pt = PropertyTable(
            "x", np.array(["b", "a", "b", "c"], dtype=object)
        )
        codes, categories = pt.codes()
        assert np.array_equal(categories[codes], pt.values)

    def test_group_counts(self, grouped_ptable):
        assert np.array_equal(grouped_ptable.group_counts(), [5, 3, 2])

    def test_codes_dense(self):
        pt = PropertyTable("x", [100, 50, 100])
        codes, categories = pt.codes()
        assert set(codes) == {0, 1}
        assert np.array_equal(categories, [50, 100])


class TestRemap:
    def test_remap_applies_mapping(self):
        pt = PropertyTable("x", [10, 20, 30])
        remapped = pt.remap([2, 2, 0])
        assert np.array_equal(remapped.values, [30, 30, 10])

    def test_remap_keeps_name_by_default(self):
        pt = PropertyTable("x", [1, 2])
        assert pt.remap([0, 1]).name == "x"

    def test_remap_rename(self):
        pt = PropertyTable("x", [1, 2])
        assert pt.remap([1, 0], name="y").name == "y"

    def test_remap_bounds(self):
        pt = PropertyTable("x", [1])
        with pytest.raises(IndexError):
            pt.remap([0, 1])


class TestIterChunks:
    def test_covers_table_in_order(self):
        pt = PropertyTable("x", np.arange(10))
        chunks = list(pt.iter_chunks(3))
        assert [start for start, _ in chunks] == [0, 3, 6, 9]
        assert np.array_equal(
            np.concatenate([c for _, c in chunks]), pt.values
        )

    def test_chunks_are_views(self):
        pt = PropertyTable("x", np.arange(8))
        _, chunk = next(iter(pt.iter_chunks(4)))
        assert chunk.base is pt.values

    def test_range_restriction(self):
        pt = PropertyTable("x", np.arange(10))
        chunks = list(pt.iter_chunks(4, start=2, stop=9))
        assert chunks[0][0] == 2
        assert np.array_equal(
            np.concatenate([c for _, c in chunks]), np.arange(2, 9)
        )

    def test_empty_table_yields_nothing(self):
        pt = PropertyTable("x", np.array([], dtype=np.int64))
        assert list(pt.iter_chunks(5)) == []

    def test_rejects_bad_chunk_size(self):
        pt = PropertyTable("x", np.arange(3))
        with pytest.raises(ValueError, match="chunk_size"):
            list(pt.iter_chunks(0))

    def test_rejects_bad_start(self):
        pt = PropertyTable("x", np.arange(3))
        with pytest.raises(IndexError):
            list(pt.iter_chunks(2, start=7))
