"""Tests for the I/O connectors."""

from __future__ import annotations

import json

import networkx as nx
import numpy as np
import pytest

from repro.core import GraphGenerator
from repro.datasets import social_network_schema
from repro.io import (
    export_graph_csv,
    export_graph_jsonl,
    from_networkx,
    property_graph_to_networkx,
    read_edge_table,
    read_edgelist,
    read_property_table,
    to_networkx,
    write_edge_table,
    write_edgelist,
    write_graphml,
    write_property_table,
)
from repro.tables import EdgeTable, PropertyTable


@pytest.fixture(scope="module")
def graph():
    schema = social_network_schema(num_countries=8)
    return GraphGenerator(schema, {"Person": 120}, seed=3).generate()


class TestCsvRoundTrip:
    def test_property_table_int(self, tmp_path):
        pt = PropertyTable("T.x", np.array([5, 6, 7]))
        path = write_property_table(pt, tmp_path / "x.csv")
        back = read_property_table(path, name="T.x")
        assert back == pt

    def test_property_table_string(self, tmp_path):
        pt = PropertyTable(
            "T.s", np.array(["a", "b,c", 'd"e'], dtype=object)
        )
        path = write_property_table(pt, tmp_path / "s.csv")
        back = read_property_table(path, name="T.s")
        assert list(back.values) == list(pt.values)

    def test_property_table_float(self, tmp_path):
        pt = PropertyTable("T.f", np.array([1.5, -2.25]))
        path = write_property_table(pt, tmp_path / "f.csv")
        back = read_property_table(path, name="T.f")
        assert np.allclose(back.values, pt.values)

    def test_forced_dtype(self, tmp_path):
        pt = PropertyTable("T.x", np.array([1, 2]))
        path = write_property_table(pt, tmp_path / "x.csv")
        back = read_property_table(path, dtype="object")
        assert back.values.dtype == object

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n0,1\n")
        with pytest.raises(ValueError, match="header"):
            read_property_table(path)

    def test_non_dense_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,value\n0,a\n2,b\n")
        with pytest.raises(ValueError, match="non-dense"):
            read_property_table(path)

    def test_edge_table(self, tmp_path):
        et = EdgeTable("knows", [0, 1], [1, 2], num_tail_nodes=3)
        path = write_edge_table(et, tmp_path / "e.csv")
        back = read_edge_table(path, name="knows", num_tail_nodes=3)
        assert back == et

    def test_export_graph(self, graph, tmp_path):
        written = export_graph_csv(graph, tmp_path / "out")
        names = {p.name for p in written}
        assert "Person.country.csv" in names
        assert "knows.csv" in names
        assert "knows.creationDate.csv" in names


class TestJsonl:
    def test_node_records(self, graph, tmp_path):
        written = export_graph_jsonl(graph, tmp_path / "out")
        person_file = next(
            p for p in written if p.name == "Person.jsonl"
        )
        lines = person_file.read_text().strip().split("\n")
        assert len(lines) == 120
        record = json.loads(lines[0])
        assert set(record) >= {"id", "country", "sex", "name"}

    def test_edge_records(self, graph, tmp_path):
        written = export_graph_jsonl(graph, tmp_path / "out")
        knows_file = next(p for p in written if p.name == "knows.jsonl")
        record = json.loads(knows_file.read_text().split("\n")[0])
        assert set(record) >= {"id", "tail", "head", "creationDate"}
        assert isinstance(record["creationDate"], int)


class TestEdgelist:
    def test_round_trip(self, tmp_path):
        et = EdgeTable("e", [0, 3], [1, 2])
        path = write_edgelist(et, tmp_path / "g.edges", comment="test")
        back = read_edgelist(path, name="e")
        assert np.array_equal(back.tails, et.tails)
        assert np.array_equal(back.heads, et.heads)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# header\n0 1\n\n2 3\n")
        back = read_edgelist(path)
        assert len(back) == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edgelist(path)


class TestNetworkx:
    def test_to_networkx_monopartite(self, triangle_table):
        graph = to_networkx(triangle_table)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert not graph.is_directed()

    def test_to_networkx_directed(self):
        table = EdgeTable(
            "e", [0], [1], num_tail_nodes=2, directed=True
        )
        assert to_networkx(table).is_directed()

    def test_to_networkx_bipartite(self):
        table = EdgeTable(
            "e", [0], [1], num_tail_nodes=2, num_head_nodes=3,
            directed=True,
        )
        graph = to_networkx(table)
        assert graph.number_of_nodes() == 5
        assert graph.has_edge("t0", "h1")

    def test_from_networkx_round_trip(self, small_rmat):
        back = from_networkx(to_networkx(small_rmat))
        assert back.num_edges == small_rmat.num_edges
        assert back.num_tail_nodes == small_rmat.num_nodes

    def test_property_graph_to_networkx(self, graph):
        nxg = property_graph_to_networkx(graph, "knows")
        node = next(iter(nxg.nodes))
        assert "country" in nxg.nodes[node]
        edge = next(iter(nxg.edges))
        assert "creationDate" in nxg.edges[edge]


class TestGraphml:
    def test_writes_valid_xml(self, graph, tmp_path):
        import xml.etree.ElementTree as ET

        path = write_graphml(graph, "knows", tmp_path / "g.graphml")
        tree = ET.parse(path)
        root = tree.getroot()
        assert root.tag.endswith("graphml")
        ns = {"g": "http://graphml.graphdrawing.org/xmlns"}
        nodes = root.findall(".//g:node", ns)
        assert len(nodes) == 120

    def test_escapes_special_characters(self, tmp_path):
        """Property values with XML metacharacters must not break the
        document."""
        from repro.core import (
            EdgeType, GeneratorSpec, GraphGenerator, NodeType,
            PropertyDef, Schema,
        )

        schema = Schema(
            node_types=[
                NodeType(
                    "T",
                    properties=[
                        PropertyDef(
                            "s",
                            "string",
                            GeneratorSpec(
                                "categorical",
                                {"values": ["a<b>&\"c'"]},
                            ),
                        )
                    ],
                )
            ],
            edge_types=[
                EdgeType(
                    "e", "T", "T",
                    structure=GeneratorSpec("erdos_renyi_m", {"m": 5}),
                )
            ],
        )
        generated = GraphGenerator(schema, {"T": 10}, seed=1).generate()
        import xml.etree.ElementTree as ET

        path = write_graphml(generated, "e", tmp_path / "esc.graphml")
        ET.parse(path)  # must not raise
