"""Tests for LDG, hash partitioning, metrics and arrival orders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partitioning import (
    arrival_order,
    balance,
    capacity_respecting_random_partition,
    cut_fraction,
    edge_cut,
    hash_partition,
    ldg_partition,
    mixing_matrix,
)
from repro.prng import RandomStream
from repro.tables import EdgeTable


class TestLdgPartition:
    def test_respects_capacities(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        capacities = np.array([n // 2, n - n // 2])
        labels = ldg_partition(table, capacities)
        loads = np.bincount(labels, minlength=2)
        assert (loads <= capacities).all()
        assert loads.sum() == n

    def test_all_nodes_assigned(self, small_lfr):
        table = small_lfr.table
        labels = ldg_partition(
            table, np.full(4, table.num_nodes // 4 + 1)
        )
        assert (labels >= 0).all()

    def test_beats_random_cut_on_community_graph(self, small_lfr):
        """LDG's entire purpose: fewer cut edges than random placement."""
        table = small_lfr.table
        n = table.num_nodes
        capacities = np.full(4, n // 4 + 1)
        ldg_labels = ldg_partition(table, capacities)
        random_labels = capacity_respecting_random_partition(
            np.full(4, n // 4 + (1 if n % 4 else 0))
        )[:n]
        assert cut_fraction(table, ldg_labels) < cut_fraction(
            table, random_labels
        )

    def test_insufficient_capacity_raises(self, triangle_table):
        with pytest.raises(ValueError, match="capacities sum"):
            ldg_partition(triangle_table, [1, 1])

    def test_custom_order(self, path_table):
        labels = ldg_partition(
            path_table, [2, 2], order=np.array([3, 2, 1, 0])
        )
        assert labels.size == 4

    def test_wrong_order_length_raises(self, path_table):
        with pytest.raises(ValueError, match="order"):
            ldg_partition(path_table, [4], order=np.array([0, 1]))

    def test_tie_stream_deterministic(self, small_lfr):
        table = small_lfr.table
        capacities = np.full(4, table.num_nodes // 4 + 1)
        a = ldg_partition(
            table, capacities, tie_stream=RandomStream(1, "t")
        )
        b = ldg_partition(
            table, capacities, tie_stream=RandomStream(1, "t")
        )
        assert np.array_equal(a, b)

    def test_neighbors_attract(self):
        """A clique streamed after its first member lands together."""
        # Two 5-cliques connected by one edge.
        edges = []
        for block in (range(5), range(5, 10)):
            block = list(block)
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append((block[i], block[j]))
        edges.append((0, 5))
        tails, heads = zip(*edges)
        table = EdgeTable("cliques", tails, heads, num_tail_nodes=10)
        labels = ldg_partition(table, [5, 5])
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]


class TestHashPartition:
    def test_range(self):
        labels = hash_partition(1000, 7)
        assert labels.min() >= 0
        assert labels.max() < 7

    def test_roughly_balanced(self):
        labels = hash_partition(70_000, 7)
        loads = np.bincount(labels, minlength=7)
        assert loads.max() / loads.min() < 1.1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            hash_partition(10, 0)


class TestRandomPartition:
    def test_exact_fill(self):
        labels = capacity_respecting_random_partition([3, 5, 2], seed=1)
        assert np.array_equal(np.bincount(labels), [3, 5, 2])

    def test_deterministic(self):
        a = capacity_respecting_random_partition([4, 4], seed=9)
        b = capacity_respecting_random_partition([4, 4], seed=9)
        assert np.array_equal(a, b)

    def test_shuffled(self):
        labels = capacity_respecting_random_partition([50, 50], seed=1)
        assert (labels[:50] != 0).any()


class TestMetrics:
    def test_edge_cut(self, path_table):
        labels = np.array([0, 0, 1, 1])
        assert edge_cut(path_table, labels) == 1
        assert cut_fraction(path_table, labels) == pytest.approx(1 / 3)

    def test_cut_empty_graph(self):
        table = EdgeTable("e", [], [], num_tail_nodes=3)
        assert cut_fraction(table, np.zeros(3, dtype=int)) == 0.0

    def test_balance_perfect(self):
        assert balance(np.array([0, 0, 1, 1]), k=2) == 1.0

    def test_balance_skewed(self):
        assert balance(np.array([0, 0, 0, 1]), k=2) == 1.5

    def test_mixing_matrix_convention(self, path_table):
        labels = np.array([0, 0, 1, 1])
        w = mixing_matrix(path_table, labels, k=2)
        assert w[0, 0] == 1.0  # edge 0-1
        assert w[1, 1] == 1.0  # edge 2-3
        assert w[0, 1] == w[1, 0] == 1.0  # edge 1-2 mirrored

    def test_mixing_matrix_total_mass(self, small_lfr):
        table = small_lfr.table
        labels = hash_partition(table.num_nodes, 4)
        w = mixing_matrix(table, labels, k=4)
        diag = np.trace(w)
        off = (w.sum() - diag) / 2
        assert diag + off == table.num_edges


class TestArrivalOrder:
    def test_natural(self, path_table):
        order = arrival_order(path_table, "natural")
        assert np.array_equal(order, [0, 1, 2, 3])

    def test_random_is_permutation(self, small_lfr):
        table = small_lfr.table
        order = arrival_order(
            table, "random", stream=RandomStream(4, "o")
        )
        assert np.array_equal(np.sort(order), np.arange(table.num_nodes))

    def test_random_requires_stream(self, path_table):
        with pytest.raises(ValueError, match="stream"):
            arrival_order(path_table, "random")

    def test_bfs_explores_levels(self, path_table):
        order = arrival_order(path_table, "bfs")
        # From node 0: order must be 0,1,2,3 along the path.
        assert np.array_equal(order, [0, 1, 2, 3])

    def test_bfs_includes_unreachable(self):
        table = EdgeTable("e", [0], [1], num_tail_nodes=4)
        order = arrival_order(table, "bfs")
        assert np.array_equal(np.sort(order), np.arange(4))

    def test_degree_orders(self, path_table):
        descending = arrival_order(path_table, "degree_desc")
        ascending = arrival_order(path_table, "degree_asc")
        degrees = path_table.degrees()
        assert degrees[descending[0]] == degrees.max()
        assert degrees[ascending[0]] == degrees.min()

    def test_unknown_kind(self, path_table):
        with pytest.raises(ValueError, match="unknown arrival order"):
            arrival_order(path_table, "sideways")
