"""Tests for the Figure-3/4 protocol harness and timing experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    MATCHERS,
    extrapolate_to_paper,
    fixed_k,
    k_values,
    lfr_sizes,
    make_graph,
    profile_name,
    rmat_scales,
    run_protocol,
    time_sbm_part,
)


class TestScaleProfiles:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert profile_name() == "small"
        assert len(lfr_sizes()) == 3
        assert len(rmat_scales()) == 3

    def test_paper_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert lfr_sizes() == [10_000, 100_000, 1_000_000]
        assert rmat_scales() == [18, 20, 22]

    def test_unknown_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            profile_name()

    def test_paper_constants(self):
        assert fixed_k() == 16
        assert k_values() == [4, 16, 64]


class TestMakeGraph:
    def test_lfr(self):
        table = make_graph("lfr", 500, seed=1)
        assert table.num_nodes == 500

    def test_rmat(self):
        table = make_graph("rmat", 9, seed=1)
        assert table.num_tail_nodes == 512

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown graph kind"):
            make_graph("ws", 10, seed=0)


class TestRunProtocol:
    @pytest.fixture(scope="class")
    def lfr_result(self):
        return run_protocol("lfr", 1000, 8, seed=0)

    def test_label(self, lfr_result):
        assert lfr_result.label == "LFR(1k,8)"

    def test_comparison_well_formed(self, lfr_result):
        comparison = lfr_result.comparison
        assert np.isclose(comparison.expected_cdf[-1], 1.0)
        assert np.isclose(comparison.observed_cdf[-1], 1.0)
        assert len(comparison.pairs) == 8 * 9 // 2

    def test_row_keys(self, lfr_result):
        row = lfr_result.row()
        assert set(row) == {
            "label", "n", "m", "k", "ks", "l1", "js", "match_seconds"
        }

    def test_quality_reasonable_on_lfr(self, lfr_result):
        # Paper's qualitative claim: LFR quality is good.
        assert lfr_result.comparison.ks < 0.35

    def test_sbm_part_beats_random(self):
        """The core comparative claim, via the ablation interface."""
        sbm = run_protocol("lfr", 800, 8, seed=1, matcher="sbm_part")
        rand = run_protocol("lfr", 800, 8, seed=1, matcher="random")
        assert sbm.comparison.ks < rand.comparison.ks

    def test_all_matchers_run(self):
        for matcher in MATCHERS:
            result = run_protocol(
                "lfr", 400, 4, seed=2, matcher=matcher
            )
            assert result.comparison.ks >= 0.0

    def test_unknown_matcher(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            run_protocol("lfr", 200, 4, matcher="oracle")

    def test_order_kinds(self):
        for order_kind in ("random", "bfs", "degree_desc"):
            result = run_protocol(
                "lfr", 400, 4, seed=3, order_kind=order_kind
            )
            assert result.num_nodes == 400

    def test_determinism(self):
        a = run_protocol("lfr", 400, 4, seed=5)
        b = run_protocol("lfr", 400, 4, seed=5)
        assert np.allclose(
            a.comparison.observed_cdf, b.comparison.observed_cdf
        )

    def test_rmat_protocol(self):
        result = run_protocol("rmat", 9, 8, seed=0)
        assert result.label == "RMAT(9,8)"
        assert result.comparison.ks < 0.7

    def test_size_invariance_claim(self):
        """Figure 3's second finding: quality does not degrade with
        size (within our small-profile range)."""
        small = run_protocol("lfr", 1000, 8, seed=4)
        large = run_protocol("lfr", 4000, 8, seed=4)
        assert large.comparison.ks < small.comparison.ks + 0.1


class TestTiming:
    def test_measures_positive_time(self):
        result = time_sbm_part("rmat", 8, 8, seed=0)
        assert result.seconds > 0
        assert result.edges_per_second > 0

    def test_row_keys(self):
        result = time_sbm_part("rmat", 8, 4, seed=0)
        assert set(result.row()) == {
            "graph", "k", "n", "m", "seconds", "edges_per_s"
        }

    def test_extrapolation(self):
        result = time_sbm_part("rmat", 8, 8, seed=0)
        extrapolated = extrapolate_to_paper(result)
        assert extrapolated["predicted_paper_seconds"] > 0
        assert extrapolated["paper_reported_seconds"] == 1100.0
