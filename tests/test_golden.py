"""Golden-file regression tests: exporter bytes are frozen.

``tests/golden/`` holds the canonical exports of one small graph
(written by the pre-streaming per-row exporters; see
``tests/golden/regenerate.py``).  Every format must keep producing
exactly those bytes — for any chunk size — so formatting changes can
never slip in silently.  An *intended* format change must rerun the
regenerate script and commit the fixture diff.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

sys.path.insert(0, str(GOLDEN_DIR))
from regenerate import build_graph  # noqa: E402


@pytest.fixture(scope="module")
def graph():
    return build_graph()


def golden_files(subdir):
    files = sorted(
        p for p in (GOLDEN_DIR / subdir).iterdir() if p.is_file()
    )
    assert files, f"no golden fixtures under {subdir}"
    return files


@pytest.mark.parametrize("chunk_size", [7, 10**9])
class TestGoldenBytes:
    def test_csv(self, graph, tmp_path, chunk_size):
        from repro.io import export_graph_csv

        export_graph_csv(graph, tmp_path, chunk_size=chunk_size)
        for fixture in golden_files("csv"):
            produced = tmp_path / fixture.name
            assert produced.read_bytes() == fixture.read_bytes(), \
                fixture.name

    def test_jsonl(self, graph, tmp_path, chunk_size):
        from repro.io import export_graph_jsonl

        export_graph_jsonl(graph, tmp_path, chunk_size=chunk_size)
        for fixture in golden_files("jsonl"):
            produced = tmp_path / fixture.name
            assert produced.read_bytes() == fixture.read_bytes(), \
                fixture.name

    def test_edgelist(self, graph, tmp_path, chunk_size):
        from repro.io import write_edgelist

        for name, table in graph.edge_tables.items():
            write_edgelist(
                table, tmp_path / f"{name}.edges",
                chunk_size=chunk_size,
            )
        for fixture in golden_files("edgelist"):
            produced = tmp_path / fixture.name
            assert produced.read_bytes() == fixture.read_bytes(), \
                fixture.name

    def test_graphml(self, graph, tmp_path, chunk_size):
        from repro.io import write_graphml

        write_graphml(
            graph, "knows", tmp_path / "knows.graphml",
            chunk_size=chunk_size,
        )
        fixture = GOLDEN_DIR / "graphml" / "knows.graphml"
        assert (tmp_path / "knows.graphml").read_bytes() == \
            fixture.read_bytes()


def test_fixture_set_is_complete():
    """Every format directory carries fixtures (guards against an
    accidentally-pruned checkout silently skipping coverage)."""
    for subdir, minimum in (
        ("csv", 10), ("jsonl", 4), ("edgelist", 2), ("graphml", 1)
    ):
        assert len(golden_files(subdir)) >= minimum, subdir
