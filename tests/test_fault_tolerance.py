"""Fault-tolerant sharded pipelines: checkpoint/resume, retry, faults.

The robustness contract (docs/robustness.md) is byte-identity under
failure: a run killed at *any* stage boundary and resumed from its
spool checkpoint must export exactly the bytes of an uninterrupted
run.  These tests pin that claim with a deterministic fault-injection
harness (``repro.core.faults``) across every pipeline stage, both
pool backends, and both retry paths (in-run respawn and cross-run
resume), plus the ledger/fingerprint and spec-grammar layers under it.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.core import (
    CheckpointError,
    CheckpointLedger,
    FaultPlan,
    InjectedFault,
    ShardedError,
    ShardedExecutor,
    parse_faults,
    run_fingerprint,
)
from repro.core.faults import plan_from_env
from repro.core.schema import (
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.io import make_sink

SCALE = {"T": 200}
SHARD_ROWS = 64  # 200 rows -> 4 property shards, several edge shards


def _tiny_schema():
    schema = Schema(node_types=[
        NodeType("T", properties=[
            PropertyDef("x", "long", GeneratorSpec(
                "uniform_int", {"low": 0, "high": 100}
            )),
        ]),
    ])
    schema.add_edge_type(EdgeType(
        "e", tail_type="T", head_type="T",
        structure=GeneratorSpec("erdos_renyi_m", {"edges_per_node": 3}),
    ))
    return schema


def _tree_bytes(root):
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _run(out, spool, *, fmt="csv", compress=None, backend="thread",
         workers=1, resume=False, retries=0, faults=None, seed=0):
    executor = ShardedExecutor(
        _tiny_schema(), SCALE, seed=seed, shard_rows=SHARD_ROWS,
        workers=workers, backend=backend, spool_dir=spool,
        resume=resume, retries=retries, backoff=0.01, faults=faults,
    )
    # Small export chunks so the ``export`` fault site sees several
    # write calls per file in every format (jsonl writes one chunk per
    # file at the default chunk size).
    return executor.run(sink=make_sink(
        fmt, out, chunk_size=64, compress=compress
    ))


@pytest.fixture(scope="module")
def expected_csv(tmp_path_factory):
    base = tmp_path_factory.mktemp("clean")
    _run(base / "out", base / "spool")
    return _tree_bytes(base / "out")


def _assert_same_tree(got_dir, expected):
    got = _tree_bytes(got_dir)
    assert got.keys() == expected.keys()
    for key in expected:
        assert got[key] == expected[key], key


# One fault per pipeline stage.  Indices picked so each actually fires
# on the tiny schema (count/structure have one occurrence; property and
# match have one per shard; export one per formatted chunk written).
STAGE_FAULTS = {
    "count": "count:0:crash",
    "property": "property:1:crash",
    "structure": "structure:0:crash",
    "match": "match:1:crash",
    "export": "export:2:ioerror",
}


class TestCrashMatrix:
    """Acceptance matrix: crash at each stage x backend x workers,
    then ``resume`` -> export byte-identical to an uninterrupted run."""

    @pytest.mark.parametrize("stage", sorted(STAGE_FAULTS))
    @pytest.mark.parametrize("backend,workers", [
        ("thread", 1), ("thread", 4), ("process", 1), ("process", 4),
    ])
    def test_crash_then_resume_is_byte_identical(
        self, expected_csv, tmp_path, stage, backend, workers
    ):
        out, spool = tmp_path / "out", tmp_path / "spool"
        with pytest.raises((InjectedFault, OSError, ShardedError)):
            _run(out, spool, backend=backend, workers=workers,
                 faults=STAGE_FAULTS[stage])
        assert (spool / "checkpoint.json").exists()
        _run(out, spool, backend=backend, workers=workers, resume=True)
        _assert_same_tree(out, expected_csv)

    def test_resume_requires_explicit_spool(self):
        with pytest.raises(ValueError, match="resume requires"):
            ShardedExecutor(
                _tiny_schema(), SCALE, shard_rows=SHARD_ROWS, resume=True
            )

    def test_resume_of_untouched_spool_is_a_clean_run(
        self, expected_csv, tmp_path
    ):
        # No checkpoint at all: resume degrades to a fresh run.
        out, spool = tmp_path / "out", tmp_path / "spool"
        _run(out, spool, resume=True)
        _assert_same_tree(out, expected_csv)


class TestInterruptedSinks:
    """A sink that died mid-file is fully rewritten on resume: the
    truncated/partial export can never leak into the final bytes."""

    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    @pytest.mark.parametrize("compress", [None, "gzip"])
    def test_export_ioerror_then_resume(self, tmp_path, fmt, compress):
        clean = tmp_path / "clean"
        _run(clean, tmp_path / "clean-spool", fmt=fmt, compress=compress)
        out, spool = tmp_path / "out", tmp_path / "spool"
        with pytest.raises(OSError):
            _run(out, spool, fmt=fmt, compress=compress,
                 faults="export:2:ioerror")
        # The interrupted run must leave a truncated/short export tree.
        assert _tree_bytes(out) != _tree_bytes(clean)
        _run(out, spool, fmt=fmt, compress=compress, resume=True)
        _assert_same_tree(out, _tree_bytes(clean))


class TestRetries:
    def test_retries_recover_sigkilled_worker(self, expected_csv,
                                              tmp_path):
        """Acceptance: ``retries=2`` survives a SIGKILL'd worker with
        no manual intervention and unchanged output bytes."""
        out = tmp_path / "out"
        _run(out, tmp_path / "spool", backend="process", workers=2,
             retries=2, faults="shard:1:kill")
        _assert_same_tree(out, expected_csv)

    def test_retries_recover_worker_exception(self, expected_csv,
                                              tmp_path):
        out = tmp_path / "out"
        _run(out, tmp_path / "spool", backend="process", workers=2,
             retries=1, faults="property:1:crash")
        _assert_same_tree(out, expected_csv)

    def test_exhausted_retries_surface_shard_and_traceback(
        self, tmp_path
    ):
        """Regression: the worker traceback must survive the process
        boundary, and the error names the failing shard."""
        with pytest.raises(ShardedError) as excinfo:
            _run(tmp_path / "out", tmp_path / "spool",
                 backend="process", workers=2, retries=1,
                 faults="property:1:crash:x5")
        exc = excinfo.value
        assert exc.shard == 1
        assert "InjectedFault" in (exc.worker_traceback or "")
        assert "worker traceback" in str(exc)
        assert "after 2 attempts" in str(exc)


class TestLedger:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        out, spool = tmp_path / "out", tmp_path / "spool"
        with pytest.raises(InjectedFault):
            _run(out, spool, faults="match:1:crash")
        with pytest.raises(CheckpointError, match="fingerprint"):
            _run(out, spool, resume=True, seed=1)

    def test_sink_format_is_part_of_the_fingerprint(self, tmp_path):
        # A half-written CSV export must not resume as JSONL.
        out, spool = tmp_path / "out", tmp_path / "spool"
        with pytest.raises(InjectedFault):
            _run(out, spool, fmt="csv", faults="match:1:crash")
        with pytest.raises(CheckpointError, match="fingerprint"):
            _run(out, spool, fmt="jsonl", resume=True)

    def test_torn_part_is_regenerated_on_resume(self, expected_csv,
                                                tmp_path):
        """Shard acks carry size+CRC digests: a part file truncated
        after the crash (torn write, disk fault) is detected and the
        shard re-run instead of trusted."""
        out, spool = tmp_path / "out", tmp_path / "spool"
        with pytest.raises(InjectedFault):
            _run(out, spool, faults="match:1:crash")
        parts = sorted(spool.glob("shards/*/T.x.npy"))
        assert parts, "expected spooled property parts"
        with open(parts[-1], "r+b") as handle:
            handle.truncate(max(handle.seek(0, 2) // 2, 1))
        _run(out, spool, resume=True)
        _assert_same_tree(out, expected_csv)

    def test_fingerprint_sensitivity(self):
        schema = _tiny_schema()
        base = run_fingerprint(schema, SCALE, 0, 64, "csv")
        assert base == run_fingerprint(schema, SCALE, 0, 64, "csv")
        assert base != run_fingerprint(schema, SCALE, 1, 64, "csv")
        assert base != run_fingerprint(schema, SCALE, 0, 32, "csv")
        assert base != run_fingerprint(schema, SCALE, 0, 64, "jsonl")
        assert base != run_fingerprint(schema, {"T": 300}, 0, 64, "csv")

    def test_out_of_order_ack_rejected(self, tmp_path):
        ledger = CheckpointLedger.fresh(tmp_path, "fp")
        meta = {"rows": 1, "files": []}
        ledger.ack_shard("k", "property", 0, meta)
        with pytest.raises(CheckpointError):
            ledger.ack_shard("k", "property", 2, meta)
        # Idempotent re-ack of a recorded shard is fine (resume path).
        ledger.ack_shard("k", "property", 0, meta)


class TestFaultSpecs:
    def test_parse_round_trip(self):
        text = "shard:3:crash export:2:ioerror,shard:5:slow=2.5:x3"
        specs = parse_faults(text)
        assert [s.text() for s in specs] == [
            "shard:3:crash", "export:2:ioerror", "shard:5:slow=2.5:x3",
        ]
        assert specs[2].value == 2.5 and specs[2].times == 3

    @pytest.mark.parametrize("bad", [
        "shard:3", "bogus:1:crash", "shard:1:explode",
        "shard:x:crash", "shard:1:slow",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_plan_fires_at_most_times(self, tmp_path):
        plan = FaultPlan("count:0:crash:x2", state_dir=tmp_path)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.fire("count", 0)
        plan.fire("count", 0)  # exhausted: no-op
        assert plan.fired_count(plan.specs[0]) == 3
        plan.reset()
        with pytest.raises(InjectedFault):
            plan.fire("count", 0)

    def test_plan_pickles_with_shared_state(self, tmp_path):
        plan = FaultPlan("shard:1:crash", state_dir=tmp_path)
        with pytest.raises(InjectedFault):
            plan.fire("shard", 1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.state_dir == plan.state_dir
        clone.fire("shard", 1)  # already fired in the original: no-op

    def test_plan_from_env(self, tmp_path):
        assert plan_from_env({}) is None
        plan = plan_from_env({
            "REPRO_FAULTS": "export:0:ioerror",
            "REPRO_FAULTS_STATE": str(tmp_path),
        })
        assert plan.text == "export:0:ioerror"
        assert plan.state_dir == str(tmp_path)
