"""Memory-boundedness regression tests for the sharded executor.

Two claims, pinned with tracemalloc (traced allocations include numpy
buffers and Python objects — deterministic, unlike RSS):

* per-shard stages (property kernels, chunked structure emission,
  streaming relabel, sink export) allocate O(shard_rows), independent
  of graph size;
* the full pipeline including the documented global stages (pair-code
  sampling, matching permutations — O(nodes or edges) at ~8–90 bytes
  per row, spilled to disk after creation) stays under a pinned
  ``C · shard_rows`` budget when the graph is 20× the shard size.

If a change regresses memory — a table materialised where it should
stream, a sink chunk decoupled from the shard size — these bounds
break long before CI's 10M-edge smoke does.
"""

from __future__ import annotations

import tracemalloc

from repro.core import GraphGenerator, ShardedExecutor
from repro.core.schema import (
    Cardinality,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.io import make_sink
from repro.stats import Zipf

SHARD_ROWS = 2048

#: Pinned full-pipeline budget: bytes of peak traced allocation per
#: shard row at the fixed 20× graph/shard ratio.  Measured ≈ 3.7 KB
#: (dominated by the knows-structure pair-code sampling, a documented
#: global stage); the bound leaves ~2× headroom for allocator noise
#: while still sitting far below the ≈ 10 KB/shard-row an in-memory
#: run of the same graph costs.
FULL_PIPELINE_BYTES_PER_SHARD_ROW = 8192

#: Pinned budget for the properties-only pipeline (no global stages):
#: absolute, graph-size-independent.  Measured ≈ 1.1 MB at
#: shard_rows=2048 including csv formatting buffers.
PROPERTY_PIPELINE_BYTES = 4 * 1024 * 1024


def _person_properties():
    return [
        PropertyDef(
            "age", "long",
            GeneratorSpec("uniform_int", {"low": 18, "high": 80}),
        ),
        PropertyDef(
            "handle", "string",
            GeneratorSpec("composite_key", {"prefix": "person"}),
        ),
        PropertyDef(
            "country", "string",
            GeneratorSpec("categorical", {
                "values": ["DE", "FR", "US", "JP", "BR"],
                "weights": [3, 2, 4, 1, 1],
            }),
        ),
        PropertyDef(
            "joined", "long",
            GeneratorSpec("date_range", {
                "start": 10**9, "end": 2 * 10**9,
            }),
        ),
    ]


def properties_only_schema():
    return Schema(node_types=[
        NodeType("Person", properties=_person_properties()),
    ])


def full_schema():
    schema = Schema(node_types=[
        NodeType("Person", properties=_person_properties()),
        NodeType("Message", properties=[
            PropertyDef(
                "length", "long",
                GeneratorSpec("uniform_int", {"low": 1, "high": 500}),
            ),
        ]),
    ])
    schema.add_edge_type(EdgeType(
        "knows", tail_type="Person", head_type="Person",
        structure=GeneratorSpec(
            "erdos_renyi_m", {"edges_per_node": 2}
        ),
    ))
    schema.add_edge_type(EdgeType(
        "creates", tail_type="Person", head_type="Message",
        cardinality=Cardinality.ONE_TO_MANY, directed=True,
        structure=GeneratorSpec("one_to_many", {
            "degree_distribution": Zipf(1.3, 4),
            "degree_offset": 0,
        }),
    ))
    return schema


def measure_sharded_peak(schema, persons, shard_rows, tmp_path, tag):
    out = tmp_path / f"out-{tag}"
    spool = tmp_path / f"spool-{tag}"
    tracemalloc.start()
    try:
        result = ShardedExecutor(
            schema, {"Person": persons}, seed=5,
            shard_rows=shard_rows, spool_dir=spool,
        ).run(sink=make_sink(
            "csv", out, chunk_size=min(shard_rows, 65536)
        ))
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    result.cleanup()
    return peak


class TestPropertyPipelineBounded:
    """No global stages → peak is independent of graph size."""

    def test_peak_under_pinned_absolute_budget(self, tmp_path):
        peak = measure_sharded_peak(
            properties_only_schema(), 20 * SHARD_ROWS, SHARD_ROWS,
            tmp_path, "props",
        )
        assert peak < PROPERTY_PIPELINE_BYTES, (
            f"peak {peak} exceeds the pinned "
            f"{PROPERTY_PIPELINE_BYTES}-byte budget — a per-shard "
            "stage is materialising whole tables"
        )

    def test_peak_does_not_scale_with_graph_size(self, tmp_path):
        """Doubling the graph must not move the per-shard peak."""
        schema = properties_only_schema()
        small = measure_sharded_peak(
            schema, 10 * SHARD_ROWS, SHARD_ROWS, tmp_path, "n10",
        )
        large = measure_sharded_peak(
            schema, 20 * SHARD_ROWS, SHARD_ROWS, tmp_path, "n20",
        )
        assert large < small * 1.3 + 256 * 1024, (
            f"peak grew {small} -> {large} with graph size; the "
            "property pipeline is no longer shard-bounded"
        )


class TestFullPipelineBounded:
    def test_peak_under_pinned_shard_budget(self, tmp_path):
        """Graph 20× the shard budget; peak < C · shard_rows."""
        peak = measure_sharded_peak(
            full_schema(), 20 * SHARD_ROWS, SHARD_ROWS,
            tmp_path, "full",
        )
        budget = FULL_PIPELINE_BYTES_PER_SHARD_ROW * SHARD_ROWS
        assert peak < budget, (
            f"peak {peak} exceeds C·shard_rows = {budget}; either a "
            "per-shard stage regressed or a new global stage "
            "materialises without spilling"
        )

    def test_sharding_beats_whole_graph_peak(self, tmp_path):
        """The same graph run with one whole-graph shard must peak
        substantially higher — the sensitivity check that the bound
        above is actually measuring sharding, not test slack."""
        schema = full_schema()
        sharded = measure_sharded_peak(
            schema, 20 * SHARD_ROWS, SHARD_ROWS, tmp_path, "sh",
        )
        whole = measure_sharded_peak(
            schema, 20 * SHARD_ROWS, 10**9, tmp_path, "wh",
        )
        assert sharded < 0.75 * whole, (
            f"sharded peak {sharded} is not clearly below the "
            f"whole-graph peak {whole}"
        )


class TestSerialComparison:
    def test_sharded_peak_below_serial_peak(self, tmp_path):
        """End-to-end: out-of-core generation + export peaks below the
        in-memory engine exporting the same graph."""
        schema = full_schema()
        persons = 20 * SHARD_ROWS
        sharded = measure_sharded_peak(
            schema, persons, SHARD_ROWS, tmp_path, "shard",
        )
        tracemalloc.start()
        try:
            GraphGenerator(
                schema, {"Person": persons}, seed=5
            ).generate(sink=make_sink("csv", tmp_path / "serial"))
            serial = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert sharded < 0.75 * serial, (sharded, serial)
