"""Property-based tests (hypothesis) on core invariants.

These exercise the load-bearing contracts:

* skip-seed PRNG — random access equals batch access, values in range;
* distributions — pmf validity and exact integer splitting for any
  parameters;
* joint distributions — symmetry/normalisation closure;
* edge tables — transformation invariants (dedup idempotent, relabel
  preserves counts);
* stub pairing — realised degrees never exceed prescriptions;
* SBM-Part — capacities are hard constraints for arbitrary targets;
* DSL tokenizer — never crashes with a non-DslError on arbitrary input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dsl.errors import DslError
from repro.core.matching import sbm_part_assign
from repro.prng import RandomStream, splitmix64
from repro.stats import (
    Categorical,
    Geometric,
    JointDistribution,
    TruncatedGeometric,
    Zipf,
    empirical_joint,
)
from repro.structure import pair_stubs
from repro.tables import EdgeTable

common_settings = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPrngProperties:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**64 - 1),
        index=st.integers(min_value=0, max_value=2**62),
    )
    def test_random_access_consistency(self, seed, index):
        one = int(splitmix64(seed, index))
        batch = splitmix64(seed, np.array([index], dtype=np.uint64))
        assert one == int(batch[0])

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**63),
        n=st.integers(min_value=1, max_value=300),
    )
    def test_uniform_in_unit_interval(self, seed, n):
        u = RandomStream(seed).uniform(np.arange(n))
        assert (u >= 0).all() and (u < 1).all()

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**63),
        n=st.integers(min_value=1, max_value=200),
    )
    def test_permutation_property(self, seed, n):
        perm = RandomStream(seed).permutation(n)
        assert np.array_equal(np.sort(perm), np.arange(n))

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**63),
        ids=st.lists(
            st.integers(min_value=0, max_value=2**32), max_size=40
        ),
    )
    def test_indexed_substream_seeds_matches_scalar(self, seed, ids):
        """Batched substream seeds equal the scalar path — including
        the empty batch, which must keep the uint64 dtype (empty
        serving pages / shards round-trip through it)."""
        stream = RandomStream(seed)
        batched = stream.indexed_substream_seeds(
            np.asarray(ids, dtype=np.int64)
        )
        assert batched.dtype == np.uint64
        assert batched.shape == (len(ids),)
        for position, index in enumerate(ids):
            expected = stream.indexed_substream(index).seed
            assert int(batched[position]) == expected

    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**63),
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=25,
        ),
    )
    def test_uniform_ragged_matches_per_instance(self, seed, pairs):
        """Ragged draws equal per-instance substream draws for any id
        set — empty id lists and all-zero lengths included."""
        ids = np.array([p[0] for p in pairs], dtype=np.int64)
        lengths = np.array([p[1] for p in pairs], dtype=np.int64)
        stream = RandomStream(seed, "ragged-pbt")
        flat, offsets = stream.uniform_ragged(ids, lengths)
        assert offsets.shape == (len(pairs) + 1,)
        assert offsets[0] == 0 and offsets[-1] == lengths.sum()
        assert flat.dtype == np.float64
        for j, (index, length) in enumerate(pairs):
            segment = flat[offsets[j]:offsets[j + 1]]
            expected = stream.indexed_substream(index).uniform(
                np.arange(length, dtype=np.int64)
            )
            assert np.array_equal(segment, expected)


class TestDistributionProperties:
    @common_settings
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=1,
            max_size=20,
        ),
        n=st.integers(min_value=0, max_value=10_000),
    )
    def test_sizes_always_sum_exactly(self, weights, n):
        sizes = Categorical(weights).sizes(n)
        assert int(sizes.sum()) == n
        assert (sizes >= 0).all()

    @common_settings
    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        k=st.integers(min_value=1, max_value=64),
    )
    def test_truncated_geometric_valid(self, p, k):
        pmf = TruncatedGeometric(p, k).pmf()
        assert np.isclose(pmf.sum(), 1.0)
        assert (pmf >= 1 / (2 * k * k)).all()  # floor keeps mass positive

    @common_settings
    @given(
        s=st.floats(min_value=0.1, max_value=4.0),
        k=st.integers(min_value=1, max_value=100),
    )
    def test_zipf_monotone(self, s, k):
        pmf = Zipf(s, k).pmf()
        assert (np.diff(pmf) <= 1e-15).all()

    @common_settings
    @given(
        p=st.floats(min_value=0.05, max_value=0.95),
        k=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_sampling_stays_in_support(self, p, k, seed):
        dist = Geometric(p, k)
        draws = dist.sample(RandomStream(seed), np.arange(500))
        assert draws.min() >= 0
        assert draws.max() < k


class TestJointProperties:
    @common_settings
    @given(
        data=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0),
                min_size=3,
                max_size=3,
            ),
            min_size=3,
            max_size=3,
        )
    )
    def test_construction_closure(self, data):
        matrix = np.asarray(data)
        if matrix.sum() <= 0:
            return
        joint = JointDistribution(matrix)
        assert np.allclose(joint.matrix, joint.matrix.T)
        assert np.isclose(joint.matrix.sum(), 1.0)
        _pairs, pmf = joint.pair_pmf()
        assert np.isclose(pmf.sum(), 1.0)

    @common_settings
    @given(
        n=st.integers(min_value=2, max_value=50),
        m=st.integers(min_value=1, max_value=100),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_empirical_joint_normalised(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        tails = rng.integers(0, n, m)
        heads = rng.integers(0, n, m)
        labels = rng.integers(0, k, n)
        joint = empirical_joint(tails, heads, labels, k=k)
        assert np.isclose(joint.matrix.sum(), 1.0)


class TestEdgeTableProperties:
    @st.composite
    @staticmethod
    def edge_arrays(draw):
        n = draw(st.integers(min_value=1, max_value=40))
        m = draw(st.integers(min_value=0, max_value=120))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        rng = np.random.default_rng(seed)
        return (
            n,
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
        )

    @common_settings
    @given(data=edge_arrays())
    def test_dedup_idempotent(self, data):
        n, tails, heads = data
        table = EdgeTable("e", tails, heads, num_tail_nodes=n)
        once = table.deduplicated()
        twice = once.deduplicated()
        assert once == twice

    @common_settings
    @given(data=edge_arrays())
    def test_dedup_is_simple(self, data):
        n, tails, heads = data
        simple = EdgeTable(
            "e", tails, heads, num_tail_nodes=n
        ).deduplicated()
        assert (simple.tails != simple.heads).all()
        keys = (np.minimum(simple.tails, simple.heads) * n
                + np.maximum(simple.tails, simple.heads))
        assert np.unique(keys).size == len(simple)

    @common_settings
    @given(data=edge_arrays(), perm_seed=st.integers(0, 1000))
    def test_relabel_by_permutation_preserves_structure(
        self, data, perm_seed
    ):
        n, tails, heads = data
        table = EdgeTable("e", tails, heads, num_tail_nodes=n)
        perm = RandomStream(perm_seed).permutation(n)
        relabeled = table.relabeled(perm)
        assert relabeled.num_edges == table.num_edges
        assert np.array_equal(
            np.sort(relabeled.degrees()), np.sort(table.degrees())
        )


class TestPairStubsProperties:
    @common_settings
    @given(
        degrees=st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=2,
            max_size=60,
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_realised_degrees_bounded(self, degrees, seed):
        degrees = np.asarray(degrees, dtype=np.int64)
        if int(degrees.sum()) % 2:
            degrees[int(np.argmax(degrees))] += 1
        pairs = pair_stubs(degrees, RandomStream(seed), simplify=True)
        if pairs.size:
            realised = np.bincount(
                pairs.ravel(), minlength=degrees.size
            )
            assert (realised <= degrees.size - 1).all()
            # Simplification only removes edges.
            assert realised.sum() <= degrees.sum()


class TestSbmPartProperties:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        k=st.integers(min_value=1, max_value=6),
        target_scale=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_capacities_are_hard_constraints(
        self, seed, k, target_scale
    ):
        rng = np.random.default_rng(seed)
        n = 60
        m = 150
        tails = rng.integers(0, n, m).astype(np.int64)
        heads = rng.integers(0, n, m).astype(np.int64)
        table = EdgeTable(
            "e", tails, heads, num_tail_nodes=n
        ).deduplicated()
        sizes = np.zeros(k, dtype=np.int64)
        for i in range(n):
            sizes[rng.integers(0, k)] += 1
        target = rng.random((k, k)) * target_scale
        target = (target + target.T) / 2
        labels = sbm_part_assign(table, sizes, target)
        assert np.array_equal(
            np.bincount(labels, minlength=k), sizes
        )


class TestDslRobustness:
    @common_settings
    @given(text=st.text(max_size=200))
    def test_tokenizer_total(self, text):
        """Arbitrary input either tokenizes or raises DslError —
        never an unexpected exception type."""
        from repro.core.dsl import tokenize

        try:
            tokens = tokenize(text)
        except DslError:
            return
        assert tokens[-1].kind == "EOF"

    @common_settings
    @given(text=st.text(max_size=200))
    def test_parser_total(self, text):
        from repro.core.dsl import parse

        try:
            parse(text)
        except DslError:
            pass


class TestEngineDeterminismProperty:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        persons=st.integers(min_value=60, max_value=120),
    )
    def test_generation_is_seed_deterministic(self, seed, persons):
        """Two engine runs with identical inputs are table-identical."""
        from repro.core import GraphGenerator
        from repro.datasets import social_network_schema

        schema = social_network_schema(num_countries=6)
        a = GraphGenerator(
            schema, {"Person": persons}, seed=seed
        ).generate()
        b = GraphGenerator(
            schema, {"Person": persons}, seed=seed
        ).generate()
        assert a.edges("knows") == b.edges("knows")
        assert np.array_equal(
            a.node_property("Person", "country").values,
            b.node_property("Person", "country").values,
        )


class TestCsvRoundTripProperty:
    @common_settings
    @given(
        values=st.lists(
            st.integers(min_value=-10**12, max_value=10**12),
            min_size=1,
            max_size=50,
        )
    )
    def test_int_property_round_trip(self, values, tmp_path_factory):
        from repro.io import read_property_table, write_property_table
        from repro.tables import PropertyTable

        directory = tmp_path_factory.mktemp("csv")
        table = PropertyTable("t", np.asarray(values, dtype=np.int64))
        path = write_property_table(table, directory / "t.csv")
        back = read_property_table(path, name="t")
        assert np.array_equal(back.values, table.values)

    @common_settings
    @given(
        texts=st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs", "Cc")
                ),
                min_size=1,
                max_size=20,
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_string_property_round_trip(self, texts, tmp_path_factory):
        from repro.io import read_property_table, write_property_table
        from repro.tables import PropertyTable

        directory = tmp_path_factory.mktemp("csv")
        table = PropertyTable("t", np.asarray(texts, dtype=object))
        path = write_property_table(table, directory / "t.csv")
        back = read_property_table(path, name="t", dtype="object")
        assert list(back.values) == [str(t) for t in texts]


_ROUND_TRIP_TEXT = st.one_of(
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=12,
    ),
    # Adversarial formatting cases: delimiters, quotes, terminators.
    st.sampled_from(
        ["a,b", 'q"t', "nl\nx", "cr\rx", "", " pad ", "é中文", '"',
         '""', ",", "\r\n"]
    ),
)

_CHUNK_SIZES = st.sampled_from([1, 7, 1000])


@st.composite
def _property_values(draw, none_ok=False):
    """A random PT value array over the supported dtypes: ints,
    floats (NaN/inf included), bools, unicode, object strings (and
    None when ``none_ok``) — empty arrays included."""
    kind = draw(st.sampled_from(
        ["int", "float", "bool", "unicode", "object"]
    ))
    n = draw(st.integers(min_value=0, max_value=25))
    if kind == "int":
        return np.array(
            draw(st.lists(
                st.integers(min_value=-2**62, max_value=2**62),
                min_size=n, max_size=n,
            )),
            dtype=np.int64,
        )
    if kind == "float":
        return np.array(
            draw(st.lists(
                st.floats(allow_nan=True, allow_infinity=True,
                          width=64),
                min_size=n, max_size=n,
            )),
            dtype=np.float64,
        )
    if kind == "bool":
        return np.array(
            draw(st.lists(st.booleans(), min_size=n, max_size=n)),
            dtype=bool,
        )
    if kind == "unicode":
        return np.array(
            draw(st.lists(_ROUND_TRIP_TEXT, min_size=n, max_size=n)),
            dtype="<U16",
        )
    element = (
        st.one_of(st.none(), _ROUND_TRIP_TEXT)
        if none_ok else _ROUND_TRIP_TEXT
    )
    return np.array(
        draw(st.lists(element, min_size=n, max_size=n)), dtype=object
    )


def _assert_values_round_tripped(back, values):
    assert back.dtype == values.dtype
    if values.dtype.kind == "f":
        assert np.array_equal(back, values, equal_nan=True)
    else:
        assert list(back) == list(values)


class TestStreamingRoundTripProperties:
    """write→read must be lossless for every dtype, every format,
    every chunk size — including NaN, unicode, bools, None (JSONL)
    and empty tables."""

    @common_settings
    @given(values=_property_values(), chunk_size=_CHUNK_SIZES)
    def test_csv_property_table(self, values, chunk_size,
                                tmp_path_factory):
        from repro.io import read_property_table, write_property_table
        from repro.tables import PropertyTable

        directory = tmp_path_factory.mktemp("csv_rt")
        table = PropertyTable("t", values)
        path = write_property_table(
            table, directory / "t.csv", chunk_size=chunk_size
        )
        back = read_property_table(
            path, name="t", dtype=values.dtype,
            chunk_size=chunk_size,
        )
        _assert_values_round_tripped(back.values, values)

    @common_settings
    @given(
        values=_property_values(none_ok=True),
        chunk_size=_CHUNK_SIZES,
    )
    def test_jsonl_property_table(self, values, chunk_size,
                                  tmp_path_factory):
        from repro.io import (
            read_property_table_jsonl,
            write_property_table_jsonl,
        )
        from repro.tables import PropertyTable

        directory = tmp_path_factory.mktemp("jsonl_rt")
        table = PropertyTable("t", values)
        path = write_property_table_jsonl(
            table, directory / "t.jsonl", chunk_size=chunk_size
        )
        back = read_property_table_jsonl(
            path, name="t", dtype=values.dtype,
            chunk_size=chunk_size,
        )
        _assert_values_round_tripped(back.values, values)

    @common_settings
    @given(
        values=_property_values(),
        fmt=st.sampled_from(["csv", "jsonl"]),
        compress=st.booleans(),
        chunk_size=_CHUNK_SIZES,
    )
    def test_sink_source_manifest_round_trip(
        self, values, fmt, compress, chunk_size, tmp_path_factory
    ):
        """The manifest carries the dtype, so sources need no hints —
        gzipped or not."""
        from repro.io import make_sink, make_source
        from repro.tables import PropertyTable

        directory = tmp_path_factory.mktemp("sink_rt")
        sink = make_sink(
            fmt, directory, chunk_size=chunk_size, compress=compress
        )
        sink.write_property_table(PropertyTable("T.x", values))
        sink.finish()
        back = make_source(fmt, directory).read_property_table("T.x")
        _assert_values_round_tripped(back.values, values)

    @common_settings
    @given(
        m=st.integers(min_value=0, max_value=60),
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
        directed=st.booleans(),
        fmt=st.sampled_from(["csv", "jsonl", "edgelist"]),
        chunk_size=_CHUNK_SIZES,
    )
    def test_edge_table_round_trip(
        self, m, n, seed, directed, fmt, chunk_size, tmp_path_factory
    ):
        from repro.io import make_sink, make_source

        rng = np.random.default_rng(seed)
        table = EdgeTable(
            "e",
            rng.integers(0, n, m).astype(np.int64),
            rng.integers(0, n, m).astype(np.int64),
            num_tail_nodes=n,
            directed=directed,
        )
        directory = tmp_path_factory.mktemp("edge_rt")
        sink = make_sink(fmt, directory, chunk_size=chunk_size)
        sink.write_edge_table(table)
        sink.finish()
        back = make_source(fmt, directory).read_edge_table("e")
        assert back == table


class TestSpoolShardProperties:
    """Spooled tables must round-trip every supported value dtype —
    ints, floats, bools, unicode, object strings, empty arrays — for
    any shard split, since the sharded executor funnels every
    property table through the spool."""

    @common_settings
    @given(
        values=_property_values(),
        shard_rows=st.sampled_from([1, 3, 1000]),
    )
    def test_property_spool_round_trip(
        self, values, shard_rows, tmp_path_factory
    ):
        from repro.io.spool import TableSpool

        spool = TableSpool(
            tmp_path_factory.mktemp("spool"), shard_rows
        )
        for index, (start, stop) in enumerate(
            spool.shard_bounds(len(values))
        ):
            spool.write_property_shard(
                "T.x", index, values[start:stop]
            )
        table = spool.finish_property("T.x")
        assert len(table) == len(values)
        _assert_values_round_tripped(
            np.asarray(table.values), values
        )
        if len(values):
            mid = len(values) // 2
            _assert_values_round_tripped(
                table.read_range(mid, len(values)), values[mid:]
            )
            order = np.arange(len(values) - 1, -1, -1)
            _assert_values_round_tripped(
                table.gather(order), values[order]
            )
        spool.cleanup()


@st.composite
def _random_small_schema(draw):
    """A random schema over the chunkable structure generators and
    the full property-generator palette — the shapes the sharded
    executor must reproduce bit-for-bit."""
    from repro.core.schema import (
        Cardinality,
        EdgeType,
        GeneratorSpec,
        NodeType,
        PropertyDef,
        Schema,
    )
    from repro.stats import Zipf

    def random_property(name):
        kind = draw(st.sampled_from(
            ["uniform_int", "categorical_str", "categorical_int",
             "composite_key", "date_range"]
        ))
        if kind == "uniform_int":
            low = draw(st.integers(-100, 100))
            return PropertyDef(name, "long", GeneratorSpec(
                "uniform_int",
                {"low": low, "high": low + draw(st.integers(1, 50))},
            ))
        if kind == "categorical_str":
            k = draw(st.integers(1, 4))
            return PropertyDef(name, "string", GeneratorSpec(
                "categorical",
                {"values": [f"v{j}" for j in range(k)],
                 "weights": [j + 1 for j in range(k)]},
            ))
        if kind == "categorical_int":
            k = draw(st.integers(1, 4))
            return PropertyDef(name, "long", GeneratorSpec(
                "categorical",
                {"values": [10 * j for j in range(k)],
                 "weights": [1] * k},
            ))
        if kind == "composite_key":
            return PropertyDef(name, "string", GeneratorSpec(
                "composite_key", {"prefix": name},
            ))
        return PropertyDef(name, "long", GeneratorSpec(
            "date_range", {"start": 10**9, "end": 2 * 10**9},
        ))

    a_props = [
        random_property(f"p{i}")
        for i in range(draw(st.integers(0, 3)))
    ]
    one_to_many = draw(st.booleans())
    mono = draw(st.booleans()) or not one_to_many
    node_types = [NodeType("A", properties=a_props)]
    if one_to_many:
        node_types.append(NodeType("B", properties=[
            random_property("q0"),
        ]))
    schema = Schema(node_types=node_types)
    if mono:
        edge_props = [
            random_property(f"e{i}")
            for i in range(draw(st.integers(0, 2)))
        ]
        schema.add_edge_type(EdgeType(
            "knows", tail_type="A", head_type="A",
            properties=edge_props,
            structure=GeneratorSpec(
                "erdos_renyi_m",
                {"edges_per_node": draw(st.integers(1, 3))},
            ),
        ))
    if one_to_many:
        schema.add_edge_type(EdgeType(
            "makes", tail_type="A", head_type="B",
            cardinality=Cardinality.ONE_TO_MANY, directed=True,
            structure=GeneratorSpec("one_to_many", {
                "degree_distribution": Zipf(
                    draw(st.floats(min_value=0.5, max_value=2.0)),
                    draw(st.integers(1, 5)),
                ),
                "degree_offset": draw(st.integers(0, 1)),
            }),
        ))
    return schema


class TestShardedEquivalenceProperty:
    """For ANY small schema, seed, shard size and export format, the
    sharded executor → sink → GraphSource round-trip must reproduce
    the serial engine's tables exactly — including the zero-node
    degenerate graph."""

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schema=_random_small_schema(),
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.sampled_from([0, 1, 17, 40]),
        shard_rows=st.sampled_from([7, 64, 10**9]),
        fmt=st.sampled_from(["csv", "jsonl"]),
    )
    def test_source_tables_equal_serial_engine(
        self, schema, seed, count, shard_rows, fmt,
        tmp_path_factory,
    ):
        from repro.core import GraphGenerator, execute_sharded
        from repro.io import export_graph, make_sink, make_source

        root = tmp_path_factory.mktemp("sharded_eq")
        scale = {"A": count}
        serial = GraphGenerator(schema, scale, seed=seed).generate()
        export_graph(serial, make_sink(fmt, root / "ref"))
        execute_sharded(
            schema, scale, seed=seed,
            sink=make_sink(
                fmt, root / "out",
                chunk_size=min(shard_rows, 1000),
            ),
            shard_rows=shard_rows, spool_dir=root / "spool",
        ).cleanup()
        ref_files = sorted(p.name for p in (root / "ref").iterdir())
        out_files = sorted(p.name for p in (root / "out").iterdir())
        assert out_files == ref_files
        for name in ref_files:
            assert (root / "out" / name).read_bytes() == (
                root / "ref" / name
            ).read_bytes(), name
        # Read back through GraphSource whatever the manifest names
        # as standalone tables (csv: one file per property; jsonl
        # groups properties into records, so only edges appear).
        source = make_source(fmt, root / "out")
        serial_props = dict(serial.node_properties)
        serial_props.update(serial.edge_properties)
        for key in source.property_table_names():
            _assert_values_round_tripped(
                np.asarray(source.read_property_table(key).values),
                np.asarray(serial_props[key].values),
            )
        for key in source.edge_table_names():
            back = source.read_edge_table(key)
            table = serial.edge_tables[key]
            assert np.array_equal(back.tails, table.tails), key
            assert np.array_equal(back.heads, table.heads), key


class TestMixingMatrixProperty:
    @common_settings
    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=1, max_value=100),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=5000),
    )
    def test_total_mass_equals_edge_count(self, n, m, k, seed):
        """diag + off-diag/2 must equal m for any labelling."""
        from repro.partitioning import mixing_matrix

        rng = np.random.default_rng(seed)
        tails = rng.integers(0, n, m).astype(np.int64)
        heads = rng.integers(0, n, m).astype(np.int64)
        table = EdgeTable("e", tails, heads, num_tail_nodes=n)
        labels = rng.integers(0, k, n).astype(np.int64)
        w = mixing_matrix(table, labels, k=k)
        diag = float(np.trace(w))
        off = float((w.sum() - diag) / 2)
        assert diag + off == pytest.approx(table.num_edges)
