"""Tests for SBM, cardinality operators, cascades and bipartite SGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import Categorical, Zipf
from repro.structure import (
    BipartiteConfiguration,
    CascadeForest,
    OneToManyGenerator,
    OneToOneGenerator,
    StochasticBlockModel,
)


class TestStochasticBlockModel:
    def test_block_densities(self):
        probs = np.array([[0.2, 0.01], [0.01, 0.2]])
        sbm = StochasticBlockModel(
            seed=1, sizes=[200, 200], probabilities=probs
        )
        table = sbm.run(400)
        labels = sbm.group_labels(400)
        intra = (labels[table.tails] == labels[table.heads]).mean()
        assert intra > 0.85

    def test_fractions_mode(self):
        sbm = StochasticBlockModel(
            seed=1, fractions=[0.5, 0.5],
            probabilities=np.full((2, 2), 0.05),
        )
        table = sbm.run(301)
        assert table.num_nodes == 301

    def test_sizes_must_sum_to_n(self):
        sbm = StochasticBlockModel(
            seed=1, sizes=[10, 10], probabilities=np.eye(2) * 0.5
        )
        with pytest.raises(ValueError, match="sum"):
            sbm.run(25)

    def test_asymmetric_probabilities_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            StochasticBlockModel(
                seed=0, probabilities=[[0.1, 0.2], [0.3, 0.1]]
            )

    def test_probability_range_validated(self):
        with pytest.raises(ValueError):
            StochasticBlockModel(seed=0, probabilities=[[1.5]])

    def test_expected_edges(self):
        sbm = StochasticBlockModel(
            seed=0, sizes=[100, 100],
            probabilities=np.array([[0.1, 0.0], [0.0, 0.1]]),
        )
        expected = sbm.expected_edges_for_nodes(200)
        assert abs(expected - 2 * 0.1 * 100 * 99 / 2) <= 1

    def test_group_labels_layout(self):
        sbm = StochasticBlockModel(
            seed=0, sizes=[3, 2], probabilities=np.eye(2) * 0.5
        )
        assert np.array_equal(sbm.group_labels(5), [0, 0, 0, 1, 1])


class TestOneToMany:
    def test_every_head_exactly_one_edge(self):
        generator = OneToManyGenerator(
            seed=1, degree_distribution=Zipf(1.2, 20)
        )
        table = generator.run(500)
        assert (np.bincount(table.heads,
                            minlength=table.num_head_nodes) == 1).all()

    def test_head_count_equals_edges(self):
        generator = OneToManyGenerator(
            seed=1, degree_distribution=Categorical([0.0, 1.0])
        )
        table = generator.run(100)
        assert table.num_head_nodes == table.num_edges == 100

    def test_tail_degrees_follow_distribution(self):
        # Degree always exactly 3 (category 3 with offset 0).
        dist = Categorical([0, 0, 0, 1])
        generator = OneToManyGenerator(seed=1, degree_distribution=dist)
        table = generator.run(200)
        assert (table.out_degrees() == 3).all()

    def test_degree_offset(self):
        dist = Categorical([1.0])
        generator = OneToManyGenerator(
            seed=1, degree_distribution=dist, degree_offset=2
        )
        table = generator.run(50)
        assert (table.out_degrees() == 2).all()

    def test_directed(self):
        generator = OneToManyGenerator(
            seed=1, degree_distribution=Zipf(1.0, 5)
        )
        assert generator.run(10).directed

    def test_missing_distribution_raises(self):
        with pytest.raises(ValueError, match="degree_distribution"):
            OneToManyGenerator(seed=1).run(10)


class TestOneToOne:
    def test_bijection(self):
        table = OneToOneGenerator(seed=2).run(300)
        assert np.array_equal(np.sort(table.heads), np.arange(300))
        assert np.array_equal(table.tails, np.arange(300))

    def test_unshuffled_identity(self):
        table = OneToOneGenerator(seed=2, shuffled=False).run(10)
        assert np.array_equal(table.tails, table.heads)

    def test_shuffled_not_identity(self):
        table = OneToOneGenerator(seed=2).run(100)
        assert (table.tails != table.heads).any()


class TestCascadeForest:
    @pytest.fixture(scope="class")
    def forest(self):
        generator = CascadeForest(seed=5, num_cascades=10)
        return generator.run_with_metadata(500)

    def test_edge_count(self, forest):
        assert forest.table.num_edges == 500 - 10

    def test_roots_are_their_own_root(self, forest):
        for root in range(10):
            assert forest.roots[root] == root
            assert forest.parents[root] == -1
            assert forest.depths[root] == 0

    def test_every_nonroot_has_parent(self, forest):
        assert (forest.parents[10:] >= 0).all()

    def test_depth_consistency(self, forest):
        for node in range(10, 500):
            parent = forest.parents[node]
            assert forest.depths[node] == forest.depths[parent] + 1
            assert forest.roots[node] == forest.roots[parent]

    def test_is_forest(self, forest):
        # n nodes, n - roots edges, no cycles by construction: verify
        # via connected components count == number of cascades.
        from repro.graphstats import connected_components

        _, count = connected_components(forest.table)
        assert count == forest.num_cascades

    def test_propagate_monotone(self, forest):
        """The paper's vertex-centric propagation: values must be able
        to increase strictly down the cascade."""
        generator = CascadeForest(seed=5, num_cascades=10)
        initial = [0] * 500
        values = generator.propagate(
            forest, initial, lambda parent, node, depth: parent + 1
        )
        values = np.asarray(values)
        assert np.array_equal(values, forest.depths)

    def test_depth_bias_flattens(self):
        deep = CascadeForest(
            seed=7, num_cascades=5, depth_bias=0.0
        ).run_with_metadata(400)
        flat = CascadeForest(
            seed=7, num_cascades=5, depth_bias=10.0
        ).run_with_metadata(400)
        assert flat.depths.max() <= deep.depths.max()

    def test_empty(self):
        result = CascadeForest(seed=0, num_cascades=3).run_with_metadata(0)
        assert result.table.num_edges == 0


class TestBipartiteConfiguration:
    def test_shapes(self):
        generator = BipartiteConfiguration(
            seed=3,
            tail_distribution=Zipf(1.2, 10),
            head_distribution=Zipf(1.2, 10),
            tail_offset=1,
            head_offset=1,
        )
        table = generator.run(300)
        assert table.is_bipartite or table.num_head_nodes > 0
        assert table.directed

    def test_explicit_head_nodes(self):
        generator = BipartiteConfiguration(
            seed=3,
            tail_distribution=Categorical([0, 1.0]),
            head_distribution=Categorical([0, 1.0]),
            head_nodes=40,
        )
        table = generator.run(100)
        assert table.num_head_nodes == 40

    def test_no_duplicate_pairs(self):
        generator = BipartiteConfiguration(
            seed=3,
            tail_distribution=Zipf(1.0, 8),
            head_distribution=Zipf(1.0, 8),
            tail_offset=1,
            head_offset=1,
        )
        table = generator.run(200)
        keys = table.tails * table.num_head_nodes + table.heads
        assert np.unique(keys).size == len(table)

    def test_missing_distributions_raise(self):
        with pytest.raises(ValueError):
            BipartiteConfiguration(seed=0).run(10)


class TestAttributedSbm:
    def _joint(self):
        from repro.stats import TruncatedGeometric, homophily_joint

        return homophily_joint(TruncatedGeometric(0.4, 8).pmf(), 0.7)

    def test_joint_realised_by_construction(self):
        from repro.stats import compare_joints, empirical_joint
        from repro.structure import AttributedSbmGenerator

        joint = self._joint()
        generator = AttributedSbmGenerator(
            seed=1, joint=joint, avg_degree=12
        )
        result = generator.run_with_labels(2000)
        observed = empirical_joint(
            result.table.tails, result.table.heads, result.labels, k=8
        )
        assert compare_joints(joint, observed).ks < 0.05

    def test_labels_sized_by_marginal(self):
        from repro.structure import AttributedSbmGenerator

        joint = self._joint()
        generator = AttributedSbmGenerator(
            seed=1, joint=joint, avg_degree=10
        )
        result = generator.run_with_labels(1000)
        sizes = np.bincount(result.labels, minlength=8)
        expected = joint.marginal() * 1000
        assert np.abs(sizes - expected).max() <= 1.0

    def test_explicit_group_sizes(self):
        from repro.structure import AttributedSbmGenerator

        joint = self._joint()
        sizes = np.full(8, 125, dtype=np.int64)
        generator = AttributedSbmGenerator(
            seed=1, joint=joint, group_sizes=sizes, avg_degree=10
        )
        result = generator.run_with_labels(1000)
        assert np.array_equal(
            np.bincount(result.labels, minlength=8), sizes
        )

    def test_group_sizes_must_sum(self):
        from repro.structure import AttributedSbmGenerator

        generator = AttributedSbmGenerator(
            seed=1, joint=self._joint(),
            group_sizes=np.full(8, 10, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="sum"):
            generator.run_with_labels(1000)

    def test_edge_count_near_target(self):
        from repro.structure import AttributedSbmGenerator

        generator = AttributedSbmGenerator(
            seed=2, joint=self._joint(), avg_degree=14
        )
        table = generator.run(2000)
        target = 2000 * 14 / 2
        assert abs(table.num_edges - target) < 0.1 * target

    def test_missing_joint_raises(self):
        from repro.structure import AttributedSbmGenerator

        with pytest.raises(ValueError, match="joint"):
            AttributedSbmGenerator(seed=0, avg_degree=10).run(100)

    def test_registered(self):
        from repro.structure import create_generator

        generator = create_generator(
            "attributed_sbm", seed=0, joint=self._joint(),
            avg_degree=8,
        )
        assert generator.run(500).num_edges > 0
