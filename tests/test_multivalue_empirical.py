"""Tests for multi-valued properties (§5) and the empirical SG."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.properties import MultiValueGenerator
from repro.stats import (
    empirical_multivalue_joint,
    encode_value_sets,
)
from repro.structure import EmpiricalDegreeGenerator, create_generator
from repro.tables import EdgeTable


class TestMultiValueGenerator:
    def test_sizes_in_bounds(self, stream):
        generator = MultiValueGenerator(
            values=list("abcdefgh"), min_size=2, max_size=4
        )
        out = generator.run_many(
            np.arange(300, dtype=np.int64), stream
        )
        for value_set in out:
            assert 2 <= len(value_set) <= 4

    def test_values_distinct_within_instance(self, stream):
        generator = MultiValueGenerator(
            values=list("abcde"), min_size=3, max_size=5
        )
        out = generator.run_many(
            np.arange(200, dtype=np.int64), stream
        )
        for value_set in out:
            assert len(set(value_set)) == len(value_set)

    def test_popularity_skew(self, stream):
        generator = MultiValueGenerator(
            values=list("abcdefghij"), min_size=1, max_size=2,
            exponent=1.5,
        )
        out = generator.run_many(
            np.arange(3000, dtype=np.int64), stream
        )
        first = sum(1 for s in out if "a" in s)
        last = sum(1 for s in out if "j" in s)
        assert first > 3 * last

    def test_in_place_random_access(self, stream):
        generator = MultiValueGenerator(
            values=list("abcdef"), min_size=1, max_size=3
        )
        full = generator.run_many(
            np.arange(100, dtype=np.int64), stream
        )
        single = generator.run_many(
            np.array([42], dtype=np.int64), stream
        )
        assert single[0] == full[42]

    def test_max_size_validated(self):
        with pytest.raises(ValueError, match="universe"):
            MultiValueGenerator(values=["a"], min_size=1, max_size=2)

    def test_registered(self):
        from repro.properties import create_property_generator

        generator = create_property_generator(
            "multi_value", values=["x", "y"], min_size=1, max_size=1
        )
        assert isinstance(generator, MultiValueGenerator)


class TestEncodeValueSets:
    def test_encoding_round_trip(self):
        sets = [("b", "a"), ("c",), ()]
        encoded, universe = encode_value_sets(sets)
        assert universe == ["a", "b", "c"]
        assert encoded[0] == (1, 0)
        assert encoded[2] == ()

    def test_explicit_universe(self):
        encoded, universe = encode_value_sets(
            [("x",)], universe=["x", "y"]
        )
        assert universe == ["x", "y"]
        assert encoded == [(0,)]

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            encode_value_sets([("z",)], universe=["x"])


class TestEmpiricalMultivalueJoint:
    def test_unit_mass_per_edge(self):
        sets = [(0,), (0, 1), (1,)]
        joint = empirical_multivalue_joint([0, 1], [1, 2], sets, k=2)
        assert np.isclose(joint.matrix.sum(), 1.0)

    def test_homophilous_sets_show_diagonal(self):
        # Nodes 0-4 tagged {0}, nodes 5-9 tagged {1}; edges intra-block.
        sets = [(0,)] * 5 + [(1,)] * 5
        tails = [0, 1, 2, 5, 6, 7]
        heads = [1, 2, 3, 6, 7, 8]
        joint = empirical_multivalue_joint(tails, heads, sets, k=2)
        assert np.trace(joint.matrix) > 0.99

    def test_cross_pairs_share_mass(self):
        sets = [(0, 1), (0, 1)]
        joint = empirical_multivalue_joint([0], [1], sets, k=2)
        # 4 cross pairs, each 1/4 of the edge mass.
        assert np.isclose(joint.matrix[0, 0], 0.25)
        assert np.isclose(
            joint.matrix[0, 1] + joint.matrix[1, 0], 0.5
        )

    def test_unlabelled_edges_skipped(self):
        sets = [(), (0,), (0,)]
        joint = empirical_multivalue_joint([0, 1], [1, 2], sets, k=1)
        assert np.isclose(joint.matrix[0, 0], 1.0)

    def test_no_labelled_edges_raises(self):
        with pytest.raises(ValueError, match="no labelled edges"):
            empirical_multivalue_joint([0], [1], [(), ()], k=1)

    def test_infers_k(self):
        sets = [(2,), (0,)]
        joint = empirical_multivalue_joint([0], [1], sets)
        assert joint.k == 3


class TestEmpiricalDegreeGenerator:
    def test_from_degree_sequence(self):
        observed = np.array([1] * 50 + [10] * 50)
        generator = EmpiricalDegreeGenerator(seed=1, degrees=observed)
        table = generator.run(2000)
        realised = table.degrees()
        # Bimodal shape preserved (allowing erasure losses on the
        # degree-10 mode).
        low = (realised <= 2).mean()
        high = (realised >= 7).mean()
        assert low > 0.3
        assert high > 0.3

    def test_from_source_table(self, small_lfr):
        generator = EmpiricalDegreeGenerator(
            seed=2, source=small_lfr.table
        )
        table = generator.run(500)
        original_mean = small_lfr.table.degrees().mean()
        assert abs(table.degrees().mean() - original_mean) \
            < 0.35 * original_mean

    def test_from_edgelist_file(self, tmp_path):
        from repro.io import write_edgelist
        from repro.structure import ErdosRenyiM

        source = ErdosRenyiM(seed=3, m=400).run(200)
        path = write_edgelist(source, tmp_path / "g.edges")
        generator = EmpiricalDegreeGenerator(seed=4, path=str(path))
        table = generator.run(300)
        assert table.num_edges > 0

    def test_missing_source_raises(self):
        with pytest.raises(ValueError, match="source"):
            EmpiricalDegreeGenerator(seed=0).run(10)

    def test_registered(self):
        generator = create_generator(
            "empirical_degrees", seed=1, degrees=[2, 2, 2, 2]
        )
        assert generator.run(100).num_edges > 0

    def test_get_num_nodes(self):
        generator = EmpiricalDegreeGenerator(
            seed=1, degrees=np.full(100, 8)
        )
        n = generator.get_num_nodes(4000)
        assert abs(n - 1000) <= 1
