"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

DSL = """
graph tiny {
  node Person {
    age: long = uniform_int(low=18, high=80)
  }
  edge knows: Person -- Person [*..*] {
    structure = erdos_renyi_m(edges_per_node=3)
  }
  scale { Person = 50 }
}
"""


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "s.dsl", "--seed", "7", "--format", "jsonl"]
        )
        assert args.schema == "s.dsl"
        assert args.seed == 7


class TestGenerate:
    def test_csv_output(self, tmp_path, capsys):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        out = tmp_path / "out"
        code = main(
            ["generate", str(schema_path), "--out", str(out)]
        )
        assert code == 0
        assert (out / "knows.csv").exists()
        assert (out / "Person.age.csv").exists()
        assert "generated graph 'tiny'" in capsys.readouterr().out

    def test_scale_override(self, tmp_path, capsys):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        main(
            [
                "generate", str(schema_path),
                "--scale", "Person=20",
                "--out", str(tmp_path / "o"),
            ]
        )
        out = capsys.readouterr().out
        assert "'Person': 20" in out

    def test_bad_scale_entry(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        with pytest.raises(SystemExit, match="TYPE=COUNT"):
            main(
                ["generate", str(schema_path), "--scale", "Person"]
            )

    def test_edgelist_format(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        out = tmp_path / "o"
        main(
            [
                "generate", str(schema_path),
                "--format", "edgelist", "--out", str(out),
            ]
        )
        assert (out / "knows.edges").exists()

    def test_workers_flag_same_output(self, tmp_path, capsys):
        """--workers N routes through the parallel executor and writes
        the same files with the same contents."""
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        assert main(
            ["generate", str(schema_path), "--out", str(serial_out)]
        ) == 0
        assert main(
            [
                "generate", str(schema_path),
                "--workers", "2", "--out", str(parallel_out),
            ]
        ) == 0
        for name in ("Person.age.csv", "knows.csv"):
            assert (
                (serial_out / name).read_text()
                == (parallel_out / name).read_text()
            )

    def test_jsonl_format(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        out = tmp_path / "o"
        main(
            [
                "generate", str(schema_path),
                "--format", "jsonl", "--out", str(out),
            ]
        )
        assert (out / "Person.jsonl").exists()

    def test_graphml_format(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        out = tmp_path / "o"
        main(
            [
                "generate", str(schema_path),
                "--format", "graphml", "--out", str(out),
            ]
        )
        assert (out / "knows.graphml").exists()

    def test_chunk_size_does_not_change_bytes(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        default_out = tmp_path / "default"
        chunked_out = tmp_path / "chunked"
        main(["generate", str(schema_path), "--out", str(default_out)])
        main(
            [
                "generate", str(schema_path),
                "--chunk-size", "3", "--out", str(chunked_out),
            ]
        )
        for name in ("Person.age.csv", "knows.csv"):
            assert (default_out / name).read_bytes() == \
                (chunked_out / name).read_bytes()

    def test_compress_flag(self, tmp_path):
        import gzip

        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        plain_out = tmp_path / "plain"
        gz_out = tmp_path / "gz"
        main(["generate", str(schema_path), "--out", str(plain_out)])
        main(
            [
                "generate", str(schema_path),
                "--compress", "--out", str(gz_out),
            ]
        )
        packed = (gz_out / "knows.csv.gz").read_bytes()
        assert gzip.decompress(packed) == \
            (plain_out / "knows.csv").read_bytes()

    def test_bad_chunk_size_rejected(self, tmp_path):
        schema_path = tmp_path / "tiny.dsl"
        schema_path.write_text(DSL)
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", str(schema_path), "--chunk-size", "0"]
            )


class TestProtocol:
    def test_prints_cdf_table(self, capsys):
        code = main(
            [
                "protocol", "--kind", "lfr", "--size", "300",
                "--k", "4", "--points", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "LFR(0k,4)" in out or "LFR(" in out
        assert "expected-cdf" in out

    def test_matcher_choice(self, capsys):
        main(
            [
                "protocol", "--kind", "lfr", "--size", "300",
                "--k", "4", "--matcher", "random",
            ]
        )
        assert "matcher=random" in capsys.readouterr().out


class TestExample:
    def test_runs(self, capsys, tmp_path):
        code = main(
            [
                "example", "--persons", "200",
                "--out", str(tmp_path / "ex"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "running example" in out
        assert (tmp_path / "ex" / "knows.csv").exists()


class TestAnalyze:
    def test_prints_profile(self, tmp_path, capsys):
        from repro.io import write_edgelist
        from repro.structure import ErdosRenyiM

        table = ErdosRenyiM(seed=1, m=300).run(100)
        path = write_edgelist(table, tmp_path / "g.edges")
        code = main(["analyze", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "num_edges: 300" in out
        assert "average_clustering" in out

    def test_no_clustering_flag(self, tmp_path, capsys):
        from repro.io import write_edgelist
        from repro.structure import ErdosRenyiM

        table = ErdosRenyiM(seed=1, m=50).run(40)
        path = write_edgelist(table, tmp_path / "g.edges")
        main(["analyze", str(path), "--no-clustering"])
        assert "average_clustering" not in capsys.readouterr().out
