"""Tests for joint distributions P(X, Y)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import JointDistribution, empirical_joint, homophily_joint
from repro.tables import EdgeTable


class TestJointDistribution:
    def test_symmetrised_and_normalised(self):
        joint = JointDistribution([[1.0, 2.0], [0.0, 1.0]])
        assert np.allclose(joint.matrix, joint.matrix.T)
        assert np.isclose(joint.matrix.sum(), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            JointDistribution(np.ones((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            JointDistribution([[1.0, -0.5], [-0.5, 1.0]])

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            JointDistribution(np.zeros((3, 3)))

    def test_marginal_sums_to_one(self):
        joint = JointDistribution(np.ones((4, 4)))
        assert np.isclose(joint.marginal().sum(), 1.0)

    def test_pair_probability_symmetry(self):
        joint = JointDistribution([[0.4, 0.1], [0.1, 0.4]])
        assert joint.pair_probability(0, 1) == joint.pair_probability(1, 0)
        assert np.isclose(
            joint.pair_probability(0, 1), 2 * joint.matrix[0, 1]
        )

    def test_pair_pmf_sums_to_one(self):
        joint = JointDistribution(np.random.default_rng(0).random((5, 5)))
        pairs, pmf = joint.pair_pmf()
        assert pairs.shape == (15, 2)
        assert np.isclose(pmf.sum(), 1.0)
        assert (pairs[:, 0] <= pairs[:, 1]).all()

    def test_condition_on(self):
        joint = JointDistribution([[0.4, 0.1], [0.1, 0.4]])
        conditional = joint.condition_on(0)
        assert np.isclose(conditional.sum(), 1.0)
        assert conditional[0] > conditional[1]

    def test_edge_count_target_scaling(self):
        joint = JointDistribution(np.ones((3, 3)))
        target = joint.edge_count_target(90)
        assert np.isclose(target.sum(), 90.0)

    def test_sbm_probabilities_shape_and_range(self):
        joint = JointDistribution([[0.6, 0.2], [0.2, 0.0]])
        delta = joint.sbm_probabilities([10, 10], 40)
        assert delta.shape == (2, 2)
        assert (delta >= 0).all() and (delta <= 1).all()
        # Diagonal-heavy joint -> intra probability dominates.
        assert delta[0, 0] > delta[0, 1]

    def test_sbm_probabilities_validates_sizes(self):
        joint = JointDistribution(np.ones((2, 2)))
        with pytest.raises(ValueError):
            joint.sbm_probabilities([10, 10, 10], 40)


class TestEmpiricalJoint:
    def test_counts_single_edge(self):
        joint = empirical_joint([0], [1], [0, 1], k=2)
        # One 0-1 edge: symmetric mass split across (0,1) and (1,0).
        assert np.isclose(joint.matrix[0, 1] + joint.matrix[1, 0], 1.0)
        assert joint.matrix[0, 0] == 0.0

    def test_intra_edge_on_diagonal(self):
        joint = empirical_joint([0], [1], [2, 2, 0], k=3)
        assert np.isclose(joint.matrix[2, 2], 1.0)

    def test_infers_k(self):
        joint = empirical_joint([0, 1], [1, 2], [0, 1, 4])
        assert joint.k == 5

    def test_mixed_graph(self):
        # Two intra-0 edges, one 0-1 edge.
        tails = [0, 1, 0]
        heads = [1, 2, 3]
        labels = [0, 0, 0, 1]
        joint = empirical_joint(tails, heads, labels, k=2)
        assert np.isclose(joint.matrix[0, 0], 2 / 3)
        assert np.isclose(2 * joint.matrix[0, 1], 1 / 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            empirical_joint([0, 1], [1], [0, 0], k=1)


class TestHomophilyJoint:
    def test_affinity_zero_is_independence(self):
        marginal = np.array([0.5, 0.3, 0.2])
        joint = homophily_joint(marginal, 0.0)
        assert np.allclose(joint.matrix, np.outer(marginal, marginal))

    def test_affinity_one_is_diagonal(self):
        marginal = np.array([0.5, 0.5])
        joint = homophily_joint(marginal, 1.0)
        assert np.allclose(joint.matrix, np.diag(marginal))

    def test_interpolation_monotone_in_diagonal(self):
        marginal = np.array([0.6, 0.4])
        diag_low = np.trace(homophily_joint(marginal, 0.2).matrix)
        diag_high = np.trace(homophily_joint(marginal, 0.8).matrix)
        assert diag_high > diag_low

    def test_marginal_preserved(self):
        marginal = np.array([0.7, 0.2, 0.1])
        joint = homophily_joint(marginal, 0.5)
        assert np.allclose(joint.marginal(), marginal)

    def test_rejects_bad_affinity(self):
        with pytest.raises(ValueError):
            homophily_joint([0.5, 0.5], 1.5)

    def test_rejects_bad_marginal(self):
        with pytest.raises(ValueError):
            homophily_joint([], 0.5)
        with pytest.raises(ValueError):
            homophily_joint([-0.5, 1.5], 0.5)


class TestRoundTrip:
    def test_sbm_generated_graph_recovers_joint(self, stream):
        """Sampling an SBM from a joint and measuring it empirically
        should approximately recover the joint (model consistency)."""
        from repro.structure import StochasticBlockModel

        joint = homophily_joint([0.5, 0.3, 0.2], 0.7)
        sizes = np.array([500, 300, 200])
        delta = joint.sbm_probabilities(sizes, 8000)
        sbm = StochasticBlockModel(
            seed=4, sizes=sizes, probabilities=delta
        )
        table = sbm.run(1000)
        labels = sbm.group_labels(1000)
        observed = empirical_joint(table.tails, table.heads, labels, k=3)
        assert np.abs(observed.matrix - joint.matrix).max() < 0.05
