"""Memory-boundedness of the virtual-graph serving mode.

The serving claim (docs/serving.md): after start-up, answering a
paginated query allocates O(page + chunk_rows) — *independent of graph
size* — because node properties are recomputed from the seed at the
queried ids, edge pages are re-emitted from the structure generator's
chunk stream, and the matching maps (the documented O(nodes) start-up
term) live in disk-backed memory maps, not the heap.

Pinned tracemalloc-style (see tests/test_sharded_memory.py):

* an absolute budget on the query-phase peak over a **1M-node** graph;
* size-independence — the same query mix over a 16× smaller graph
  peaks within noise of the large one;
* a sensitivity check — materialising one full property column blows
  the budget, so the bound would catch a table sneaking into RAM.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.schema import (
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.io.chunks import (
    format_edge_csv_chunk,
    format_property_csv_chunk,
)
from repro.serve import VirtualGraph

CHUNK_ROWS = 8192
PAGE = 1024

SMALL_N = 1 << 16
LARGE_N = 1 << 20  # the 1M-node recipe

#: Absolute pinned budget for one query sweep (pages + one structure
#: chunk + formatter buffers).  Measured ≈ 1.1 MB at chunk_rows=8192;
#: 8 MB leaves allocator headroom while sitting ~1000× below the
#: ≈ 1 GB an in-memory copy of the large graph's tables would cost.
QUERY_SWEEP_BYTES = 8 * 1024 * 1024


def serving_schema():
    """Random-access everything: rmat (simplify=false) + pure PGs."""
    schema = Schema(node_types=[
        NodeType("Person", properties=[
            PropertyDef(
                "age", "long",
                GeneratorSpec("uniform_int", {"low": 18, "high": 80}),
            ),
            PropertyDef(
                "country", "string",
                GeneratorSpec("categorical", {
                    "values": ["DE", "FR", "US", "JP", "BR"],
                    "weights": [3, 2, 4, 1, 1],
                }),
            ),
        ]),
    ])
    schema.add_edge_type(EdgeType(
        "follows", tail_type="Person", head_type="Person",
        directed=True,
        structure=GeneratorSpec("rmat", {
            "edge_factor": 2, "simplify": False,
        }),
    ))
    return schema


def query_sweep(virtual):
    """The representative query mix a serving process answers.

    Front, middle and tail pages of every table — including the CSV
    formatting the HTTP handler performs — plus scattered point
    lookups.  Returns a checksum so nothing is optimised away.
    """
    total = 0
    n = virtual.node_count("Person")
    m = virtual.edge_count("follows")
    for lo in (0, n // 2, n - PAGE):
        ids = np.arange(lo, lo + PAGE, dtype=np.int64)
        for prop in ("age", "country"):
            values = virtual.node_properties_of("Person", prop, ids)
            total += len(format_property_csv_chunk(lo, values))
    for lo in (0, m // 2, m - PAGE):
        tails, heads = virtual.edges_range("follows", lo, lo + PAGE)
        total += len(format_edge_csv_chunk(lo, tails, heads))
    scattered = np.array([0, n - 1, n // 3, 7], dtype=np.int64)
    total += int(
        virtual.node_properties_of("Person", "age", scattered).sum()
    )
    total += int(virtual.edge_exists(
        "follows", *(int(x[0]) for x in virtual.edges_range(
            "follows", m // 2, m // 2 + 1
        ))
    ))
    return total


def measure_query_peak(n, tmp_path, tag):
    """Peak traced allocation of the query phase (post-warm)."""
    virtual = VirtualGraph(
        serving_schema(), {"Person": n}, seed=11,
        spool_dir=tmp_path / f"spool-{tag}", chunk_rows=CHUNK_ROWS,
    )
    try:
        virtual.warm()  # start-up: builds + spills the matching maps
        tracemalloc.start()
        try:
            checksum = query_sweep(virtual)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        assert checksum > 0
        return peak
    finally:
        virtual.close()


class TestServingMemoryBounded:
    @pytest.fixture(scope="class")
    def peaks(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("serve-mem")
        return {
            "small": measure_query_peak(SMALL_N, tmp_path, "small"),
            "large": measure_query_peak(LARGE_N, tmp_path, "large"),
        }

    def test_million_node_queries_under_pinned_budget(self, peaks):
        assert peaks["large"] < QUERY_SWEEP_BYTES, (
            f"query peak {peaks['large']} bytes exceeds the pinned "
            f"{QUERY_SWEEP_BYTES}-byte budget on the 1M-node graph — "
            "a serving path is materialising a whole table"
        )

    def test_peak_is_size_independent(self, peaks):
        assert peaks["large"] < peaks["small"] * 1.3 + 256 * 1024, (
            f"16x more nodes moved the query peak from "
            f"{peaks['small']} to {peaks['large']} bytes — serving "
            "memory must not scale with graph size"
        )

    def test_bound_detects_materialisation(self, tmp_path):
        """Sensitivity: a full-column query breaks the pinned budget.

        Guards the budget itself — if QUERY_SWEEP_BYTES drifted so
        high that whole-table reads fit, the two tests above would
        stop meaning anything.
        """
        virtual = VirtualGraph(
            serving_schema(), {"Person": LARGE_N}, seed=11,
            spool_dir=tmp_path / "spool-sens", chunk_rows=CHUNK_ROWS,
        )
        try:
            virtual.warm()
            tracemalloc.start()
            try:
                ids = np.arange(LARGE_N, dtype=np.int64)
                values = virtual.node_properties_of(
                    "Person", "age", ids
                )
                peak = tracemalloc.get_traced_memory()[1]
            finally:
                tracemalloc.stop()
            assert values.size == LARGE_N
            assert peak > QUERY_SWEEP_BYTES
        finally:
            virtual.close()
