"""Tests for the simple structure generators and the SG contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.stats import Categorical, Empirical
from repro.structure import (
    BarabasiAlbert,
    ConfigurationModel,
    ErdosRenyi,
    ErdosRenyiM,
    StructureGenerator,
    WattsStrogatz,
    pair_stubs,
    pair_stubs_with_repair,
)


class TestSgContract:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError, match="unexpected parameter"):
            ErdosRenyi(seed=0, nonsense=1)

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            ErdosRenyiM(seed=0, m=5).run(-1)

    def test_get_num_nodes_inverts_edge_model(self):
        generator = ErdosRenyiM(seed=0, edges_per_node=8)
        n = generator.get_num_nodes(8_000)
        assert generator.expected_edges_for_nodes(n) >= 8_000
        assert generator.expected_edges_for_nodes(n - 1) < 8_000

    def test_get_num_nodes_zero(self):
        assert ErdosRenyiM(seed=0, m=0).get_num_nodes(0) == 0

    def test_base_generate_not_implemented(self):
        class Incomplete(StructureGenerator):
            name = "incomplete"

        with pytest.raises(NotImplementedError):
            Incomplete(seed=0).run(10)

    def test_determinism_same_seed(self):
        a = ErdosRenyiM(seed=5, m=200).run(100)
        b = ErdosRenyiM(seed=5, m=200).run(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = ErdosRenyiM(seed=5, m=200).run(100)
        b = ErdosRenyiM(seed=6, m=200).run(100)
        assert a != b


class TestErdosRenyi:
    def test_edge_count_close_to_expectation(self):
        table = ErdosRenyi(seed=1, p=0.01).run(1000)
        expected = 1000 * 999 / 2 * 0.01
        assert abs(table.num_edges - expected) < 5 * np.sqrt(expected)

    def test_simple_graph(self):
        table = ErdosRenyi(seed=1, p=0.05).run(300)
        assert (table.tails != table.heads).all()
        keys = (np.minimum(table.tails, table.heads) * 300
                + np.maximum(table.tails, table.heads))
        assert np.unique(keys).size == len(table)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            ErdosRenyi(seed=0, p=1.5)

    def test_gnm_exact_count(self):
        table = ErdosRenyiM(seed=2, m=500).run(200)
        assert table.num_edges == 500

    def test_gnm_cannot_exceed_complete(self):
        table = ErdosRenyiM(seed=2, m=10**9).run(30)
        assert table.num_edges == 30 * 29 // 2


class TestConfigurationModel:
    def test_pair_stubs_even_sum_required(self, stream):
        with pytest.raises(ValueError, match="even"):
            pair_stubs(np.array([1, 2]), stream)

    def test_pair_stubs_respects_degrees_loosely(self, stream):
        degrees = np.array([3, 3, 2, 2, 2])
        pairs = pair_stubs(degrees, stream, simplify=False)
        realised = np.bincount(pairs.ravel(), minlength=5)
        assert np.array_equal(realised, degrees)

    def test_pair_stubs_simplify_no_loops(self, stream):
        degrees = np.full(20, 6)
        pairs = pair_stubs(degrees, stream)
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_repair_recovers_degree_mass(self, stream):
        # Dense community: plain erased pairing loses a lot; repair
        # rounds must recover most of it.
        degrees = np.full(30, 20)
        plain = pair_stubs(degrees, stream)
        repaired = pair_stubs_with_repair(
            degrees, stream.substream("r")
        )
        assert repaired.shape[0] > plain.shape[0]
        realised = np.bincount(repaired.ravel(), minlength=30)
        assert realised.mean() >= 0.85 * 20

    def test_repair_no_duplicate_edges(self, stream):
        degrees = np.full(25, 12)
        pairs = pair_stubs_with_repair(degrees, stream)
        keys = pairs[:, 0] * 25 + pairs[:, 1]
        assert np.unique(keys).size == pairs.shape[0]

    def test_explicit_degrees(self):
        degrees = np.array([2, 2, 2, 2])
        table = ConfigurationModel(seed=3, degrees=degrees).run(4)
        assert table.num_nodes == 4
        assert (table.degrees() <= 3).all()

    def test_distribution_mode(self):
        dist = Categorical([0.0, 0.0, 1.0])  # everyone degree 2
        table = ConfigurationModel(seed=3, distribution=dist).run(500)
        realised = table.degrees()
        assert abs(realised.mean() - 2.0) < 0.2

    def test_wrong_length_degrees_raises(self):
        generator = ConfigurationModel(seed=0, degrees=[2, 2])
        with pytest.raises(ValueError, match="length"):
            generator.run(3)

    def test_expected_edges(self):
        generator = ConfigurationModel(seed=0, degrees=[3, 3, 2])
        assert generator.expected_edges_for_nodes(3) == 4


class TestBarabasiAlbert:
    def test_edge_count(self):
        table = BarabasiAlbert(seed=1, m=3).run(200)
        assert table.num_edges == 3 + (200 - 4) * 3

    def test_small_n_complete(self):
        table = BarabasiAlbert(seed=1, m=5).run(4)
        assert table.num_edges == 6

    def test_hub_formation(self):
        table = BarabasiAlbert(seed=2, m=2).run(1000)
        degrees = table.degrees()
        # Preferential attachment creates hubs well above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            BarabasiAlbert(seed=0, m=0)


class TestWattsStrogatz:
    def test_ring_structure_no_rewiring(self):
        table = WattsStrogatz(seed=1, k=4, beta=0.0).run(50)
        degrees = table.degrees()
        assert (degrees == 4).all()

    def test_rewiring_perturbs(self):
        ring = WattsStrogatz(seed=1, k=4, beta=0.0).run(100)
        rewired = WattsStrogatz(seed=1, k=4, beta=0.5).run(100)
        assert ring != rewired

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError, match="even"):
            WattsStrogatz(seed=0, k=3)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            WattsStrogatz(seed=0, k=4, beta=2.0)

    def test_high_clustering_low_beta(self):
        from repro.graphstats import average_clustering

        table = WattsStrogatz(seed=1, k=6, beta=0.05).run(200)
        assert average_clustering(table) > 0.3
