"""Tests for BTER and Darwini (the clustering-aware generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphstats import (
    average_clustering,
    clustering_per_degree,
    degree_assortativity,
)
from repro.structure import BTER, Darwini, chung_lu_pairs


class TestChungLu:
    def test_edge_count_half_weight_sum(self, stream):
        weights = np.full(100, 4.0)
        pairs = chung_lu_pairs(weights, stream)
        # Erased duplicates shrink it slightly; must be in the ballpark.
        assert 150 <= pairs.shape[0] <= 200

    def test_zero_weights_no_edges(self, stream):
        assert chung_lu_pairs(np.zeros(10), stream).size == 0

    def test_rejects_negative(self, stream):
        with pytest.raises(ValueError):
            chung_lu_pairs(np.array([-1.0, 2.0]), stream)

    def test_degree_proportional(self, stream):
        weights = np.array([50.0] + [1.0] * 200)
        pairs = chung_lu_pairs(weights, stream)
        degrees = np.bincount(pairs.ravel(), minlength=201)
        assert degrees[0] > 5 * degrees[1:].mean()


class TestBTER:
    @pytest.fixture(scope="class")
    def graph(self):
        return BTER(seed=9, avg_degree=16, max_degree=40).run(3000)

    def test_mean_degree(self, graph):
        assert 10 <= graph.degrees().mean() <= 20

    def test_clustering_above_chung_lu(self, graph):
        # A pure Chung-Lu graph of this density has cc ~ d/n ~ 0.005;
        # BTER's affinity blocks must push it way up.
        assert average_clustering(graph) > 0.1

    def test_positive_assortativity(self, graph):
        # Documented side effect in the paper's Table 1 discussion.
        assert degree_assortativity(graph) > 0.0

    def test_ccd_declines_with_degree(self, graph):
        degrees, ccs = clustering_per_degree(graph)
        low = ccs[degrees <= 10].mean()
        high_mask = degrees >= 25
        if high_mask.any():
            high = ccs[high_mask].mean()
            assert low > high

    def test_explicit_degrees(self):
        degrees = np.full(300, 10)
        graph = BTER(seed=1, degrees=degrees).run(300)
        assert abs(graph.degrees().mean() - 10) < 2.5

    def test_scalar_ccd(self):
        graph = BTER(seed=2, avg_degree=10, max_degree=25,
                     ccd=0.5).run(1000)
        assert average_clustering(graph) > 0.15

    def test_array_ccd(self):
        ccd = np.full(41, 0.4)
        graph = BTER(seed=2, avg_degree=10, max_degree=40,
                     ccd=ccd).run(1000)
        assert graph.num_edges > 0

    def test_callable_ccd(self):
        graph = BTER(
            seed=2, avg_degree=10, max_degree=25,
            ccd=lambda d: 0.3 if d >= 2 else 0.0,
        ).run(800)
        assert average_clustering(graph) > 0.08

    def test_ccd_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BTER(seed=0, avg_degree=10, max_degree=20, ccd=1.5).run(100)

    def test_determinism(self):
        a = BTER(seed=4, avg_degree=8, max_degree=20).run(500)
        b = BTER(seed=4, avg_degree=8, max_degree=20).run(500)
        assert a == b

    def test_empty(self):
        assert BTER(seed=0).run(0).num_edges == 0


class TestDarwini:
    @pytest.fixture(scope="class")
    def graph(self):
        return Darwini(seed=9, avg_degree=16, max_degree=40).run(3000)

    def test_mean_degree(self, graph):
        assert 10 <= graph.degrees().mean() <= 20

    def test_clustering_present(self, graph):
        assert average_clustering(graph) > 0.08

    def test_cc_distribution_within_degree_has_spread(self, graph):
        """Darwini's whole point: within one degree, different nodes
        get different clustering (not a point mass like BTER)."""
        from repro.graphstats import local_clustering

        coeffs = local_clustering(graph)
        degrees = graph.degrees()
        # Pick the most populous degree >= 6 and check spread.
        counts = np.bincount(degrees)
        eligible = np.flatnonzero(counts > 50)
        eligible = eligible[eligible >= 6]
        assert eligible.size > 0
        d = int(eligible[np.argmax(counts[eligible])])
        spread = coeffs[degrees == d].std()
        assert spread > 0.05

    def test_custom_sampler(self):
        graph = Darwini(
            seed=1, avg_degree=10, max_degree=25,
            cc_sampler=lambda d, u: 0.5 if d >= 2 else 0.0,
        ).run(800)
        assert average_clustering(graph) > 0.1

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            Darwini(seed=0, cc_bins=0).run(100)

    def test_determinism(self):
        a = Darwini(seed=4, avg_degree=8, max_degree=20).run(500)
        b = Darwini(seed=4, avg_degree=8, max_degree=20).run(500)
        assert a == b
