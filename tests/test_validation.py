"""Tests for the validation subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GraphGenerator
from repro.datasets import social_network_schema
from repro.validation import (
    CardinalityCheck,
    CheckResult,
    DateOrderingCheck,
    DegreeDistributionCheck,
    JointDistributionCheck,
    MarginalDistributionCheck,
    UniquenessCheck,
    ValidationReport,
    standard_checks,
    validate,
)


@pytest.fixture(scope="module")
def graph():
    schema = social_network_schema(num_countries=10)
    return GraphGenerator(schema, {"Person": 1200}, seed=8).generate()


@pytest.fixture(scope="module")
def schema():
    return social_network_schema(num_countries=10)


class TestStandardChecks:
    def test_derives_expected_checks(self, schema):
        checks = standard_checks(schema)
        names = {check.name for check in checks}
        assert "cardinality[creates]" in names
        assert "joint[knows]" in names
        assert "date_ordering[knows.creationDate]" in names
        assert "date_ordering[creates.creationDate]" in names
        assert "marginal[Person.country]" in names
        assert "marginal[Person.sex]" in names

    def test_running_example_passes(self, graph, schema):
        report = validate(graph, standard_checks(schema))
        assert report.passed, str(report)

    def test_report_string(self, graph, schema):
        report = validate(graph, standard_checks(schema))
        text = str(report)
        assert "checks passed" in text
        assert "[ok]" in text


class TestCardinalityCheck:
    def test_passes_on_valid(self, graph):
        result = CardinalityCheck("creates").run(graph)
        assert result.passed

    def test_many_to_many_trivially_passes(self, graph):
        result = CardinalityCheck("knows").run(graph)
        assert result.passed

    def test_detects_violation(self, graph):
        # Corrupt a copy: point two creates edges at the same Message.
        import copy

        broken = copy.copy(graph)
        broken.edge_tables = dict(graph.edge_tables)
        table = graph.edges("creates")
        heads = table.heads.copy()
        heads[1] = heads[0]
        from repro.tables import EdgeTable

        broken.edge_tables["creates"] = EdgeTable(
            "creates", table.tails, heads,
            num_tail_nodes=table.num_tail_nodes,
            num_head_nodes=table.num_head_nodes,
            directed=True,
        )
        result = CardinalityCheck("creates").run(broken)
        assert not result.passed
        assert result.metric >= 2  # one over-assigned + one orphan


class TestDateOrderingCheck:
    def test_passes_on_valid(self, graph):
        result = DateOrderingCheck(
            "knows", "creationDate",
            tail_property="creationDate",
            head_property="creationDate",
        ).run(graph)
        assert result.passed

    def test_detects_violation(self, graph):
        import copy

        from repro.tables import PropertyTable

        broken = copy.copy(graph)
        broken.edge_properties = dict(graph.edge_properties)
        values = graph.edge_property(
            "knows", "creationDate"
        ).values.copy()
        values[0] = 0  # before any person's creation
        broken.edge_properties["knows.creationDate"] = PropertyTable(
            "knows.creationDate", values
        )
        result = DateOrderingCheck(
            "knows", "creationDate",
            tail_property="creationDate",
        ).run(broken)
        assert not result.passed
        assert result.metric == 1.0


class TestMarginalCheck:
    def test_passes_within_tolerance(self, graph):
        from repro.datasets import country_names, country_weights

        check = MarginalDistributionCheck(
            "Person", "country",
            country_names()[:10], country_weights()[:10],
            tolerance=0.08,
        )
        assert check.run(graph).passed

    def test_fails_on_wrong_spec(self, graph):
        check = MarginalDistributionCheck(
            "Person", "sex", ["female", "male"], [0.99, 0.01],
            tolerance=0.05,
        )
        result = check.run(graph)
        assert not result.passed
        assert result.metric > 0.3

    def test_detects_out_of_domain(self, graph):
        check = MarginalDistributionCheck(
            "Person", "sex", ["female"], [1.0]
        )
        result = check.run(graph)
        assert not result.passed
        assert "outside the declared domain" in result.detail


class TestJointCheck:
    def test_passes_with_loose_threshold(self, graph):
        assert JointDistributionCheck("knows", max_ks=0.9).run(
            graph
        ).passed

    def test_fails_with_impossible_threshold(self, graph):
        assert not JointDistributionCheck(
            "knows", max_ks=1e-6
        ).run(graph).passed

    def test_uncorrelated_edge_trivially_passes(self, graph):
        assert JointDistributionCheck("creates").run(graph).passed


class TestDegreeCheck:
    def test_band_pass(self, graph):
        check = DegreeDistributionCheck(
            "knows", min_mean=5, max_mean=30, max_degree=50
        )
        assert check.run(graph).passed

    def test_band_fail(self, graph):
        check = DegreeDistributionCheck("knows", min_mean=100)
        result = check.run(graph)
        assert not result.passed
        assert "mean" in result.detail


class TestUniquenessCheck:
    def test_duplicates_detected(self, graph):
        # Names repeat by design.
        result = UniquenessCheck("Person", "name").run(graph)
        assert not result.passed

    def test_unique_passes(self):
        from repro.core import (
            GeneratorSpec, GraphGenerator, NodeType, PropertyDef,
            Schema,
        )

        schema = Schema(
            node_types=[
                NodeType(
                    "T",
                    properties=[
                        PropertyDef(
                            "key",
                            "string",
                            GeneratorSpec(
                                "composite_key", {"prefix": "t"}
                            ),
                        )
                    ],
                )
            ]
        )
        generated = GraphGenerator(schema, {"T": 50}, seed=1).generate()
        assert UniquenessCheck("T", "key").run(generated).passed


class TestReportAggregation:
    def test_failures_listed(self):
        report = ValidationReport(
            results=[
                CheckResult("a", True),
                CheckResult("b", False, "boom"),
            ]
        )
        assert not report.passed
        assert len(report.failures) == 1
        assert "FAIL" in str(report)
