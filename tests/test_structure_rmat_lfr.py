"""Tests for the paper's two evaluation structure generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphstats import largest_component_fraction
from repro.stats import fit_power_law_exponent
from repro.structure import LFR, RMat


class TestRMat:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="power of two"):
            RMat(seed=0).run(1000)

    def test_run_scale_node_count(self):
        table = RMat(seed=0).run_scale(10)
        assert table.num_tail_nodes == 1024

    def test_edge_factor(self):
        raw = RMat(seed=0, simplify=False, edge_factor=8).run_scale(10)
        assert raw.num_edges == 1024 * 8

    def test_simplified_is_simple(self, small_rmat):
        table = small_rmat
        assert (table.tails != table.heads).all()
        keys = (np.minimum(table.tails, table.heads)
                * table.num_nodes
                + np.maximum(table.tails, table.heads))
        assert np.unique(keys).size == len(table)

    def test_skewed_degrees(self, small_rmat):
        degrees = small_rmat.degrees()
        # R-MAT hubs: max degree far above the mean.
        assert degrees.max() > 8 * degrees.mean()

    def test_heavy_tail_exponent(self, small_rmat):
        gamma = fit_power_law_exponent(small_rmat.degrees(), xmin=4)
        assert 1.2 < gamma < 4.0

    def test_quadrant_probabilities_validated(self):
        with pytest.raises(ValueError, match="quadrant"):
            RMat(seed=0, a=0.9, b=0.2, c=0.2)

    def test_noise_parameter(self):
        smooth = RMat(seed=1, noise=0.1).run_scale(9)
        plain = RMat(seed=1, noise=0.0).run_scale(9)
        assert smooth != plain

    def test_determinism(self):
        assert RMat(seed=5).run_scale(9) == RMat(seed=5).run_scale(9)

    def test_mostly_connected(self, small_rmat):
        assert largest_component_fraction(small_rmat) > 0.5


class TestLFR:
    @pytest.fixture(scope="class")
    def result(self):
        generator = LFR(
            seed=11,
            avg_degree=20,
            max_degree=50,
            min_community=10,
            max_community=50,
            mu=0.1,
        )
        return generator.run_with_labels(4000)

    def test_community_count_plausible(self, result):
        # Sizes in [10, 50] -> between n/50 and n/10 communities.
        assert 4000 / 50 <= result.num_communities <= 4000 / 10 + 1

    def test_labels_cover_all_nodes(self, result):
        assert result.communities.size == 4000
        assert result.communities.min() >= 0

    def test_community_sizes_in_range(self, result):
        sizes = np.bincount(result.communities)
        sizes = sizes[sizes > 0]
        assert sizes.min() >= 5  # merge slack at the tail
        assert sizes.max() <= 60  # merge slack at the head

    def test_mixing_factor_respected(self, result):
        table = result.table
        labels = result.communities
        mixed = (labels[table.tails] != labels[table.heads]).mean()
        assert 0.05 < mixed < 0.2  # target 0.1

    def test_mean_degree_near_target(self, result):
        mean = result.table.degrees().mean()
        assert 15 <= mean <= 22  # target 20, erased-model slack

    def test_max_degree_respected(self, result):
        assert result.table.degrees().max() <= 50

    def test_simple_graph(self, result):
        table = result.table
        assert (table.tails != table.heads).all()
        keys = (np.minimum(table.tails, table.heads)
                * table.num_nodes
                + np.maximum(table.tails, table.heads))
        assert np.unique(keys).size == len(table)

    def test_determinism(self):
        params = dict(
            avg_degree=10, max_degree=25, min_community=10,
            max_community=30, mu=0.2,
        )
        a = LFR(seed=3, **params).run_with_labels(800)
        b = LFR(seed=3, **params).run_with_labels(800)
        assert a.table == b.table
        assert np.array_equal(a.communities, b.communities)

    def test_mu_sweep_monotone(self):
        """Higher mu -> more inter-community edges."""
        mixes = []
        for mu in (0.05, 0.3):
            generator = LFR(
                seed=4, avg_degree=12, max_degree=30,
                min_community=10, max_community=40, mu=mu,
            )
            res = generator.run_with_labels(1500)
            labels = res.communities
            t = res.table
            mixes.append(
                (labels[t.tails] != labels[t.heads]).mean()
            )
        assert mixes[0] < mixes[1]

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            LFR(seed=0, mu=1.0)

    def test_rejects_bad_community_bounds(self):
        with pytest.raises(ValueError):
            LFR(seed=0, min_community=20, max_community=10)

    def test_tiny_graph_single_community(self):
        result = LFR(
            seed=0, avg_degree=3, max_degree=5,
            min_community=10, max_community=50,
        ).run_with_labels(6)
        assert result.num_communities == 1

    def test_empty_graph(self):
        result = LFR(seed=0).run_with_labels(0)
        assert result.table.num_edges == 0
        assert result.communities.size == 0
