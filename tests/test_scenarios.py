"""Tests for the declarative scenario layer.

Covers the stdlib recipe parser, recipe validation error messages, the
compiler lowering, the graded-report grading rules (JSON pinned against
a golden), the zoo (every recipe compiles and runs at smoke scale with
byte-identical exports for workers 1 vs 2), and the doc/spec sync
contract for ``docs/scenarios.md``.
"""

from __future__ import annotations

import filecmp
import json
import os

import pytest

from repro.cli import main
from repro.scenarios import (
    Grade,
    GradedCheck,
    GradedReport,
    GradedResult,
    ScenarioError,
    ScenarioSpec,
    compile_scenario,
    load_zoo,
    parse_recipe_text,
    recipe_reference_rows,
    run_scenario,
    validate_recipe,
    zoo_names,
)
from repro.scenarios.spec import RECIPE_FIELDS

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

TINY_RECIPE = """
scenario: tiny
description: golden-report fixture
seed: 3
nodes:
  Person:
    properties:
      country:
        generator: categorical
        params:
          values: [aa, bb, cc]
          weights: [0.5, 0.3, 0.2]
      age: {dtype: long, generator: uniform_int,
            params: {low: 18, high: 80}}
edges:
  knows:
    tail: Person
    head: Person
    structure:
      generator: erdos_renyi_m
      params: {edges_per_node: 3}
    correlation:
      property: country
      joint: {$homophily: {affinity: 0.8}}
scale: {Person: 300}
validation:
  degrees:
    knows: {max_mean: 10, warn_max_mean: 5}
"""


class TestParser:
    def test_scalars(self):
        doc = parse_recipe_text(
            "a: 1\nb: 2.5\nc: true\nd: null\ne: hello\nf: 'q: x'"
        )
        assert doc == {"a": 1, "b": 2.5, "c": True, "d": None,
                       "e": "hello", "f": "q: x"}

    def test_nested_and_lists(self):
        doc = parse_recipe_text(
            "outer:\n"
            "  inner:\n"
            "    xs: [1, 2, 3]\n"
            "  block:\n"
            "    - alpha\n"
            "    - [0.5, 0.5]\n"
        )
        assert doc["outer"]["inner"]["xs"] == [1, 2, 3]
        assert doc["outer"]["block"] == ["alpha", [0.5, 0.5]]

    def test_inline_mapping_nested(self):
        doc = parse_recipe_text(
            "s: {generator: grid, params: {wrap: false, k: [1, 2]}}"
        )
        assert doc["s"]["params"] == {"wrap": False, "k": [1, 2]}

    def test_multiline_inline_brackets(self):
        doc = parse_recipe_text(
            "xs: [a, b,\n     c, d]\n"
            "m: {p: 1,\n    q: 2}\n"
        )
        assert doc["xs"] == ["a", "b", "c", "d"]
        assert doc["m"] == {"p": 1, "q": 2}

    def test_comments_and_blanks(self):
        doc = parse_recipe_text(
            "# leading comment\n\na: 1  # trailing\n\nb: '#notcomment'\n"
        )
        assert doc == {"a": 1, "b": "#notcomment"}

    def test_hash_without_space_is_not_a_comment(self):
        # YAML semantics: '#' starts a comment only after whitespace.
        assert parse_recipe_text("v: a#b") == {"v": "a#b"}

    def test_inline_mapping_duplicate_key(self):
        with pytest.raises(ScenarioError, match="duplicate key"):
            parse_recipe_text("m: {a: 1, a: 2}")

    def test_json_passthrough(self):
        assert parse_recipe_text('{"a": [1, 2]}') == {"a": [1, 2]}

    def test_constructor_keys_survive(self):
        doc = parse_recipe_text(
            "d: {$zipf: {exponent: 1.2, max: 40}}"
        )
        assert doc["d"] == {"$zipf": {"exponent": 1.2, "max": 40}}

    def test_cardinality_scalar_not_a_key(self):
        assert parse_recipe_text('c: "*..*"') == {"c": "*..*"}

    @pytest.mark.parametrize("text, fragment", [
        ("", "empty recipe"),
        ("a: [1, 2", "unclosed bracket"),
        ("\ta: 1", "tabs are not allowed"),
        ("a: 1\na: 2", "duplicate key"),
        ("a: 'oops", "unterminated string"),
        ("key without colon", "expected 'key: value'"),
    ])
    def test_errors(self, text, fragment):
        with pytest.raises(ScenarioError, match=fragment):
            parse_recipe_text(text)


class TestValidation:
    def _base(self):
        return parse_recipe_text(TINY_RECIPE)

    def test_valid(self):
        validate_recipe(self._base())

    def test_missing_nodes(self):
        with pytest.raises(ScenarioError,
                           match="missing required key 'nodes'"):
            validate_recipe({"scenario": "x", "scale": {}})

    def test_unknown_key_has_path_and_suggestions(self):
        recipe = self._base()
        recipe["edges"]["knows"]["struct"] = {}
        with pytest.raises(
            ScenarioError,
            match=r"edges\.knows: unknown key 'struct'",
        ):
            validate_recipe(recipe)

    def test_bad_cardinality_choice(self):
        recipe = self._base()
        recipe["edges"]["knows"]["cardinality"] = "2..2"
        with pytest.raises(ScenarioError, match="cardinality"):
            validate_recipe(recipe)

    def test_undeclared_endpoint(self):
        recipe = self._base()
        recipe["edges"]["knows"]["head"] = "Ghost"
        with pytest.raises(
            ScenarioError,
            match="'Ghost' is not a declared node type",
        ):
            validate_recipe(recipe)

    def test_scale_names_unknown_type(self):
        recipe = self._base()
        recipe["scale"]["Nope"] = 10
        with pytest.raises(ScenarioError,
                           match="'Nope' names no node or edge type"):
            validate_recipe(recipe)

    def test_scale_rejects_nonpositive(self):
        recipe = self._base()
        recipe["scale"]["Person"] = 0
        with pytest.raises(ScenarioError, match="positive int"):
            validate_recipe(recipe)

    def test_type_mismatch(self):
        recipe = self._base()
        recipe["seed"] = "lots"
        with pytest.raises(ScenarioError,
                           match="seed: expected int"):
            validate_recipe(recipe)


class TestCompiler:
    def test_unknown_property_generator(self):
        recipe = parse_recipe_text(TINY_RECIPE)
        recipe["nodes"]["Person"]["properties"]["age"]["generator"] = \
            "nope"
        with pytest.raises(ScenarioError,
                           match="unknown property generator 'nope'"):
            compile_scenario(recipe)

    def test_unknown_structure_generator(self):
        recipe = parse_recipe_text(TINY_RECIPE)
        recipe["edges"]["knows"]["structure"]["generator"] = "nope"
        with pytest.raises(ScenarioError,
                           match="unknown structure generator 'nope'"):
            compile_scenario(recipe)

    def test_unknown_constructor(self):
        recipe = parse_recipe_text(TINY_RECIPE)
        recipe["edges"]["knows"]["correlation"]["joint"] = {
            "$teleport": {}
        }
        with pytest.raises(ScenarioError,
                           match=r"unknown constructor \$teleport"):
            compile_scenario(recipe)

    def test_bipartite_homophily_domain_mismatch(self):
        recipe = parse_recipe_text("""
scenario: mismatch
nodes:
  U:
    properties:
      g: {generator: categorical,
          params: {values: [a, b, c], weights: [1, 1, 1]}}
  V:
    properties:
      g: {generator: categorical,
          params: {values: [a, b], weights: [1, 1]}}
edges:
  e:
    tail: U
    head: V
    structure:
      generator: bipartite_configuration
      params:
        tail_distribution: {$zipf: {exponent: 1.2, max: 5}}
        head_distribution: {$zipf: {exponent: 1.2, max: 5}}
        head_nodes: 50
    correlation:
      property: g
      head_property: g
      joint: {$homophily: {affinity: 0.8}}
scale: {U: 100, V: 50}
""")
        with pytest.raises(ScenarioError,
                           match="tail and head categories differ"):
            compile_scenario(recipe)

    def test_homophily_needs_categorical(self):
        recipe = parse_recipe_text(TINY_RECIPE)
        recipe["edges"]["knows"]["correlation"]["property"] = "age"
        with pytest.raises(ScenarioError,
                           match="must be a 'categorical'"):
            compile_scenario(recipe)

    def test_no_scale_anchor(self):
        recipe = parse_recipe_text(TINY_RECIPE)
        recipe["scale"] = {}
        # An empty scale block fails at compile time, not parse time.
        with pytest.raises(ScenarioError, match="no scale anchors"):
            compile_scenario(recipe)

    def test_scale_and_seed_overrides(self):
        compiled = compile_scenario(
            TINY_RECIPE, scale={"Person": 50}, seed=99
        )
        assert compiled.scale == {"Person": 50}
        assert compiled.seed == 99

    def test_lowered_schema_shape(self):
        compiled = compile_scenario(TINY_RECIPE)
        schema = compiled.schema
        assert sorted(schema.node_types) == ["Person"]
        knows = schema.edge_type("knows")
        assert knows.structure.name == "erdos_renyi_m"
        assert knows.correlation.tail_property == "country"
        assert knows.correlation.values == ("aa", "bb", "cc")

    def test_recipe_matches_imperative_run(self):
        """A recipe and the equivalent hand-built schema generate the
        exact same graph."""
        import numpy as np

        from repro.core import (
            EdgeType,
            GeneratorSpec,
            GraphGenerator,
            NodeType,
            PropertyDef,
            Schema,
        )

        schema = Schema(
            node_types=[NodeType("Person", properties=[
                PropertyDef("age", "long", GeneratorSpec(
                    "uniform_int", {"low": 18, "high": 80})),
            ])],
            edge_types=[EdgeType(
                "knows", tail_type="Person", head_type="Person",
                structure=GeneratorSpec(
                    "erdos_renyi_m", {"edges_per_node": 3}),
            )],
        )
        imperative = GraphGenerator(
            schema, {"Person": 200}, seed=5
        ).generate()

        recipe = """
scenario: same
seed: 5
nodes:
  Person:
    properties:
      age: {dtype: long, generator: uniform_int,
            params: {low: 18, high: 80}}
edges:
  knows:
    tail: Person
    head: Person
    structure: {generator: erdos_renyi_m,
                params: {edges_per_node: 3}}
scale: {Person: 200}
"""
        declarative, _, _ = run_scenario(compile_scenario(recipe))
        assert np.array_equal(
            imperative.edges("knows").tails,
            declarative.edges("knows").tails,
        )
        assert np.array_equal(
            imperative.node_property("Person", "age").values,
            declarative.node_property("Person", "age").values,
        )


class TestGrading:
    def _report(self, grades):
        report = GradedReport("g")
        for i, grade in enumerate(grades):
            report.add(GradedResult(f"c{i}", grade))
        return report

    def test_overall_grades(self):
        assert self._report([Grade.PASS] * 4).overall_grade == "A"
        assert self._report(
            [Grade.PASS] * 4 + [Grade.WARN]
        ).overall_grade == "B"
        assert self._report(
            [Grade.PASS, Grade.WARN, Grade.WARN]
        ).overall_grade == "C"
        assert self._report(
            [Grade.PASS, Grade.FAIL]
        ).overall_grade == "F"

    def test_passed_tracks_failures_only(self):
        assert self._report([Grade.WARN]).passed
        assert not self._report([Grade.FAIL]).passed

    def test_graded_check_warn_band(self):
        class FakeCheck:
            def __init__(self, passes, metric):
                self.name = "fake"
                self.passes = passes
                self.metric = metric

            def run(self, graph):
                from repro.validation import CheckResult

                return CheckResult(
                    self.name, self.passes, "d", self.metric
                )

        warn = GradedCheck(FakeCheck(True, 0.4), FakeCheck(False, 0.4))
        assert warn.run(None).grade is Grade.WARN
        ok = GradedCheck(FakeCheck(True, 0.1), FakeCheck(True, 0.1))
        assert ok.run(None).grade is Grade.PASS
        bad = GradedCheck(FakeCheck(False, 0.9))
        assert bad.run(None).grade is Grade.FAIL

    def test_text_rendering(self):
        report = GradedReport("demo", seed=1, scale={"N": 5})
        report.add(GradedResult("a", Grade.FAIL, "broken"))
        text = str(report)
        assert "scenario 'demo'" in text
        assert "[FAIL] a (broken)" in text
        assert "grade F" in text

    def test_golden_report_json(self):
        """The graded-report JSON for the tiny fixture is pinned."""
        _, report, _ = run_scenario(compile_scenario(TINY_RECIPE))
        golden_path = os.path.join(GOLDEN_DIR, "scenario_report.json")
        with open(golden_path, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert report.to_dict() == golden


SMOKE_SCALE = {
    "c2_pattern_infra_telemetry": {"Host": 400},
    "citation_dag": {"Paper": 400},
    "fraud_ring_social": {"Person": 500},
    "infra_telemetry": {"Host": 400},
    "ldbc_attributed": {"Person": 500},
    "lfr_benchmark": {"Node": 500},
    "message_cascades": {"Message": 500},
    "recommender_bipartite": {"User": 400},
    "social_network": {"Person": 400},
    "web_graph_rmat": {"Page": 512},
}


class TestZoo:
    def test_zoo_has_at_least_eight(self):
        assert len(zoo_names()) >= 8

    def test_every_zoo_recipe_has_a_smoke_scale(self):
        # New recipes must register a smoke scale so the matrix below
        # keeps covering them.
        assert set(SMOKE_SCALE) == set(zoo_names())

    @pytest.mark.parametrize("name", sorted(SMOKE_SCALE))
    def test_compiles(self, name):
        compiled = compile_scenario(load_zoo(name))
        assert compiled.name == name
        assert compiled.graded_checks, "every recipe must carry checks"

    @pytest.mark.parametrize("name", sorted(SMOKE_SCALE))
    def test_smoke_run_workers_byte_identical(self, name, tmp_path):
        """workers=1 and workers=2 stream byte-identical exports."""
        outputs = {}
        for workers in (1, 2):
            out = tmp_path / f"w{workers}"
            compiled = compile_scenario(
                load_zoo(name), scale=SMOKE_SCALE[name]
            )
            graph, report, written = run_scenario(
                compiled, workers=workers, out_dir=str(out)
            )
            assert written, "smoke run must export files"
            assert report is not None
            assert report.results, "graded report must have checks"
            assert not any(
                r.grade is Grade.FAIL for r in report.results
            ), f"{name}: {report}"
            outputs[workers] = out
        files1 = sorted(
            p.relative_to(outputs[1])
            for p in outputs[1].rglob("*") if p.is_file()
        )
        files2 = sorted(
            p.relative_to(outputs[2])
            for p in outputs[2].rglob("*") if p.is_file()
        )
        assert files1 == files2
        for rel in files1:
            assert filecmp.cmp(
                outputs[1] / rel, outputs[2] / rel, shallow=False
            ), f"{name}: {rel} differs between workers 1 and 2"


class TestCli:
    def test_list_names_every_zoo_recipe(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in zoo_names():
            assert name in out

    def test_describe_prints_recipe_keys(self, capsys):
        assert main(["scenario", "describe", "social_network"]) == 0
        out = capsys.readouterr().out
        for field in RECIPE_FIELDS:
            assert field.path in out

    def test_run_writes_report_json(self, tmp_path, capsys):
        out = tmp_path / "out"
        code = main([
            "scenario", "run", "social_network",
            "--scale", "Person=300", "--out", str(out),
        ])
        assert code == 0
        report_path = out / "validation_report.json"
        assert report_path.exists()
        payload = json.loads(report_path.read_text())
        assert payload["scenario"] == "social_network"
        assert payload["grade"] in ("A", "B", "C")
        assert {c["grade"] for c in payload["checks"]} <= {
            "pass", "warn", "fail"
        }
        assert "grade" in capsys.readouterr().out

    def test_run_recipe_path(self, tmp_path, capsys):
        recipe_path = tmp_path / "tiny.yaml"
        recipe_path.write_text(TINY_RECIPE)
        code = main([
            "scenario", "run", str(recipe_path),
            "--report-json", str(tmp_path / "r.json"),
        ])
        assert code == 0
        assert (tmp_path / "r.json").exists()

    def test_validate_subcommand(self, capsys):
        code = main([
            "scenario", "validate", "web_graph_rmat",
            "--scale", "Page=256",
        ])
        assert code == 0
        assert "grade" in capsys.readouterr().out

    def test_unknown_scenario_message(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "run", "does_not_exist"])

    def test_missing_recipe_file_is_clean(self):
        with pytest.raises(SystemExit, match="scenario error"):
            main(["scenario", "run", "/nonexistent/x.yaml"])

    def test_invalid_recipe_file_is_clean(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenario: x\nnodes: {N: {}}\n")  # no scale
        with pytest.raises(SystemExit,
                           match="missing required key 'scale'"):
            main(["scenario", "run", str(bad)])


class TestDocSync:
    """docs/scenarios.md must embed the spec-generated key table."""

    def _docs_path(self):
        return os.path.join(
            os.path.dirname(__file__), os.pardir, "docs",
            "scenarios.md",
        )

    def test_reference_table_in_sync(self):
        from repro.scenarios.spec import recipe_reference_markdown

        with open(self._docs_path(), encoding="utf-8") as handle:
            docs = handle.read()
        table = recipe_reference_markdown()
        assert table in docs, (
            "docs/scenarios.md is out of sync with "
            "repro/scenarios/spec.py; regenerate with: "
            "PYTHONPATH=src python -m repro.scenarios.spec"
        )

    def test_rows_cover_every_field(self):
        rows = recipe_reference_rows()
        assert len(rows) == len(RECIPE_FIELDS)
        paths = [row[0] for row in rows]
        assert paths == [field.path for field in RECIPE_FIELDS]


class TestSpecHelpers:
    def test_threshold_defaults_and_overrides(self):
        spec = ScenarioSpec.from_text(TINY_RECIPE)
        assert spec.threshold("joint_ks", "fail") == 0.6
        spec2 = ScenarioSpec.from_text(
            TINY_RECIPE + "\n"  # appended override block
        )
        assert spec2.threshold("marginal_tv", "warn") == 0.05

    def test_export_defaults(self):
        spec = ScenarioSpec.from_text(TINY_RECIPE)
        assert spec.export_formats == ["csv"]
        assert spec.export_chunk_size == 65536
        assert spec.export_compress is False
