"""Tests for the streaming GraphSink/GraphSource IO layer.

Three contracts:

* **byte-identity** — the vectorised chunk formatters reproduce the
  stdlib writers (``csv.writer``, ``json.dumps``,
  ``xml.sax.saxutils.escape``) byte for byte, for any chunk size and
  with gzip compression;
* **round trips** — manifest-carrying sinks/sources restore every
  supported dtype exactly, including bool, unicode, datetime and
  empty tables;
* **streaming protocol** — engine-driven sinks produce the same bytes
  as post-hoc ``export_graph``.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from xml.sax.saxutils import escape

import numpy as np
import pytest

from repro.core import GraphGenerator
from repro.datasets import social_network_schema
from repro.io import (
    CsvSink,
    CsvSource,
    EdgelistSink,
    EdgelistSource,
    GraphmlSink,
    JsonlSink,
    JsonlSource,
    export_graph,
    make_sink,
    make_source,
    open_text,
)
from repro.io.chunks import (
    csv_quote_column,
    format_json_records_chunk,
    json_encode_column,
    parse_typed_column,
    stringify_column,
    xml_escape_column,
)
from repro.tables import EdgeTable, PropertyTable

TRICKY_STRINGS = [
    "plain",
    "comma,inside",
    'quote"inside',
    "new\nline",
    "carriage\rreturn",
    "both\r\nends",
    "",
    " leading space",
    "trailing space ",
    "unicode éß中文",
    "tab\tseparated",
    "&<>xml'chars\"",
    '"quoted"',
    ",",
    '"',
]


@pytest.fixture(scope="module")
def graph():
    schema = social_network_schema(num_countries=6)
    return GraphGenerator(schema, {"Person": 90}, seed=5).generate()


def legacy_csv_property_bytes(table):
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["id", "value"])
    for row_id, value in table.rows():
        writer.writerow([row_id, value])
    return buf.getvalue()


def legacy_csv_edge_bytes(table):
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["id", "tailId", "headId"])
    for edge_id, tail, head in table.rows():
        writer.writerow([edge_id, tail, head])
    return buf.getvalue()


def read_text(path):
    with open_text(path, "r") as handle:
        return handle.read()


class TestChunkPrimitives:
    def test_csv_quote_matches_csv_writer(self):
        # Two-field rows: a lone empty field is the one case where
        # csv.writer quotes beyond QUOTE_MINIMAL (to disambiguate an
        # empty row), and table rows always carry the id field first.
        fields = np.asarray(TRICKY_STRINGS, dtype=str)
        quoted = csv_quote_column(fields)
        for raw, mine in zip(TRICKY_STRINGS, quoted):
            buf = io.StringIO()
            csv.writer(buf).writerow([0, raw])
            assert "0," + str(mine) + "\r\n" == buf.getvalue(), raw

    def test_stringify_matches_str(self):
        arrays = [
            np.array([0, -7, 2**62], dtype=np.int64),
            np.array([1.5, -0.0, 1e300, 1e-300, np.nan, np.inf]),
            np.array([True, False]),
            np.array(["2020-01-01", "1970-12-31"],
                     dtype="datetime64[D]"),
            np.array(TRICKY_STRINGS, dtype=object),
        ]
        for values in arrays:
            out = stringify_column(values)
            expected = [str(v) for v in values]
            assert list(out) == expected, values.dtype

    def test_stringify_none_becomes_empty_field(self):
        out = stringify_column(np.array(["a", None], dtype=object))
        assert list(out) == ["a", ""]

    def test_json_encode_matches_json_dumps(self):
        arrays = [
            np.array([0, -7, 2**62], dtype=np.int64),
            np.array([1.5, -0.0, 1e300, 1e-300, 0.1]),
            np.array([np.nan, np.inf, -np.inf, 2.5]),
            np.array([True, False]),
            np.array(TRICKY_STRINGS, dtype=object),
            np.array(TRICKY_STRINGS, dtype=str),
        ]
        for values in arrays:
            out = json_encode_column(values)
            for raw, mine in zip(values.tolist(), out):
                assert str(mine) == json.dumps(raw), raw

    def test_json_records_chunk_matches_json_dumps(self):
        ids = np.array([4, 5], dtype=np.int64)
        names = np.array(["a,b", 'c"d'], dtype=object)
        text = format_json_records_chunk(
            ["id", "name"],
            [json_encode_column(ids), json_encode_column(names)],
        )
        expected = "".join(
            json.dumps({"id": int(i), "name": str(n)}) + "\n"
            for i, n in zip(ids, names)
        )
        assert text == expected

    def test_xml_escape_matches_saxutils(self):
        out = xml_escape_column(np.asarray(TRICKY_STRINGS, dtype=str))
        assert list(out) == [escape(s) for s in TRICKY_STRINGS]

    def test_parse_typed_column_inverts_stringify(self):
        arrays = [
            np.array([3, -9], dtype=np.int64),
            np.array([1.5, np.nan, np.inf, -np.inf]),
            np.array([True, False, True]),
            np.array(["x", "y z"], dtype="<U3"),
            np.array(["2020-01-01"], dtype="datetime64[D]"),
        ]
        for values in arrays:
            strings = stringify_column(values)
            back = parse_typed_column(strings, values.dtype)
            assert back.dtype == values.dtype
            assert np.array_equal(back, values, equal_nan=(
                values.dtype.kind == "f"
            ))


class TestByteIdentityAgainstStdlib:
    @pytest.mark.parametrize("chunk_size", [1, 7, 10_000])
    def test_property_csv(self, tmp_path, chunk_size):
        from repro.io import write_property_table

        tables = [
            PropertyTable("t", np.array(TRICKY_STRINGS, dtype=object)),
            PropertyTable("t", np.array([1.5, np.nan, -0.0, 1e300])),
            PropertyTable("t", np.array([True, False])),
            PropertyTable("t", np.arange(23, dtype=np.int64)),
            PropertyTable("t", np.array([], dtype=np.int64)),
        ]
        for i, table in enumerate(tables):
            path = write_property_table(
                table, tmp_path / f"t{i}.csv", chunk_size=chunk_size
            )
            assert read_text(path) == legacy_csv_property_bytes(table)

    @pytest.mark.parametrize("chunk_size", [1, 3, 10_000])
    def test_edge_csv(self, tmp_path, chunk_size):
        from repro.io import write_edge_table

        table = EdgeTable(
            "e", [0, 3, 1, 2], [1, 2, 0, 3], num_tail_nodes=4
        )
        path = write_edge_table(
            table, tmp_path / "e.csv", chunk_size=chunk_size
        )
        assert read_text(path) == legacy_csv_edge_bytes(table)

    @pytest.mark.parametrize("chunk_size", [1, 7, 10_000])
    def test_jsonl_records(self, graph, tmp_path, chunk_size):
        from repro.io import write_edges_jsonl, write_nodes_jsonl

        path = write_nodes_jsonl(
            graph, "Person", tmp_path / "p.jsonl",
            chunk_size=chunk_size,
        )
        lines = read_text(path).splitlines()
        assert len(lines) == graph.num_nodes("Person")
        for i, (line, record) in enumerate(
            zip(lines, graph.node_records("Person"))
        ):
            expected = json.dumps({
                k: (int(v) if isinstance(v, np.integer) else
                    str(v) if isinstance(v, np.str_) else v)
                for k, v in record.items()
            })
            assert line == expected, i

        path = write_edges_jsonl(
            graph, "knows", tmp_path / "k.jsonl",
            chunk_size=chunk_size,
        )
        lines = read_text(path).splitlines()
        assert len(lines) == graph.num_edges("knows")

    def test_graphml_chunk_invariance(self, graph, tmp_path):
        from repro.io import write_graphml

        reference = write_graphml(
            graph, "knows", tmp_path / "whole.graphml",
            chunk_size=10**9,
        )
        chunked = write_graphml(
            graph, "knows", tmp_path / "chunked.graphml",
            chunk_size=3,
        )
        assert chunked.read_bytes() == reference.read_bytes()

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "edgelist"])
    def test_chunk_size_never_changes_bytes(self, graph, tmp_path,
                                            fmt):
        baseline = export_graph(
            graph, make_sink(fmt, tmp_path / "whole",
                             chunk_size=10**9)
        )
        for chunk_size in (1, 7, 64):
            out = tmp_path / f"c{chunk_size}"
            export_graph(
                graph, make_sink(fmt, out, chunk_size=chunk_size)
            )
            for path in baseline:
                assert (out / path.name).read_bytes() == \
                    path.read_bytes(), (fmt, chunk_size, path.name)


class TestGzip:
    def test_deterministic_bytes(self, tmp_path):
        table = PropertyTable("t", np.arange(100, dtype=np.int64))
        sink_a = CsvSink(tmp_path / "a", compress=True)
        sink_b = CsvSink(tmp_path / "b", compress=True)
        path_a = sink_a.write_property_table(table)
        path_b = sink_b.write_property_table(table)
        assert path_a.name == "t.csv.gz"
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_gz_content_equals_uncompressed(self, graph, tmp_path):
        plain = export_graph(
            graph, CsvSink(tmp_path / "plain", chunk_size=13)
        )
        export_graph(
            graph,
            CsvSink(tmp_path / "gz", chunk_size=13, compress=True),
        )
        for path in plain:
            if path.name == "manifest.json":
                continue
            packed = tmp_path / "gz" / (path.name + ".gz")
            assert gzip.decompress(packed.read_bytes()) == \
                path.read_bytes()

    def test_sources_read_compressed(self, graph, tmp_path):
        export_graph(
            graph, CsvSink(tmp_path / "out", compress=True)
        )
        source = CsvSource(tmp_path / "out")
        pt = source.read_property_table("Person.country")
        assert pt == graph.node_properties["Person.country"]


class TestManifestRoundTrip:
    CASES = [
        np.array([5, -2, 0], dtype=np.int64),
        np.array([1.5, np.nan, np.inf], dtype=np.float64),
        np.array([True, False, True]),
        np.array(["a", "bb é", ""], dtype="<U8"),
        np.array(TRICKY_STRINGS, dtype=object),
        np.array(["2020-01-01", "1999-12-31"], dtype="datetime64[D]"),
        np.array([], dtype=np.float64),
        np.array([], dtype=object),
    ]

    @pytest.mark.parametrize("values", CASES,
                             ids=lambda v: f"{v.dtype}-{len(v)}")
    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_property_dtype_preserved(self, tmp_path, fmt, values):
        table = PropertyTable("T.x", values)
        sink = make_sink(fmt, tmp_path / fmt, chunk_size=2)
        sink.write_property_table(table)
        sink.finish()
        back = make_source(fmt, tmp_path / fmt).read_property_table(
            "T.x"
        )
        assert back.values.dtype == values.dtype
        if values.dtype.kind == "f":
            assert np.array_equal(back.values, values, equal_nan=True)
        else:
            assert list(back.values) == list(values)

    def test_jsonl_preserves_none(self, tmp_path):
        table = PropertyTable(
            "T.x", np.array(["a", None, ""], dtype=object)
        )
        sink = JsonlSink(tmp_path / "o")
        sink.write_property_table(table)
        sink.finish()
        back = JsonlSource(tmp_path / "o").read_property_table("T.x")
        assert list(back.values) == ["a", None, ""]

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "edgelist"])
    def test_edge_table_exact(self, tmp_path, fmt):
        table = EdgeTable(
            "likes", [0, 2, 1], [3, 1, 0],
            num_tail_nodes=5, num_head_nodes=7, directed=True,
        )
        sink = make_sink(fmt, tmp_path / fmt, chunk_size=2)
        sink.write_edge_table(table)
        sink.finish()
        back = make_source(fmt, tmp_path / fmt).read_edge_table(
            "likes"
        )
        assert back == table

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "edgelist"])
    def test_empty_edge_table(self, tmp_path, fmt):
        table = EdgeTable("e", [], [])
        sink = make_sink(fmt, tmp_path / fmt)
        sink.write_edge_table(table)
        sink.finish()
        back = make_source(fmt, tmp_path / fmt).read_edge_table("e")
        assert back == table

    def test_whole_graph_tables(self, graph, tmp_path):
        export_graph(graph, CsvSink(tmp_path / "out", chunk_size=17))
        source = CsvSource(tmp_path / "out")
        properties = source.property_tables()
        edges = source.edge_tables()
        for key, pt in graph.node_properties.items():
            assert properties[key].values.dtype == pt.values.dtype
            assert list(properties[key].values) == list(pt.values)
        for key, et in graph.edge_tables.items():
            back = edges[key]
            assert np.array_equal(back.tails, et.tails)
            assert np.array_equal(back.heads, et.heads)
            assert back.num_tail_nodes == et.num_tail_nodes
            assert back.num_head_nodes == et.num_head_nodes
            assert back.directed == et.directed


class TestStreamingProtocol:
    @pytest.mark.parametrize("fmt",
                             ["csv", "jsonl", "edgelist", "graphml"])
    def test_engine_streamed_equals_post_hoc(self, tmp_path, fmt):
        schema = social_network_schema(num_countries=6)
        reference_graph = GraphGenerator(
            schema, {"Person": 80}, seed=3
        ).generate()
        baseline = export_graph(
            reference_graph,
            make_sink(fmt, tmp_path / "post", chunk_size=19),
        )
        sink = make_sink(fmt, tmp_path / "streamed", chunk_size=19)
        GraphGenerator(schema, {"Person": 80}, seed=3).generate(
            sink=sink
        )
        assert sorted(p.name for p in sink.written) == \
            sorted(p.name for p in baseline)
        for path in baseline:
            streamed = tmp_path / "streamed" / path.name
            assert streamed.read_bytes() == path.read_bytes(), \
                path.name

    def test_jsonl_sink_flushes_incrementally(self, tmp_path):
        """Record files appear as soon as their last table lands, not
        at finish()."""
        schema = social_network_schema(num_countries=6)
        sink = JsonlSink(tmp_path / "o")
        flushed = []
        original = sink._flush_node_type

        def spy(type_name):
            flushed.append(type_name)
            return original(type_name)

        sink._flush_node_type = spy
        GraphGenerator(schema, {"Person": 40}, seed=1).generate(
            sink=sink
        )
        assert "Person" in flushed

    def test_jsonl_finish_skips_incomplete_types(self, tmp_path):
        """finish() on a partial graph must skip types whose property
        tables are missing, not crash."""
        schema = social_network_schema(num_countries=6)
        graph = GraphGenerator(
            schema, {"Person": 30}, seed=2
        ).generate()
        del graph.node_properties["Person.country"]
        del graph.edge_properties["knows.creationDate"]
        sink = JsonlSink(tmp_path / "o")
        sink.begin(graph)
        written = sink.finish()
        names = {p.name for p in written}
        assert "Person.jsonl" not in names
        assert "knows.jsonl" not in names
        assert "Message.jsonl" in names
        assert "creates.jsonl" in names

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown sink format"):
            make_sink("parquet", tmp_path)
        with pytest.raises(ValueError, match="no source"):
            make_source("graphml", tmp_path)

    def test_edgelist_sink_rejects_property_tables(self, tmp_path):
        sink = EdgelistSink(tmp_path)
        with pytest.raises(NotImplementedError):
            sink.write_property_table(
                PropertyTable("t", np.array([1]))
            )

    def test_bad_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_size"):
            CsvSink(tmp_path, chunk_size=0)

    def test_graphml_sink_writes_monopartite_only(self, graph,
                                                  tmp_path):
        written = export_graph(graph, GraphmlSink(tmp_path / "o"))
        names = {p.name for p in written}
        assert "knows.graphml" in names
        assert "creates.graphml" not in names


class TestSourceFallbacks:
    def test_csv_source_without_manifest(self, tmp_path):
        from repro.io import write_property_table

        table = PropertyTable("t", np.arange(5, dtype=np.int64))
        write_property_table(table, tmp_path / "t.csv")
        source = CsvSource(tmp_path)
        assert source.manifest is None
        back = source.read_property_table("t")
        assert np.array_equal(back.values, table.values)

    def test_missing_table_raises(self, tmp_path):
        source = EdgelistSource(tmp_path)
        with pytest.raises(FileNotFoundError):
            source.read_edge_table("ghost")
