"""Tests for embedded datasets, schema factory options and degree
sequence calibration helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    COUNTRIES,
    INTERESTS,
    NAMES_BY_REGION_SEX,
    REGION_OF_COUNTRY,
    TOPICS,
    VOCABULARY,
    conditional_name_table,
    country_joint,
    country_names,
    country_weights,
    social_network_schema,
)
from repro.structure import powerlaw_degree_sequence, solve_powerlaw_xmin
from repro.structure.degree_sequences import expected_mean


class TestDictionaries:
    def test_countries_descending_population(self):
        weights = country_weights()
        # The head is sorted by population (the tail has ties).
        assert weights[0] >= weights[1] >= weights[5]

    def test_country_names_align_with_weights(self):
        assert len(country_names()) == len(country_weights())
        assert len(COUNTRIES) == len(country_names())

    def test_every_mapped_country_exists(self):
        names = set(country_names())
        for country in REGION_OF_COUNTRY:
            assert country in names, country

    def test_name_table_covers_both_sexes(self):
        table = conditional_name_table()
        countries = {key[0] for key in table}
        for country in countries:
            assert (country, "female") in table
            assert (country, "male") in table

    def test_name_lists_nonempty_and_weighted(self):
        table = conditional_name_table()
        for _key, (names, weights) in table.items():
            assert names
            assert len(weights) == len(names)
            assert all(w > 0 for w in weights)

    def test_region_name_pools_disjoint_enough(self):
        # Different regions should have mostly different names — the
        # conditioning is observable.
        anglo = set(NAMES_BY_REGION_SEX[("anglo", "female")])
        east = set(NAMES_BY_REGION_SEX[("east_asia", "female")])
        assert not (anglo & east)

    def test_word_lists(self):
        assert len(TOPICS) >= 10
        assert len(INTERESTS) >= 10
        assert len(VOCABULARY) >= 50
        assert len(set(VOCABULARY)) == len(VOCABULARY)


class TestCountryJoint:
    def test_category_order_returned(self):
        joint, names = country_joint(0.5)
        assert joint.k == len(names)

    def test_truncation(self):
        joint, names = country_joint(
            0.5, countries=country_names()[:5],
            weights=country_weights()[:5],
        )
        assert joint.k == 5
        assert names == country_names()[:5]

    def test_affinity_controls_diagonal(self):
        low, _ = country_joint(0.1)
        high, _ = country_joint(0.9)
        assert np.trace(high.matrix) > np.trace(low.matrix)


class TestSchemaFactoryOptions:
    def test_bter_structure_variant(self):
        from repro.core import GraphGenerator

        schema = social_network_schema(
            num_countries=8, structure="bter", avg_know_degree=12
        )
        graph = GraphGenerator(
            schema, {"Person": 600}, seed=4
        ).generate()
        assert graph.num_edges("knows") > 0

    def test_degree_knobs_propagate(self):
        schema = social_network_schema(
            num_countries=8, avg_know_degree=8, max_know_degree=20
        )
        params = schema.edge_type("knows").structure.params
        assert params["avg_degree"] == 8
        assert params["max_degree"] == 20

    def test_affinity_propagates(self):
        weak = social_network_schema(num_countries=8, affinity=0.1)
        strong = social_network_schema(num_countries=8, affinity=0.9)
        weak_joint = weak.edge_type("knows").correlation.joint
        strong_joint = strong.edge_type("knows").correlation.joint
        assert np.trace(strong_joint.matrix) > np.trace(
            weak_joint.matrix
        )


class TestDegreeSequenceCalibration:
    def test_expected_mean_monotone_in_xmin(self):
        means = [expected_mean(2.0, xmin, 50) for xmin in (1, 5, 10)]
        assert means[0] < means[1] < means[2]

    def test_solve_xmin_hits_target(self):
        xmin = solve_powerlaw_xmin(2.0, 20.0, 50)
        achieved = expected_mean(2.0, xmin, 50)
        assert abs(achieved - 20.0) < 4.0

    def test_solve_xmin_unreachable_target(self):
        with pytest.raises(ValueError, match="exceeds"):
            solve_powerlaw_xmin(2.0, 100.0, 50)

    def test_sequence_statistics(self, stream):
        degrees = powerlaw_degree_sequence(
            5000, 2.0, 20, 50, stream
        )
        assert degrees.size == 5000
        assert int(degrees.sum()) % 2 == 0
        assert degrees.max() <= 50
        assert 15 <= degrees.mean() <= 25

    def test_max_degree_clamped_to_n(self, stream):
        degrees = powerlaw_degree_sequence(10, 2.0, 4, 50, stream)
        assert degrees.max() <= 9

    def test_explicit_min_degree(self, stream):
        degrees = powerlaw_degree_sequence(
            1000, 2.0, 20, 50, stream, min_degree=10
        )
        assert degrees.min() >= 10

    def test_invalid_gamma(self, stream):
        with pytest.raises(ValueError, match="gamma"):
            powerlaw_degree_sequence(100, 1.0, 10, 20, stream)
