"""Tests for the CDF comparison metrics of Figures 3 and 4."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    JointDistribution,
    compare_joints,
    frobenius_distance,
    jensen_shannon,
    ks_distance,
    l1_distance,
    total_variation,
)


class TestScalarMetrics:
    def test_ks_identical_is_zero(self):
        cdf = np.array([0.2, 0.5, 1.0])
        assert ks_distance(cdf, cdf) == 0.0

    def test_ks_known_value(self):
        assert np.isclose(
            ks_distance([0.5, 1.0], [0.2, 1.0]), 0.3
        )

    def test_ks_shape_mismatch(self):
        with pytest.raises(ValueError):
            ks_distance([0.5], [0.5, 1.0])

    def test_ks_empty(self):
        assert ks_distance([], []) == 0.0

    def test_l1_and_tv_relationship(self):
        a = np.array([0.5, 0.5])
        b = np.array([0.8, 0.2])
        assert np.isclose(l1_distance(a, b), 0.6)
        assert np.isclose(total_variation(a, b), 0.3)

    def test_frobenius(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert np.isclose(frobenius_distance(a, b), 5.0)

    def test_jensen_shannon_bounds(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        js = jensen_shannon(a, b)
        assert 0.0 < js <= np.log(2) + 1e-12

    def test_jensen_shannon_identical(self):
        p = np.array([0.3, 0.7])
        assert jensen_shannon(p, p) == 0.0

    def test_jensen_shannon_symmetric(self):
        a = np.array([0.9, 0.1])
        b = np.array([0.4, 0.6])
        assert np.isclose(jensen_shannon(a, b), jensen_shannon(b, a))


class TestCompareJoints:
    def _joints(self):
        expected = JointDistribution([[0.6, 0.1], [0.1, 0.2]])
        observed = JointDistribution([[0.5, 0.15], [0.15, 0.2]])
        return expected, observed

    def test_sorted_by_expected(self):
        expected, observed = self._joints()
        comparison = compare_joints(expected, observed)
        assert (np.diff(comparison.expected_pmf) <= 1e-12).all()

    def test_cdfs_end_at_one(self):
        expected, observed = self._joints()
        comparison = compare_joints(expected, observed)
        assert np.isclose(comparison.expected_cdf[-1], 1.0)
        assert np.isclose(comparison.observed_cdf[-1], 1.0)

    def test_identical_joints_zero_metrics(self):
        expected, _ = self._joints()
        comparison = compare_joints(expected, expected)
        assert comparison.ks == 0.0
        assert comparison.l1 == 0.0
        assert comparison.js == 0.0

    def test_metrics_positive_when_different(self):
        expected, observed = self._joints()
        comparison = compare_joints(expected, observed)
        assert comparison.ks > 0.0
        assert comparison.l1 > 0.0
        assert comparison.tv == comparison.l1 / 2

    def test_k_mismatch_raises(self):
        expected, _ = self._joints()
        other = JointDistribution(np.ones((3, 3)))
        with pytest.raises(ValueError, match="different k"):
            compare_joints(expected, other)

    def test_pair_count(self):
        expected = JointDistribution(np.ones((4, 4)))
        comparison = compare_joints(expected, expected)
        assert len(comparison.pairs) == 10  # 4 * 5 / 2

    def test_series_subsampling(self):
        expected = JointDistribution(np.ones((8, 8)))
        comparison = compare_joints(expected, expected)
        idx, exp_series, obs_series = comparison.series(5)
        assert idx[-1] == len(comparison.expected_cdf) - 1
        assert len(exp_series) == len(obs_series) == len(idx)
        assert len(idx) <= 6

    def test_series_no_subsampling(self):
        expected = JointDistribution(np.ones((3, 3)))
        comparison = compare_joints(expected, expected)
        idx, _, _ = comparison.series()
        assert len(idx) == 6

    def test_summary_keys(self):
        expected, observed = self._joints()
        summary = compare_joints(expected, observed).summary()
        assert set(summary) == {"ks", "l1", "tv", "js"}
