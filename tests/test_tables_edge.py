"""Tests for EdgeTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tables import EdgeTable


class TestConstruction:
    def test_basic(self, triangle_table):
        assert len(triangle_table) == 3
        assert triangle_table.num_nodes == 3
        assert triangle_table.num_edges == 3

    def test_infers_node_count(self):
        table = EdgeTable("e", [0, 5], [1, 2])
        assert table.num_tail_nodes == 6

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths differ"):
            EdgeTable("e", [0, 1], [1])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="nonnegative"):
            EdgeTable("e", [-1], [0])

    def test_rejects_ids_beyond_declared(self):
        with pytest.raises(ValueError, match="exceed"):
            EdgeTable("e", [0, 7], [1, 2], num_tail_nodes=3)

    def test_bipartite_flag(self):
        table = EdgeTable(
            "e", [0], [0], num_tail_nodes=2, num_head_nodes=5
        )
        assert table.is_bipartite
        with pytest.raises(ValueError, match="bipartite"):
            _ = table.num_nodes

    def test_empty(self):
        table = EdgeTable("e", [], [], num_tail_nodes=0)
        assert len(table) == 0
        assert table.num_nodes == 0

    def test_equality(self, triangle_table):
        same = EdgeTable("tri", [0, 1, 2], [1, 2, 0], num_tail_nodes=3)
        assert triangle_table == same

    def test_rows(self):
        table = EdgeTable("e", [0, 1], [1, 2])
        assert list(table.rows()) == [(0, 0, 1), (1, 1, 2)]


class TestDegrees:
    def test_triangle_degrees(self, triangle_table):
        assert np.array_equal(triangle_table.degrees(), [2, 2, 2])

    def test_path_degrees(self, path_table):
        assert np.array_equal(path_table.degrees(), [1, 2, 2, 1])

    def test_out_in_degrees(self):
        table = EdgeTable(
            "e", [0, 0, 1], [1, 2, 2], num_tail_nodes=3, directed=True
        )
        assert np.array_equal(table.out_degrees(), [2, 1, 0])
        assert np.array_equal(table.in_degrees(), [0, 1, 2])


class TestAdjacency:
    def test_csr_shape(self, triangle_table):
        indptr, neighbors, edge_ids = triangle_table.adjacency_csr()
        assert indptr[-1] == 2 * len(triangle_table)
        assert neighbors.size == 2 * len(triangle_table)
        assert edge_ids.size == neighbors.size

    def test_csr_neighbors_correct(self, path_table):
        indptr, neighbors, _ = path_table.adjacency_csr()
        node1 = set(neighbors[indptr[1]:indptr[2]])
        assert node1 == {0, 2}

    def test_csr_edge_ids_map_back(self, path_table):
        indptr, neighbors, edge_ids = path_table.adjacency_csr()
        for v in range(path_table.num_nodes):
            for slot in range(indptr[v], indptr[v + 1]):
                eid = edge_ids[slot]
                endpoints = {
                    int(path_table.tails[eid]),
                    int(path_table.heads[eid]),
                }
                assert v in endpoints
                assert int(neighbors[slot]) in endpoints


class TestTransformations:
    def test_canonicalized_sorted(self):
        table = EdgeTable("e", [3, 1], [0, 2])
        canonical = table.canonicalized()
        assert (canonical.tails <= canonical.heads).all()
        assert canonical.tails[0] <= canonical.tails[1]

    def test_deduplicated_removes_duplicates(self):
        table = EdgeTable("e", [0, 1, 0], [1, 0, 1], num_tail_nodes=2)
        simple = table.deduplicated()
        assert len(simple) == 1

    def test_deduplicated_removes_self_loops(self):
        table = EdgeTable("e", [0, 1], [0, 2], num_tail_nodes=3)
        simple = table.deduplicated()
        assert len(simple) == 1
        assert (simple.tails != simple.heads).all()

    def test_deduplicated_keeps_self_loops_when_asked(self):
        table = EdgeTable("e", [0, 1], [0, 2], num_tail_nodes=3)
        kept = table.deduplicated(drop_self_loops=False)
        assert len(kept) == 2

    def test_deduplicated_directed_keeps_orientations(self):
        table = EdgeTable(
            "e", [0, 1], [1, 0], num_tail_nodes=2, directed=True
        )
        assert len(table.deduplicated()) == 2

    def test_relabeled(self):
        table = EdgeTable("e", [0, 1], [1, 2], num_tail_nodes=3)
        relabeled = table.relabeled(np.array([2, 0, 1]))
        assert np.array_equal(relabeled.tails, [2, 0])
        assert np.array_equal(relabeled.heads, [0, 1])

    def test_relabeled_bipartite(self):
        table = EdgeTable(
            "e", [0], [1], num_tail_nodes=1, num_head_nodes=2,
            directed=True,
        )
        out = table.relabeled(
            np.array([4, 5, 6, 7, 8]), np.array([1, 0])
        )
        assert out.tails[0] == 4
        assert out.heads[0] == 0

    def test_subsample(self):
        table = EdgeTable("e", [0, 1, 2], [1, 2, 0], num_tail_nodes=3)
        sub = table.subsample([2, 0])
        assert len(sub) == 2
        assert int(sub.tails[0]) == 2

    def test_head_rows(self, triangle_table):
        rows = triangle_table.head_rows(2)
        assert rows == [(0, 0, 1), (1, 1, 2)]


class TestIterChunks:
    def test_covers_table_in_order(self):
        table = EdgeTable(
            "e", np.arange(7), np.arange(7)[::-1].copy(),
            num_tail_nodes=7,
        )
        chunks = list(table.iter_chunks(3))
        assert [start for start, _, _ in chunks] == [0, 3, 6]
        assert np.array_equal(
            np.concatenate([t for _, t, _ in chunks]), table.tails
        )
        assert np.array_equal(
            np.concatenate([h for _, _, h in chunks]), table.heads
        )

    def test_chunks_are_views(self):
        table = EdgeTable("e", [0, 1, 2], [1, 2, 0], num_tail_nodes=3)
        _, tails, _ = next(iter(table.iter_chunks(2)))
        assert tails.base is table.tails

    def test_empty_table_yields_nothing(self):
        table = EdgeTable("e", [], [])
        assert list(table.iter_chunks(4)) == []

    def test_rejects_bad_chunk_size(self):
        table = EdgeTable("e", [0], [0], num_tail_nodes=1)
        with pytest.raises(ValueError, match="chunk_size"):
            list(table.iter_chunks(0))
