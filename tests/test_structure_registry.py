"""Tests for the SG registry and the Table 1 capability matrix."""

from __future__ import annotations

import pytest

from repro.structure import (
    EXTERNAL_SYSTEMS,
    Capability,
    GeneratorInfo,
    available_generators,
    capability_matrix,
    create_generator,
    register_generator,
)
from repro.structure.base import StructureGenerator


class TestRegistry:
    def test_all_builtins_present(self):
        names = set(available_generators())
        assert {
            "rmat", "lfr", "bter", "darwini", "erdos_renyi",
            "configuration", "sbm", "one_to_many", "one_to_one",
            "watts_strogatz", "barabasi_albert",
            "bipartite_configuration", "cascade_forest",
        } <= names

    def test_create_by_name(self):
        generator = create_generator("erdos_renyi_m", seed=1, m=10)
        assert generator.run(10).num_edges == 10

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown structure generator"):
            create_generator("nope")

    def test_register_custom(self):
        class Null(StructureGenerator):
            name = "null_test_sg"

            def _generate(self, n, stream):
                from repro.tables import EdgeTable

                return EdgeTable("null", [], [], num_tail_nodes=n)

        register_generator(
            GeneratorInfo("null_test_sg", Null, Capability())
        )
        assert create_generator("null_test_sg").run(5).num_edges == 0


class TestCapabilityMatrix:
    def test_paper_rows_present(self):
        rows = dict(capability_matrix())
        for system in ("LDBC-SNB", "Myriad", "RMat", "LFR", "BTER",
                       "Darwini"):
            assert system in rows

    def test_table1_ldbc_row(self):
        """Spot-check against the paper's Table 1: LDBC-SNB has
        property-structure correlation and dd, cc structure."""
        rows = dict(capability_matrix())
        ldbc = rows["LDBC-SNB"]
        assert ldbc["property structure correlation"] == "x"
        assert "dd" in ldbc["structure"]
        assert "cc" in ldbc["structure"]
        assert ldbc["edge type"] == ""

    def test_table1_myriad_row(self):
        rows = dict(capability_matrix())
        myriad = rows["Myriad"]
        assert myriad["node type"] == "x"
        assert myriad["edge cardinality"] == "x"
        assert myriad["property structure correlation"] == ""

    def test_table1_bter_darwini_structure(self):
        rows = dict(capability_matrix())
        assert "accd" in rows["BTER"]["structure"]
        assert "ccdd" in rows["Darwini"]["structure"]

    def test_datasynth_row_dominates(self):
        """The reproduced framework covers every column (the point of
        the paper)."""
        rows = dict(capability_matrix())
        datasynth = rows["DataSynth (this work)"]
        for column, cell in datasynth.items():
            if column == "structure":
                continue
            assert cell == "x", f"missing capability: {column}"

    def test_internal_rows_prefixed(self):
        names = [name for name, _row in capability_matrix()]
        assert any(name.startswith("repro:") for name in names)

    def test_exclude_external(self):
        names = [
            name
            for name, _row in capability_matrix(include_external=False)
        ]
        assert all(name.startswith("repro:") for name in names)

    def test_capability_row_rendering(self):
        row = Capability(node_types=True, structure=("dd",)).row()
        assert row["node type"] == "x"
        assert row["structure"] == "dd"
        assert row["edge type"] == ""
