"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.stats import TruncatedGeometric
from repro.structure import LFR, RMat
from repro.tables import EdgeTable, PropertyTable


@pytest.fixture
def stream():
    """A fresh deterministic stream."""
    return RandomStream(12345, "tests")


@pytest.fixture(scope="session")
def small_lfr():
    """A small LFR graph with known-good community structure."""
    generator = LFR(
        seed=7,
        avg_degree=12,
        max_degree=30,
        min_community=10,
        max_community=40,
        mu=0.1,
    )
    return generator.run_with_labels(1200)


@pytest.fixture(scope="session")
def small_rmat():
    """A small R-MAT graph (scale 10)."""
    return RMat(seed=3).run_scale(10)


@pytest.fixture
def triangle_table():
    """The 3-cycle: simplest graph with a triangle."""
    return EdgeTable("tri", [0, 1, 2], [1, 2, 0], num_tail_nodes=3)


@pytest.fixture
def path_table():
    """A 4-node path 0-1-2-3."""
    return EdgeTable("path", [0, 1, 2], [1, 2, 3], num_tail_nodes=4)


@pytest.fixture
def grouped_ptable():
    """PT with 3 values of sizes 5/3/2 (ids 0..9)."""
    values = np.array([0] * 5 + [1] * 3 + [2] * 2, dtype=np.int64)
    return PropertyTable("test.value", values)


@pytest.fixture
def group_sizes_16():
    """The paper's truncated-geometric sizes for k=16, n=1600."""
    return TruncatedGeometric(0.4, 16).sizes(1600)
