"""The batched attribute kernels are value-identical to the frozen
legacy generators.

Three layers of defence:

* **Golden fixtures** (``tests/golden/properties/fixtures.json``): the
  pre-rewrite outputs of every registered builtin generator over
  multiple seeds and dependency dtypes.  Both the frozen legacy code
  and the vectorised kernels (numpy and, when a compiler is present,
  C) must keep reproducing those exact values — including through the
  ``out=`` buffer path and for arbitrary id-range shards.
* **Property-based equivalence**: hypothesis drives random seeds,
  sizes and parameters through legacy-vs-vectorised comparisons, and
  checks the ragged PRNG API against per-instance substreams.
* **Regression pins** for the TextGenerator cdf boundary fix.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prng import RandomStream
from repro.properties import (
    LEGACY_GENERATORS,
    MultiValueGenerator,
    TextGenerator,
    available_property_generators,
    create_legacy_generator,
    create_property_generator,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "properties"

_spec = importlib.util.spec_from_file_location(
    "properties_golden_regenerate", GOLDEN_DIR / "regenerate.py"
)
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)

import json

FIXTURES = json.loads(
    (GOLDEN_DIR / "fixtures.json").read_text(encoding="utf-8")
)


@contextmanager
def property_impl(impl):
    """Force the attribute-kernel implementation for a block."""
    import repro.properties._ckernel as ck

    previous = os.environ.get("REPRO_PROP_IMPL")
    os.environ["REPRO_PROP_IMPL"] = impl
    ck._LOADED, ck._KERNEL = False, None
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_PROP_IMPL", None)
        else:
            os.environ["REPRO_PROP_IMPL"] = previous
        ck._LOADED, ck._KERNEL = False, None


def c_kernel_available():
    with property_impl("auto"):
        from repro.properties._ckernel import load_property_ckernel

        return load_property_ckernel() is not None


HAS_CKERNEL = c_kernel_available()

IMPLS = ["numpy"] + (["c"] if HAS_CKERNEL else [])

CASE_SEEDS = [
    (case, seed)
    for case in sorted(golden.CASES)
    for seed in golden.SEEDS
]


def run_case(case, seed, factory, out=None, id_range=None):
    name, params, ids, stream, deps = golden.case_inputs(case, seed)
    generator = factory(name, **params)
    if id_range is not None:
        lo, hi = id_range
        ids = ids[lo:hi]
        deps = tuple(dep[lo:hi] for dep in deps)
    if out is not None:
        return generator.run_many(ids, stream, *deps, out=out)
    return generator.run_many(ids, stream, *deps)


class TestGoldenFixtures:
    def test_every_registered_generator_is_covered(self):
        covered = {spec[0] for spec in golden.CASES.values()}
        assert covered == set(available_property_generators())
        assert covered == set(LEGACY_GENERATORS)

    @pytest.mark.parametrize("case,seed", CASE_SEEDS)
    def test_legacy_matches_fixture(self, case, seed):
        """The frozen legacy code still produces the pinned values."""
        fixture = FIXTURES["cases"][case]["seeds"][str(seed)]
        values = run_case(case, seed, create_legacy_generator)
        assert golden.encode_values(values) == fixture

    @pytest.mark.parametrize("impl", IMPLS)
    @pytest.mark.parametrize("case,seed", CASE_SEEDS)
    def test_vectorised_matches_fixture(self, case, seed, impl):
        """The batched kernels reproduce the pre-rewrite values."""
        fixture = FIXTURES["cases"][case]["seeds"][str(seed)]
        with property_impl(impl):
            values = run_case(case, seed, create_property_generator)
        assert golden.encode_values(values) == fixture

    @pytest.mark.parametrize("case,seed", CASE_SEEDS)
    def test_out_buffer_matches_fixture(self, case, seed):
        """The allocation-free out= path writes the same values."""
        name, params, ids, _, _ = golden.case_inputs(case, seed)
        generator = create_property_generator(name, **params)
        if not generator.supports_out:
            pytest.skip(f"{name} has no out= path")
        fixture = FIXTURES["cases"][case]["seeds"][str(seed)]
        buffer = np.empty(ids.size, dtype=generator.output_dtype())
        values = run_case(
            case, seed, create_property_generator, out=buffer
        )
        assert values is buffer
        assert golden.encode_values(values) == fixture

    @pytest.mark.parametrize(
        "id_range", [(0, 0), (0, 17), (17, 31), (31, 48)]
    )
    @pytest.mark.parametrize("case", sorted(golden.CASES))
    def test_shard_slices_match_fixture(self, case, id_range):
        """Any id-range shard equals the same slice of the fixture —
        the contract that makes worker-count invisible."""
        seed = golden.SEEDS[0]
        fixture = FIXTURES["cases"][case]["seeds"][str(seed)]
        values = run_case(
            case, seed, create_property_generator, id_range=id_range
        )
        lo, hi = id_range
        encoded = golden.encode_values(values)
        assert encoded["values"] == fixture["values"][lo:hi]


@pytest.mark.skipif(not HAS_CKERNEL, reason="no C compiler")
class TestCKernelEquivalence:
    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(0, 300),
        vocab_size=st.integers(1, 300),
        exponent=st.floats(0.2, 2.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_ragged_codes_match_numpy(
        self, seed, n, vocab_size, exponent
    ):
        vocab = [f"w{i}" for i in range(vocab_size)]
        params = dict(
            vocabulary=vocab, min_words=1, max_words=5,
            zipf_exponent=exponent,
        )
        ids = np.arange(n, dtype=np.int64)
        with property_impl("numpy"):
            a = TextGenerator(**params).run_many(
                ids, RandomStream(seed, "ck.text")
            )
        with property_impl("c"):
            b = TextGenerator(**params).run_many(
                ids, RandomStream(seed, "ck.text")
            )
        assert list(a) == list(b)

    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(0, 200),
        k=st.integers(1, 200),
        exponent=st.floats(0.0, 2.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_multivalue_picks_match_numpy(self, seed, n, k, exponent):
        params = dict(
            values=[f"v{i}" for i in range(k)],
            min_size=1, max_size=min(4, k), exponent=exponent,
        )
        ids = np.arange(n, dtype=np.int64)
        with property_impl("numpy"):
            a = MultiValueGenerator(**params).run_many(
                ids, RandomStream(seed, "ck.mv")
            )
        with property_impl("c"):
            b = MultiValueGenerator(**params).run_many(
                ids, RandomStream(seed, "ck.mv")
            )
        assert list(a) == list(b)


class TestRaggedDraws:
    @given(
        seed=st.integers(0, 2**63),
        lengths=st.lists(st.integers(0, 17), max_size=40),
        base=st.integers(0, 2**40),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_ragged_equals_per_instance(
        self, seed, lengths, base
    ):
        """Batched ragged draws == one substream object per instance."""
        stream = RandomStream(seed, "ragged")
        ids = base + np.arange(len(lengths), dtype=np.int64) * 7
        lengths = np.asarray(lengths, dtype=np.int64)
        flat, offsets = stream.uniform_ragged(ids, lengths)
        assert offsets[-1] == lengths.sum()
        for j, instance in enumerate(ids):
            expected = stream.indexed_substream(int(instance)).uniform(
                np.arange(lengths[j], dtype=np.int64)
            )
            got = flat[offsets[j]:offsets[j + 1]]
            assert got.shape == expected.shape
            assert (got == expected).all()

    @given(seed=st.integers(0, 2**63), n=st.integers(0, 64))
    @settings(max_examples=30, deadline=None)
    def test_indexed_substream_seeds(self, seed, n):
        stream = RandomStream(seed)
        ids = np.arange(n, dtype=np.int64) * 13
        seeds = stream.indexed_substream_seeds(ids)
        for j, instance in enumerate(ids):
            assert int(seeds[j]) == \
                stream.indexed_substream(int(instance)).seed

    def test_ragged_rejects_misaligned_lengths(self):
        stream = RandomStream(1)
        with pytest.raises(ValueError, match="align"):
            stream.uniform_ragged([1, 2, 3], [1, 2])

    def test_ragged_rejects_negative_lengths(self):
        stream = RandomStream(1)
        with pytest.raises(ValueError, match="nonnegative"):
            stream.uniform_ragged([1, 2], [1, -1])


class TestImplSelection:
    def test_numpy_forced_returns_no_kernel(self):
        from repro.properties._ckernel import (
            load_property_ckernel,
            resolve_impl,
        )

        with property_impl("numpy"):
            assert resolve_impl() == "numpy"
            assert load_property_ckernel() is None

    def test_unknown_impl_rejected(self):
        from repro.properties._ckernel import resolve_impl

        with pytest.raises(ValueError, match="unknown property impl"):
            resolve_impl("fortran")

    def test_forced_c_without_kernel_raises(self, monkeypatch):
        """REPRO_PROP_IMPL=c must fail loudly when no kernel can load,
        mirroring the matching kernel's impl='c' semantics."""
        import repro.properties._ckernel as ck

        with property_impl("c"):
            monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
            ck._LOADED, ck._KERNEL = False, None
            with pytest.raises(RuntimeError, match="no C kernel"):
                ck.resolve_impl()
            ck._LOADED, ck._KERNEL = False, None


STOCHASTIC_PARAMS = {
    "categorical": lambda k: dict(
        values=[f"v{i}" for i in range(k)],
        weights=list(range(1, k + 1)),
    ),
    "weighted_dict": lambda k: dict(
        values=[f"v{i}" for i in range(k)], exponent=1.1
    ),
    "zipf_int": lambda k: dict(k=k, exponent=0.9),
    "uuid": lambda k: dict(),
    "composite_key": lambda k: dict(prefix="node"),
    "uniform_int": lambda k: dict(low=0, high=k + 1),
    "uniform_float": lambda k: dict(low=-1.0, high=1.0),
    "date_range": lambda k: dict(start=0, end=10_000 + k),
    "sequence": lambda k: dict(start=k, step=3),
}


class TestVectorisedEqualsLegacy:
    @given(
        name=st.sampled_from(sorted(STOCHASTIC_PARAMS)),
        seed=st.integers(0, 2**32),
        n=st.integers(0, 200),
        k=st.integers(1, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_dependency_generators(self, name, seed, n, k):
        params = STOCHASTIC_PARAMS[name](k)
        ids = np.arange(n, dtype=np.int64)
        stream = RandomStream(seed, f"hyp.{name}")
        a = create_legacy_generator(name, **params).run_many(
            ids, stream
        )
        b = create_property_generator(name, **params).run_many(
            ids, stream
        )
        assert a.dtype == b.dtype
        assert list(a) == list(b)

    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(0, 150),
        vocab_size=st.integers(1, 40),
        lo=st.integers(1, 4),
        extra=st.integers(0, 6),
        exponent=st.sampled_from([0.0, 0.7, 1.0, 1.8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_text(self, seed, n, vocab_size, lo, extra, exponent):
        params = dict(
            vocabulary=[f"w{i}" for i in range(vocab_size)],
            min_words=lo, max_words=lo + extra,
            zipf_exponent=exponent,
        )
        ids = np.arange(n, dtype=np.int64)
        stream = RandomStream(seed, "hyp.text")
        a = create_legacy_generator("text", **params).run_many(
            ids, stream
        )
        b = create_property_generator("text", **params).run_many(
            ids, stream
        )
        assert list(a) == list(b)

    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(0, 150),
        k=st.integers(1, 30),
        hi=st.integers(1, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_multivalue_exact(self, seed, n, k, hi):
        params = dict(
            values=[f"v{i}" for i in range(k)],
            min_size=1, max_size=min(hi, k), exponent=1.1,
        )
        ids = np.arange(n, dtype=np.int64)
        stream = RandomStream(seed, "hyp.mv")
        a = create_legacy_generator("multi_value", **params).run_many(
            ids, stream
        )
        b = create_property_generator("multi_value", **params).run_many(
            ids, stream
        )
        assert list(a) == list(b)

    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(1, 150),
        num_keys=st.integers(1, 6),
        with_default=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_conditional(self, seed, n, num_keys, with_default):
        keys = [f"k{i}" for i in range(num_keys)]
        table = {
            key: ([f"{key}_v{j}" for j in range(3)], [3, 2, 1])
            for key in keys
        }
        params = dict(table=table)
        if with_default:
            params["default"] = (["fallback"], None)
            keys = keys + ["unseen"]
        dep = np.empty(n, dtype=object)
        dep[:] = [keys[i % len(keys)] for i in range(n)]
        ids = np.arange(n, dtype=np.int64)
        stream = RandomStream(seed, "hyp.cond")
        a = create_legacy_generator("conditional", **params).run_many(
            ids, stream, dep
        )
        b = create_property_generator("conditional", **params).run_many(
            ids, stream, dep
        )
        assert list(a) == list(b)


class TestMultiValueES:
    """The Efraimidis–Spirakis path: same constraints + distribution,
    different (documented) draw consumption."""

    def test_sets_distinct_and_sized(self):
        generator = MultiValueGenerator(
            values=list("abcdefgh"), min_size=2, max_size=4,
            method="es",
        )
        out = generator.run_many(
            np.arange(500, dtype=np.int64), RandomStream(5, "es")
        )
        for value_set in out:
            assert 2 <= len(value_set) <= 4
            assert len(set(value_set)) == len(value_set)

    def test_popularity_skew_preserved(self):
        generator = MultiValueGenerator(
            values=list("abcdefghij"), min_size=1, max_size=2,
            exponent=1.5, method="es",
        )
        out = generator.run_many(
            np.arange(3000, dtype=np.int64), RandomStream(9, "es")
        )
        first = sum(1 for s in out if "a" in s)
        last = sum(1 for s in out if "j" in s)
        assert first > 3 * last

    def test_in_place_random_access(self):
        generator = MultiValueGenerator(
            values=list("abcdef"), min_size=1, max_size=3, method="es",
        )
        stream = RandomStream(2, "es")
        full = generator.run_many(
            np.arange(100, dtype=np.int64), stream
        )
        single = generator.run_many(
            np.array([42], dtype=np.int64), stream
        )
        assert single[0] == full[42]

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            MultiValueGenerator(values=list("abcd"), method="bogus")

    def test_sets_are_exact_top_keys_at_large_k(self):
        """Regression: each instance must receive exactly its size_i
        largest ES keys.  An unordered argpartition prefix silently
        violates this once k is large enough that numpy's introselect
        stops incidentally sorting the prefix."""
        from repro.properties.multivalue import _es_picks

        k = 2000
        weights = np.arange(1, k + 1, dtype=np.float64)[::-1].copy()
        stream = RandomStream(17, "es.topk")
        ids = np.arange(64, dtype=np.int64)
        sizes = stream.substream("size").randint(ids, 1, 1800)
        seeds = stream.substream("picks").indexed_substream_seeds(ids)
        codes, offsets = _es_picks(seeds, sizes, weights)
        inv_w = 1.0 / weights
        for j in range(ids.size):
            size = int(sizes[j])
            got = set(codes[offsets[j]:offsets[j + 1]].tolist())
            u = RandomStream(int(seeds[j])).uniform(
                np.arange(k, dtype=np.int64)
            )
            keys = u ** inv_w
            expected = set(np.argsort(-keys)[:size].tolist())
            assert got == expected, j


class TestTextCdfBoundary:
    """Regression pins for the cdf[-1] fix: searchsorted can never
    index past the vocabulary, with no clamp biasing the last word."""

    def test_cdf_final_step_is_exactly_one(self):
        generator = TextGenerator(
            vocabulary=[f"w{i}" for i in range(1000)],
            zipf_exponent=1.0,
        )
        cdf, _ = generator._tables()
        assert cdf[-1] == 1.0
        assert (np.diff(cdf) >= 0).all()

    @pytest.mark.parametrize("exponent", [0.0, 0.5, 1.0, 2.0])
    @pytest.mark.parametrize("vocab_size", [1, 2, 7, 1000])
    def test_uniform_boundary_never_overflows(
        self, vocab_size, exponent
    ):
        """Draws at the uniform() == 1.0 boundary stay in range.

        ``uniform`` emits at most ``(2**53 - 1) / 2**53``; the fix
        must keep even that draw — and, defensively, 1.0 itself minus
        one ulp — strictly below ``cdf[-1]`` so ``searchsorted``
        returns a valid word index without clamping.
        """
        generator = TextGenerator(
            vocabulary=[f"w{i}" for i in range(vocab_size)],
            zipf_exponent=exponent,
        )
        cdf, _ = generator._tables()
        max_uniform = (2**53 - 1) / 2**53
        points = [0.0, max_uniform, np.nextafter(1.0, 0.0)]
        for c in cdf[:-1]:
            points += [np.nextafter(float(c), 0.0), float(c)]
        boundary = np.array(points)
        codes = generator._word_codes(boundary, cdf)
        assert codes.max() < vocab_size
        assert codes.min() >= 0

    def test_boundary_draw_end_to_end(self):
        """A draw one ulp below 1.0 lands on a valid word through the
        public run_many path (stubbed word stream)."""
        vocab = ["head", "tail"]
        generator = TextGenerator(
            vocabulary=vocab, min_words=1, max_words=1,
            zipf_exponent=1.0,
        )

        class BoundaryStream:
            def substream(self, name):
                return self

            def randint(self, ids, low, high):
                return np.ones(np.asarray(ids).size, dtype=np.int64)

            def indexed_substream_seeds(self, ids):
                return np.zeros(np.asarray(ids).size, dtype=np.uint64)

            def uniform_ragged(self, ids, lengths):
                total = int(np.asarray(lengths).sum())
                offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                return (
                    np.full(total, np.nextafter(1.0, 0.0)),
                    offsets,
                )

        with property_impl("numpy"):
            out = generator.run_many(
                np.arange(3, dtype=np.int64), BoundaryStream()
            )
        assert list(out) == ["tail", "tail", "tail"]
