"""Planting subsystem tests (docs/planting.md).

Pillars:

* **templates** — construction invariants for every kind, explicit
  edge lists, and the error paths;
* **plan invariants** (hypothesis) — node maps injective, in-range and
  disjoint across instances; appended edge ids contiguous after the
  generated block; every template edge present post-injection unless
  deleted; the plan is a pure function of its inputs;
* **noise operators** — delete drops edges, rewire redirects heads,
  corrupt withholds forced attributes;
* **recipe wiring** — the spec registry's template-kind choices stay
  in sync with :data:`repro.planting.TEMPLATE_KINDS`, invalid plants
  fail compile with recipe paths;
* **matcher** — the baseline matcher recovers every plant (recall 1.0,
  exact node maps) at zero noise, and reports truncation honestly;
* **byte identity** — planted exports are byte-identical for workers
  {1, 2, 4} x backend {thread, process} x serial/sharded;
* **golden triples** — the exported (template, world, ground_truth)
  bytes are pinned for 2 seeds x 2 template kinds
  (``tests/golden/planting/regenerate.py``);
* **zoo smoke clamp** — later scale anchors clamp proportionally
  (regression for the first-anchor-only clamp).
"""

from __future__ import annotations

import filecmp
import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphstats import TemplateQuery, match_template, verify_plants
from repro.planting import (
    TEMPLATE_KINDS,
    PlantingError,
    compile_plants,
    make_template,
    plan_plants,
    planted_graph,
)
from repro.prng import RandomStream
from repro.scenarios import compile_scenario, run_scenario
from repro.scenarios.spec import RECIPE_FIELDS, ScenarioError
from repro.scenarios.zoo import load_zoo, zoo_names

TESTS_DIR = Path(__file__).resolve().parent
GOLDEN_DIR = TESTS_DIR / "golden" / "planting"

common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _load_script(path, name):
    """Import a non-package script (tools/, golden/) under a unique
    module name."""
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GOLDEN_REGEN = _load_script(
    GOLDEN_DIR / "regenerate.py", "golden_planting_regenerate"
)
ZOO_SMOKE = _load_script(
    TESTS_DIR.parent / "tools" / "run_zoo_smoke.py",
    "tool_run_zoo_smoke",
)


def lab_recipe(**plant_body):
    """A small planted scenario for integration tests."""
    plant = {
        "edge": "link",
        "template": {"kind": "ring", "size": 5},
        "count": 2,
        "attributes": {"flag": "marked"},
    }
    plant.update(plant_body)
    return {
        "scenario": "plant_lab",
        "seed": 17,
        "nodes": {
            "N": {
                "properties": {
                    "flag": {
                        "generator": "categorical",
                        "params": {
                            "values": ["clean", "marked"],
                            "weights": [0.9, 0.1],
                        },
                    },
                },
            },
        },
        "edges": {
            "link": {
                "tail": "N",
                "head": "N",
                "structure": {
                    "generator": "watts_strogatz",
                    "params": {"k": 4, "beta": 0.15},
                },
            },
        },
        "plants": {"probe": plant},
        "scale": {"N": 80},
        "export": {"formats": ["csv"]},
    }


def _compile_lab_plants(**plant_body):
    compiled = compile_scenario(lab_recipe(**plant_body))
    return compiled


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


class TestTemplates:
    def test_ring(self):
        t = make_template("r", "ring", size=4)
        assert t.edge_list() == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_star(self):
        t = make_template("s", "star", size=4)
        assert t.edge_list() == [(0, 1), (0, 2), (0, 3)]

    def test_clique(self):
        t = make_template("c", "clique", size=4)
        assert t.num_edges == 6
        assert set(t.edge_list()) == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        }

    def test_path(self):
        t = make_template("p", "path", size=4)
        assert t.edge_list() == [(0, 1), (1, 2), (2, 3)]

    def test_tree_is_connected_and_acyclic(self):
        stream = RandomStream(99, "tree-test")
        t = make_template("t", "tree", size=9, stream=stream)
        assert t.num_edges == 8
        # Random recursive tree: every edge attaches child j to an
        # earlier node, so parents precede children.
        for a, b in t.edge_list():
            assert a < b

    def test_explicit_edges(self):
        t = make_template(
            "e", "edges", edges=[[0, 1], [1, 2], [0, 2]]
        )
        assert t.size == 3 and t.num_edges == 3

    @pytest.mark.parametrize("kind,size", [
        ("ring", 2), ("star", 1), ("clique", 1), ("path", 1),
        ("tree", 1),
    ])
    def test_too_small(self, kind, size):
        with pytest.raises(PlantingError):
            make_template("x", kind, size=size,
                          stream=RandomStream(1, "t"))

    def test_unknown_kind(self):
        with pytest.raises(PlantingError):
            make_template("x", "pentagram", size=5)

    @pytest.mark.parametrize("edges", [
        [[0, 0]],                 # self loop
        [[0, 1], [0, 1]],         # duplicate
        [[0, 1], [1, 0]],         # reversed duplicate (undirected)
        [[0, 2]],                 # non-dense ids
    ])
    def test_bad_explicit_edges(self, edges):
        with pytest.raises(PlantingError):
            make_template("x", "edges", edges=edges)

    def test_reversed_pair_ok_when_directed(self):
        t = make_template("x", "edges", edges=[[0, 1], [1, 0]],
                          directed=True)
        assert t.num_edges == 2

    @common_settings
    @given(
        kind=st.sampled_from(["ring", "star", "clique", "path",
                              "tree"]),
        size=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_template_invariants(self, kind, size, seed):
        t = make_template(
            "h", kind, size=size, stream=RandomStream(seed, "grow")
        )
        assert t.size == size
        edges = t.edge_list()
        assert len(set(edges)) == t.num_edges
        for a, b in edges:
            assert 0 <= a < size and 0 <= b < size and a != b
        assert int(t.degrees().sum()) == 2 * t.num_edges


# ---------------------------------------------------------------------------
# Recipe wiring
# ---------------------------------------------------------------------------


class TestRecipeWiring:
    def test_spec_kind_choices_match_template_kinds(self):
        # The registry literal must track the planting module, or the
        # docs table and recipe validation drift from the real kinds.
        field = next(
            f for f in RECIPE_FIELDS
            if f.path == "plants.<plant>.template.kind"
        )
        assert tuple(field.choices) == tuple(TEMPLATE_KINDS)

    def test_unknown_edge_rejected(self):
        with pytest.raises(ScenarioError, match="plants.probe.edge"):
            compile_scenario(lab_recipe(edge="nope"))

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ScenarioError, match="attributes"):
            compile_scenario(lab_recipe(attributes={"nope": 1}))

    def test_bad_noise_rejected(self):
        with pytest.raises(ScenarioError, match="noise"):
            compile_scenario(
                lab_recipe(noise={"delete": 1.5})
            )

    def test_bipartite_edge_rejected(self):
        recipe = lab_recipe()
        recipe["nodes"]["M"] = {"properties": {}}
        recipe["scale"]["M"] = 40
        recipe["edges"]["owns"] = {
            "tail": "N", "head": "M",
            "structure": {
                "generator": "bipartite_configuration",
                "params": {
                    "tail_distribution": {
                        "$zipf": {"exponent": 1.3, "max": 8},
                    },
                    "head_distribution": {
                        "$zipf": {"exponent": 1.1, "max": 8},
                    },
                    "tail_offset": 1,
                    "head_offset": 1,
                    "head_nodes": {"$scale": "M"},
                },
            },
        }
        recipe["plants"]["probe"]["edge"] = "owns"
        with pytest.raises(ScenarioError, match="monopartite"):
            compile_scenario(recipe)

    def test_scale_constructor_resolves_final_anchor(self):
        # {$scale: Type} tracks overrides, not just the recipe value.
        recipe = lab_recipe()
        recipe["edges"]["link"]["structure"] = {
            "generator": "erdos_renyi_m",
            "params": {"m": {"$scale": "N"}},
        }
        compiled = compile_scenario(recipe, scale={"N": 48})
        edge = compiled.schema.edge_type("link")
        assert edge.structure.params["m"] == 48

    def test_scale_constructor_unknown_type(self):
        recipe = lab_recipe()
        recipe["edges"]["link"]["structure"]["params"]["k"] = {
            "$scale": "Nope"
        }
        with pytest.raises(ScenarioError, match=r"\$scale"):
            compile_scenario(recipe)


# ---------------------------------------------------------------------------
# Plan invariants
# ---------------------------------------------------------------------------


def _lab_plants(**plant_body):
    return _compile_lab_plants(**plant_body).plants


class TestPlanInvariants:
    @common_settings
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        n=st.integers(min_value=40, max_value=300),
        kind=st.sampled_from(["ring", "star", "clique", "path",
                              "tree"]),
        size=st.integers(min_value=3, max_value=7),
        count=st.integers(min_value=1, max_value=3),
    )
    def test_node_maps_injective_in_range_disjoint(
            self, seed, n, kind, size, count):
        compiled = compile_scenario(lab_recipe(
            template={"kind": kind, "size": size}, count=count,
        ), seed=seed)
        plan = plan_plants(
            compiled.plants, {"N": n}, {"link": 1000}, compiled.seed
        )
        seen = set()
        for inst in plan.instances:
            ids = [int(v) for v in inst.node_map]
            assert len(set(ids)) == len(ids) == size
            assert all(0 <= v < n for v in ids)
            assert not seen & set(ids), "instance maps must be disjoint"
            seen.update(ids)

    @common_settings
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_plan_is_deterministic(self, seed):
        plants = _lab_plants()
        one = plan_plants(plants, {"N": 120}, {"link": 77}, seed)
        two = plan_plants(plants, {"N": 120}, {"link": 77}, seed)
        assert one.to_dict() == two.to_dict()

    def test_appended_ids_contiguous_after_base(self):
        plants = _lab_plants()
        plan = plan_plants(plants, {"N": 100}, {"link": 50}, 3)
        ids = [
            rec["edge_id"]
            for inst in plan.instances for rec in inst.edges
            if rec["status"] != "deleted"
        ]
        tails, heads = plan.appended["link"]
        assert ids == list(range(50, 50 + tails.size))
        worlds = [
            tuple(rec["world"])
            for inst in plan.instances for rec in inst.edges
            if rec["status"] == "planted"
        ]
        assert worlds == list(zip(tails.tolist(), heads.tolist()))

    def test_delete_noise_drops_everything_at_rate_one(self):
        plants = _lab_plants(noise={"delete": 1.0})
        plan = plan_plants(plants, {"N": 100}, {"link": 10}, 5)
        assert plan.appended == {}
        for inst in plan.instances:
            assert all(
                rec["status"] == "deleted" for rec in inst.edges
            )

    def test_rewire_noise_redirects_heads(self):
        plants = _lab_plants(noise={"rewire": 1.0})
        plan = plan_plants(plants, {"N": 100}, {"link": 10}, 5)
        tails, heads = plan.appended["link"]
        for inst in plan.instances:
            mapped = set(int(v) for v in inst.node_map)
            for rec in inst.edges:
                assert rec["status"] == "rewired"
                u, v = rec["world"]
                assert rec["rewired_to"] not in (u, v)
        # Rewired heads are recorded in the appended arrays.
        rewired_to = [
            rec["rewired_to"]
            for inst in plan.instances for rec in inst.edges
        ]
        assert heads.tolist() == rewired_to

    def test_corrupt_noise_withholds_overrides_at_rate_one(self):
        plants = _lab_plants(noise={"corrupt": 1.0})
        plan = plan_plants(plants, {"N": 100}, {"link": 10}, 5)
        assert plan.overrides == {}
        for inst in plan.instances:
            assert len(inst.corrupted) == 5  # one per template node

    def test_world_too_small(self):
        plants = _lab_plants(count=3)  # 3 x 5 nodes > 10
        with pytest.raises(PlantingError, match="too small"):
            plan_plants(plants, {"N": 10}, {"link": 5}, 1)

    def test_ground_truth_document_roundtrips_json(self):
        plants = _lab_plants()
        plan = plan_plants(plants, {"N": 100}, {"link": 40}, 9)
        doc = json.loads(json.dumps(plan.to_dict()))
        assert doc["version"] == 1
        assert doc["appended"]["link"]["start"] == 40
        probe = doc["plants"]["probe"]
        assert probe["template"]["kind"] == "ring"
        assert len(probe["instances"]) == 2


# ---------------------------------------------------------------------------
# Injection (integration)
# ---------------------------------------------------------------------------


class TestInjection:
    @pytest.fixture(scope="class")
    def planted_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("plant-lab")
        compiled = compile_scenario(lab_recipe())
        graph, report, written = run_scenario(
            compiled, workers=1, out_dir=str(out), validate=False
        )
        yield compiled, graph, written, out
        if hasattr(graph, "cleanup"):
            graph.cleanup()

    def test_every_template_edge_present(self, planted_run):
        compiled, graph, written, out = planted_run
        plan = graph.plan
        table = graph.edges("link")
        pairs = set(zip(
            np.asarray(table.tails).tolist(),
            np.asarray(table.heads).tolist(),
        ))
        for inst in plan.instances:
            for rec in inst.edges:
                if rec["status"] == "deleted":
                    continue
                u = rec["world"][0]
                v = (rec["rewired_to"]
                     if rec["status"] == "rewired"
                     else rec["world"][1])
                assert (u, v) in pairs, rec

    def test_forced_attributes_applied(self, planted_run):
        compiled, graph, written, out = planted_run
        plan = graph.plan
        values = np.asarray(graph.node_property("N", "flag").values)
        for inst in plan.instances:
            assert (values[inst.node_map] == "marked").all()

    def test_ground_truth_file_matches_plan(self, planted_run):
        compiled, graph, written, out = planted_run
        gt_path = out / "ground_truth.json"
        assert str(gt_path) in written
        with open(gt_path, encoding="utf-8") as handle:
            assert json.load(handle) == graph.plan.to_dict()

    def test_manifest_embeds_planting_block(self, planted_run):
        compiled, graph, written, out = planted_run
        with open(out / "manifest.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["planting"] == graph.plan.to_dict()
        # Table metadata covers the appended block.
        assert manifest["tables"]["link"]["rows"] == len(
            graph.edges("link")
        )

    def test_compile_plants_requires_schema_edge(self):
        compiled = compile_scenario(lab_recipe())
        with pytest.raises(PlantingError):
            compile_plants(
                {"bad": {"edge": "missing",
                         "template": {"kind": "ring", "size": 3}}},
                compiled.schema, 1,
            )


# ---------------------------------------------------------------------------
# Matcher
# ---------------------------------------------------------------------------


class TestMatcher:
    def test_triangle_in_triangle_world(self):
        tails = np.array([0, 1, 2, 3], dtype=np.int64)
        heads = np.array([1, 2, 0, 0], dtype=np.int64)
        query = TemplateQuery(
            tails=np.array([0, 1, 2]), heads=np.array([1, 2, 0]),
            size=3,
        )
        result = match_template(query, tails, heads, num_nodes=4)
        # 3 rotations x 2 orientations of the one triangle.
        assert result.num_matches == 6
        assert result.contains(np.array([0, 1, 2]))
        assert not result.contains(np.array([0, 1, 3]))

    def test_truncation_reported(self):
        # A clique world has factorially many path embeddings.
        k = 7
        t, h = np.triu_indices(k, 1)
        query = TemplateQuery(
            tails=np.array([0, 1]), heads=np.array([1, 2]), size=3,
        )
        result = match_template(
            query, t.astype(np.int64), h.astype(np.int64),
            num_nodes=k, max_matches=5,
        )
        assert result.truncated
        assert result.num_matches == 5

    def test_label_filter_prunes(self):
        tails = np.array([0, 1, 3, 4], dtype=np.int64)
        heads = np.array([1, 2, 4, 5], dtype=np.int64)
        labels = np.array(["x", "x", "x", "y", "y", "y"])
        constraint = [(labels, "y")]
        query = TemplateQuery(
            tails=np.array([0, 1]), heads=np.array([1, 2]), size=3,
            labels={0: constraint, 1: constraint, 2: constraint},
        )
        result = match_template(query, tails, heads, num_nodes=6)
        assert result.num_matches >= 1
        for row in result.matches:
            assert (labels[row] == "y").all()

    @pytest.mark.parametrize("name", [
        "fraud_ring_social", "c2_pattern_infra_telemetry",
    ])
    def test_zero_noise_recall_is_one(self, name):
        scale = {"fraud_ring_social": {"Person": 400},
                 "c2_pattern_infra_telemetry": {"Host": 300}}[name]
        compiled = compile_scenario(load_zoo(name), scale=scale)
        graph, _, _ = run_scenario(
            compiled, workers=1, validate=False
        )
        report = verify_plants(graph.materialize(), graph.plan)
        assert report["recall"] == 1.0, report
        for row in report["plants"].values():
            assert row["recovered"] == row["instances"]
            assert row["rows_per_sec"] > 0


# ---------------------------------------------------------------------------
# Byte identity across execution paths
# ---------------------------------------------------------------------------


IDENTITY_COMBOS = [
    # (workers, sharded, backend) — covers workers {1,2,4} x
    # thread/process x serial/sharded against the serial w=1 baseline.
    (2, False, "thread"),
    (4, False, "thread"),
    (1, True, "thread"),
    (2, True, "process"),
    (4, True, "process"),
]


def _export_files(out):
    return {
        p.relative_to(out): p
        for p in Path(out).rglob("*") if p.is_file()
    }


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("plant-ref")
        compiled = compile_scenario(
            load_zoo("c2_pattern_infra_telemetry"),
            scale={"Host": 250},
        )
        graph, _, _ = run_scenario(
            compiled, workers=1, out_dir=str(out), validate=False
        )
        if hasattr(graph, "cleanup"):
            graph.cleanup()
        return out

    @pytest.mark.parametrize(
        "workers,sharded,backend", IDENTITY_COMBOS,
        ids=[f"w{w}-{'sharded' if s else 'serial'}-{b}"
             for w, s, b in IDENTITY_COMBOS],
    )
    def test_planted_export_byte_identical(self, reference, tmp_path,
                                           workers, sharded, backend):
        compiled = compile_scenario(
            load_zoo("c2_pattern_infra_telemetry"),
            scale={"Host": 250},
        )
        kwargs = {"shard_rows": 128, "backend": backend} if sharded \
            else {}
        graph, _, _ = run_scenario(
            compiled, workers=workers, out_dir=str(tmp_path),
            validate=False, **kwargs,
        )
        if hasattr(graph, "cleanup"):
            graph.cleanup()
        ref_files = _export_files(reference)
        got_files = _export_files(tmp_path)
        assert sorted(ref_files) == sorted(got_files)
        for rel, ref_path in ref_files.items():
            assert filecmp.cmp(
                ref_path, got_files[rel], shallow=False
            ), f"{rel} differs (workers={workers}, sharded={sharded}, "\
               f"backend={backend})"


# ---------------------------------------------------------------------------
# Golden triples
# ---------------------------------------------------------------------------


class TestGoldenTriples:
    @pytest.mark.parametrize("kind", GOLDEN_REGEN.KINDS)
    @pytest.mark.parametrize("seed", GOLDEN_REGEN.SEEDS)
    def test_triple_bytes_pinned(self, kind, seed, tmp_path):
        GOLDEN_REGEN.write_triple(kind, seed, tmp_path)
        fixture_dir = GOLDEN_DIR / GOLDEN_REGEN.fixture_name(
            kind, seed
        )
        fixtures = sorted(
            p for p in fixture_dir.iterdir() if p.is_file()
        )
        assert fixtures, f"no fixtures for {kind} seed {seed}"
        for fixture in fixtures:
            produced = tmp_path / fixture.name
            assert produced.read_bytes() == fixture.read_bytes(), \
                f"{fixture.name} ({kind}, seed {seed})"


# ---------------------------------------------------------------------------
# Zoo smoke clamp (regression)
# ---------------------------------------------------------------------------


class TestZooSmokeClamp:
    def test_later_anchors_clamp_proportionally(self):
        # The original bug: only {User: 4000} was clamped, leaving
        # {Item: 2000} at full size.
        assert ZOO_SMOKE.clamp_scale(
            {"User": 4000, "Item": 2000}, 500
        ) == {"User": 500, "Item": 250}

    def test_power_of_two_anchors_stay_power_of_two(self):
        assert ZOO_SMOKE.clamp_scale({"Page": 4096}, 500) == \
            {"Page": 256}
        assert ZOO_SMOKE.clamp_scale({"A": 4096, "B": 1024}, 500) == \
            {"A": 256, "B": 64}

    def test_small_scales_untouched(self):
        assert ZOO_SMOKE.clamp_scale({"N": 100}, 500) == {"N": 100}
        assert ZOO_SMOKE.clamp_scale({}, 500) == {}

    def test_floor_of_one(self):
        clamped = ZOO_SMOKE.clamp_scale({"A": 4000, "B": 3}, 500)
        assert clamped == {"A": 500, "B": 1}

    def test_every_planted_zoo_recipe_registered(self):
        # Both benchmark recipes ship in the zoo and declare plants.
        names = set(zoo_names())
        assert {"fraud_ring_social",
                "c2_pattern_infra_telemetry"} <= names
        scales = {"fraud_ring_social": {"Person": 60},
                  "c2_pattern_infra_telemetry": {"Host": 60}}
        for name, scale in scales.items():
            compiled = compile_scenario(load_zoo(name), scale=scale)
            assert compiled.plants, name


# ---------------------------------------------------------------------------
# Overlay pass-through
# ---------------------------------------------------------------------------


class TestOverlayPassThrough:
    def test_empty_plan_is_identity(self):
        compiled = compile_scenario(lab_recipe())
        graph = compiled.generator().generate()
        plan = plan_plants([], graph.node_counts, {"link": 10}, 1)
        assert planted_graph(graph, plan) is graph
