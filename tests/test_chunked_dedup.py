"""Out-of-core sort-merge dedup: primitives and chunked equivalence.

``repro.io.spool.SortedRuns`` / ``dedup_first_occurrence`` are the
machinery that lets the globally-deduplicating structure stages (R-MAT
``simplify``, bipartite stub dedup, G(n, m) sampling) run in bounded
memory.  The contract is exact: unique-mode merges must reproduce
``np.unique``'s first-occurrence rule bit for bit, and every chunked
generator must emit the same edge table its serial twin materialises —
for any run size, including degenerate multi-run splits.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.structure.bipartite as bipartite_mod
import repro.structure.erdos_renyi as er_mod
import repro.structure.rmat as rmat_mod
from repro.io.spool import (
    SortedRuns,
    TableSpool,
    dedup_first_occurrence,
    spill_array,
)
from repro.stats import Zipf
from repro.structure import BipartiteConfiguration, ErdosRenyiM, RMat

#: Tiny run size (SortedRuns clamps to 1024) so a few thousand rows
#: split into several spilled runs and the k-way merge actually merges.
_SMALL_RUNS = 1024


@pytest.fixture
def spill(tmp_path):
    spool = TableSpool(tmp_path / "spool", 1024)
    yield spool.spiller("test")
    spool.cleanup()


class TestSortedRuns:
    def test_multi_run_merge_is_globally_sorted(self, spill):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10_000, size=5_000)
        runs = SortedRuns(spill, "s", _SMALL_RUNS)
        for block in np.array_split(values, 7):
            runs.push(block)
        assert len(runs) >= 3  # genuinely multi-run
        merged = np.concatenate([p for p, _ in runs.merge()])
        np.testing.assert_array_equal(merged, np.sort(values))
        # Re-iterable: a second merge pass sees the same stream.
        again = np.concatenate([p for p, _ in runs.merge()])
        np.testing.assert_array_equal(again, merged)
        runs.cleanup()

    def test_unique_keeps_smallest_secondary(self, spill):
        rng = np.random.default_rng(1)
        primary = rng.integers(0, 500, size=4_000)
        secondary = np.arange(4_000, dtype=np.int64)
        runs = SortedRuns(spill, "u", _SMALL_RUNS, unique=True)
        for lo in range(0, 4_000, 611):
            runs.push(primary[lo:lo + 611], secondary[lo:lo + 611])
        got_p = []
        got_s = []
        for p, s in runs.merge():
            got_p.append(p)
            got_s.append(s)
        got_p = np.concatenate(got_p)
        got_s = np.concatenate(got_s)
        expect_p, first = np.unique(primary, return_index=True)
        np.testing.assert_array_equal(got_p, expect_p)
        np.testing.assert_array_equal(got_s, secondary[first])
        runs.cleanup()

    def test_cleanup_unlinks_spilled_runs(self, tmp_path):
        spool = TableSpool(tmp_path / "spool", 1024)
        spill = spool.spiller("scratch")
        runs = SortedRuns(spill, "c", _SMALL_RUNS)
        runs.push(np.arange(5_000, dtype=np.int64))
        runs.flush()
        spilled = [
            p for p in (tmp_path / "spool").rglob("*.npy")
            if ".run" in p.name
        ]
        assert spilled
        runs.cleanup()
        assert not [
            p for p in (tmp_path / "spool").rglob("*.npy")
            if ".run" in p.name
        ]
        assert runs.total() == 0  # buffers reset, not replayed
        spool.cleanup()


class TestDedupFirstOccurrence:
    @pytest.mark.parametrize("size,universe", [
        (5_000, 700),     # heavy duplication across runs
        (3_000, 10**9),   # essentially no duplicates
        (0, 10),          # empty input
    ])
    def test_matches_np_unique_first_occurrence(
        self, spill, size, universe
    ):
        rng = np.random.default_rng(size + 3)
        codes = rng.integers(0, universe, size=size)
        edge_ids = np.arange(size, dtype=np.int64)

        def blocks():
            for lo in range(0, size, 977):
                hi = min(lo + 977, size)
                yield codes[lo:hi], edge_ids[lo:hi]

        total, final = dedup_first_occurrence(
            spill, "dedup", blocks(), _SMALL_RUNS
        )
        _, first = np.unique(codes, return_index=True)
        first.sort()
        assert total == first.size
        np.testing.assert_array_equal(
            np.asarray(spill_array(final)), codes[first]
        )


class TestChunkedEqualsSerial:
    """Chunked emission == serial table, forced through multi-run
    spills by shrinking the run-size floor."""

    @staticmethod
    def _materialise(stream):
        tails, heads = [], []
        for _lo, t, h in stream.chunks():
            tails.append(t)
            heads.append(h)
        empty = np.empty(0, dtype=np.int64)
        return (
            np.concatenate(tails) if tails else empty,
            np.concatenate(heads) if heads else empty,
        )

    def _assert_equivalent(self, generator, n, spill, chunk_edges=500):
        serial = generator.run(n)
        stream = generator.run_chunked(n, chunk_edges, spill=spill)
        tails, heads = self._materialise(stream)
        assert stream.num_edges == serial.num_edges
        np.testing.assert_array_equal(tails, serial.tails)
        np.testing.assert_array_equal(heads, serial.heads)

    def test_rmat_simplify(self, spill, monkeypatch):
        monkeypatch.setattr(rmat_mod, "_MIN_RUN_ROWS", 1)
        gen = RMat(seed=11, simplify=True, edge_factor=8)
        self._assert_equivalent(gen, 512, spill)

    def test_rmat_simplify_random_access_declined(self):
        assert RMat(seed=0, simplify=True).random_access(64) is False
        assert RMat(seed=0, simplify=False).random_access(64) is True

    def test_bipartite_configuration(self, spill, monkeypatch):
        monkeypatch.setattr(bipartite_mod, "_MIN_RUN_ROWS", 1)
        gen = BipartiteConfiguration(
            seed=13,
            tail_distribution=Zipf(0.7, 12),
            head_distribution=Zipf(0.9, 8),
            tail_offset=1,
        )
        self._assert_equivalent(gen, 900, spill)

    def test_bipartite_truncated_head_side(self, spill, monkeypatch):
        # head_nodes pinned high: head stubs outnumber tail stubs, so
        # the chunked path must reproduce the serial truncation branch.
        monkeypatch.setattr(bipartite_mod, "_MIN_RUN_ROWS", 1)
        gen = BipartiteConfiguration(
            seed=17,
            tail_distribution=Zipf(0.7, 6),
            head_distribution=Zipf(0.5, 10),
            head_offset=2,
            head_nodes=4_000,
        )
        self._assert_equivalent(gen, 300, spill)

    def test_erdos_renyi_m(self, spill, monkeypatch):
        monkeypatch.setattr(er_mod, "_MIN_RUN_ROWS", 1)
        gen = ErdosRenyiM(seed=19, edges_per_node=6)
        self._assert_equivalent(gen, 800, spill)
