"""Tests for the structural metric suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphstats import (
    approximate_diameter,
    attribute_assortativity,
    average_clustering,
    bfs_distances,
    clustering_distribution_per_degree,
    clustering_per_degree,
    connected_components,
    degree_assortativity,
    degree_ccdf,
    degree_histogram,
    largest_component_fraction,
    local_clustering,
    powerlaw_fit_quality,
    structural_summary,
    triangle_count,
)
from repro.io import from_networkx
from repro.tables import EdgeTable


class TestDegrees:
    def test_histogram(self, path_table):
        hist = degree_histogram(path_table)
        assert np.array_equal(hist, [0, 2, 2])

    def test_ccdf_monotone(self, small_rmat):
        _degrees, ccdf = degree_ccdf(small_rmat)
        assert (np.diff(ccdf) <= 0).all()
        assert ccdf[0] <= 1.0

    def test_ccdf_empty(self):
        table = EdgeTable("e", [], [], num_tail_nodes=0)
        degrees, ccdf = degree_ccdf(table)
        assert degrees.size == 0

    def test_powerlaw_quality_on_rmat(self, small_rmat):
        gamma, r2 = powerlaw_fit_quality(small_rmat)
        assert gamma > 1.0
        assert r2 > 0.7  # log-log CCDF roughly linear


class TestClustering:
    def test_triangle_full_clustering(self, triangle_table):
        coeffs = local_clustering(triangle_table)
        assert np.allclose(coeffs, 1.0)

    def test_path_zero_clustering(self, path_table):
        assert average_clustering(path_table) == 0.0

    def test_matches_networkx(self, small_lfr):
        table = small_lfr.table.subsample(np.arange(2000))
        ours = average_clustering(table)
        theirs = nx.average_clustering(
            nx.Graph(
                list(zip(table.tails.tolist(), table.heads.tolist()))
            )
        )
        # networkx averages only over present nodes; allow slack for
        # isolated nodes counted as 0 by us.
        assert abs(ours * table.num_nodes
                   - theirs * len(set(table.tails) | set(table.heads))) \
            < 0.05 * table.num_nodes

    def test_triangle_count(self, triangle_table):
        assert triangle_count(triangle_table) == 1

    def test_triangle_count_k4(self):
        iu, ju = np.triu_indices(4, k=1)
        table = EdgeTable("k4", iu, ju, num_tail_nodes=4)
        assert triangle_count(table) == 4

    def test_clustering_per_degree_shape(self, small_lfr):
        degrees, ccs = clustering_per_degree(small_lfr.table)
        assert degrees.size == ccs.size
        assert (ccs >= 0).all() and (ccs <= 1).all()

    def test_clustering_distribution_bins(self, triangle_table):
        dist = clustering_distribution_per_degree(triangle_table, bins=4)
        assert 2 in dist
        assert dist[2].sum() == 3  # all three nodes have degree 2
        assert dist[2][-1] == 3  # all in the top bin (cc = 1)


class TestComponents:
    def test_single_component(self, triangle_table):
        labels, count = connected_components(triangle_table)
        assert count == 1
        assert len(set(labels)) == 1

    def test_two_components(self):
        table = EdgeTable("e", [0, 2], [1, 3], num_tail_nodes=4)
        _labels, count = connected_components(table)
        assert count == 2

    def test_isolated_nodes_counted(self):
        table = EdgeTable("e", [0], [1], num_tail_nodes=5)
        _labels, count = connected_components(table)
        assert count == 4

    def test_largest_fraction(self):
        table = EdgeTable("e", [0, 1, 2], [1, 2, 3], num_tail_nodes=6)
        assert largest_component_fraction(table) == pytest.approx(4 / 6)

    def test_bfs_distances(self, path_table):
        dist = bfs_distances(path_table, 0)
        assert np.array_equal(dist, [0, 1, 2, 3])

    def test_bfs_unreachable(self):
        table = EdgeTable("e", [0], [1], num_tail_nodes=3)
        dist = bfs_distances(table, 0)
        assert dist[2] == -1

    def test_diameter_path(self, path_table):
        assert approximate_diameter(path_table) == 3

    def test_diameter_empty(self):
        table = EdgeTable("e", [], [], num_tail_nodes=0)
        assert approximate_diameter(table) == 0

    def test_small_world_diameter(self, small_lfr):
        diameter = approximate_diameter(small_lfr.table, samples=4)
        assert 2 <= diameter <= 20


class TestAssortativity:
    def test_star_disassortative(self):
        table = EdgeTable(
            "star", [0, 0, 0, 0], [1, 2, 3, 4], num_tail_nodes=5
        )
        assert degree_assortativity(table) < 0

    def test_matches_networkx(self, small_lfr):
        table = small_lfr.table
        ours = degree_assortativity(table)
        theirs = nx.degree_assortativity_coefficient(
            nx.Graph(list(zip(table.tails.tolist(),
                              table.heads.tolist())))
        )
        assert abs(ours - theirs) < 0.02

    def test_empty_graph_nan(self):
        table = EdgeTable("e", [], [], num_tail_nodes=2)
        assert np.isnan(degree_assortativity(table))

    def test_attribute_perfect_homophily(self):
        table = EdgeTable("e", [0, 2], [1, 3], num_tail_nodes=4)
        labels = np.array([0, 0, 1, 1])
        assert attribute_assortativity(table, labels) == pytest.approx(
            1.0
        )

    def test_attribute_perfect_heterophily(self):
        table = EdgeTable("e", [0, 1], [2, 3], num_tail_nodes=4)
        labels = np.array([0, 0, 1, 1])
        assert attribute_assortativity(table, labels) < 0

    def test_attribute_matches_networkx(self, small_lfr):
        table = small_lfr.table
        labels = small_lfr.communities % 5
        graph = nx.Graph(
            list(zip(table.tails.tolist(), table.heads.tolist()))
        )
        nx.set_node_attributes(
            graph, {i: int(labels[i]) for i in graph.nodes()}, "g"
        )
        theirs = nx.attribute_assortativity_coefficient(graph, "g")
        ours = attribute_assortativity(table, labels)
        assert abs(ours - theirs) < 0.02


class TestSummary:
    def test_keys(self, small_lfr):
        summary = structural_summary(
            small_lfr.table, clustering=False, diameter=False
        )
        assert summary["num_nodes"] == small_lfr.table.num_nodes
        assert summary["num_edges"] == small_lfr.table.num_edges
        assert "degree_assortativity" in summary
        assert "powerlaw_gamma" in summary
        assert "average_clustering" not in summary

    def test_full_summary(self, triangle_table):
        summary = structural_summary(triangle_table)
        assert summary["average_clustering"] == 1.0
        assert summary["approximate_diameter"] == 1
        assert summary["num_components"] == 1
