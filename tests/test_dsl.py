"""Tests for the schema DSL: tokenizer, parser, compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Cardinality
from repro.core.dsl import (
    DslCompileError,
    DslSyntaxError,
    load_schema,
    parse,
    tokenize,
)

MINIMAL = """
graph tiny {
  node Person {
    age: long = uniform_int(low=18, high=99)
  }
  edge knows: Person -- Person [*..*] {
    structure = erdos_renyi_m(edges_per_node=4)
  }
  scale { Person = 100 }
}
"""


class TestTokenizer:
    def test_counts_and_kinds(self):
        tokens = tokenize("node Person { }")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "NAME", "LBRACE", "RBRACE", "EOF"]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"a\nb\"c"')
        assert tokens[0].value == 'a\nb"c'

    def test_unterminated_string(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_numbers(self):
        tokens = tokenize("42 -7 3.5 1e3")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, -7, 3.5, 1000.0]

    def test_number_versus_range(self):
        tokens = tokenize("1..2")
        kinds = [t.kind for t in tokens]
        assert kinds == ["NUMBER", "RANGE", "NUMBER", "EOF"]

    def test_comments_ignored(self):
        tokens = tokenize("# comment\nnode // trailing\n")
        assert [t.kind for t in tokens] == ["KEYWORD", "EOF"]

    def test_booleans(self):
        tokens = tokenize("true false")
        assert tokens[0].value is True
        assert tokens[1].value is False

    def test_arrows(self):
        tokens = tokenize("-- ->")
        assert [t.kind for t in tokens[:-1]] == ["UNDIRECTED", "DIRECTED"]

    def test_position_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(DslSyntaxError, match="unexpected character"):
            tokenize("node $")


class TestParser:
    def test_minimal_graph(self):
        ast = parse(MINIMAL)
        assert ast.name == "tiny"
        assert len(ast.node_types) == 1
        assert len(ast.edge_types) == 1
        assert ast.scale.entries == {"Person": 100}

    def test_cardinalities(self):
        for text, expected in [
            ("1..1", "1..1"), ("1..*", "1..*"), ("*..*", "*..*")
        ]:
            source = MINIMAL.replace("[*..*]", f"[{text}]")
            ast = parse(source)
            assert ast.edge_types[0].cardinality == expected

    def test_directed_edge(self):
        source = MINIMAL.replace(
            "knows: Person -- Person", "knows: Person -> Person"
        )
        assert parse(source).edge_types[0].directed

    def test_depends_clause(self):
        source = """
        graph g {
          node T {
            a: string = categorical(values=["x"])
            b: string = conditional(table=@t) depends (a)
          }
          scale { T = 1 }
        }
        """
        ast = parse(source)
        assert ast.node_types[0].properties[1].depends_on == ["a"]

    def test_dotted_dependency(self):
        source = """
        graph g {
          node T { a: long = uniform_int(low=0, high=2) }
          edge e: T -- T [*..*] {
            structure = erdos_renyi_m(m=3)
            d: long = after_dependency(min_gap=1)
                depends (tail.a, head.a)
          }
          scale { T = 5 }
        }
        """
        ast = parse(source)
        prop = ast.edge_types[0].properties[0]
        assert prop.depends_on == ["tail.a", "head.a"]

    def test_correlate_clause(self):
        source = """
        graph g {
          node T { a: string = categorical(values=["x", "y"]) }
          edge e: T -- T [*..*] {
            structure = erdos_renyi_m(m=3)
            correlate a joint @j values ["x", "y"]
          }
          scale { T = 4 }
        }
        """
        ast = parse(source)
        corr = ast.edge_types[0].correlation
        assert corr.tail_property == "a"
        assert corr.values is not None

    def test_duplicate_structure_rejected(self):
        source = MINIMAL.replace(
            "structure = erdos_renyi_m(edges_per_node=4)",
            "structure = erdos_renyi_m(m=1)\n"
            "    structure = erdos_renyi_m(m=2)",
        )
        with pytest.raises(DslSyntaxError, match="duplicate structure"):
            parse(source)

    def test_missing_brace(self):
        with pytest.raises(DslSyntaxError):
            parse("graph g { node T {")

    def test_error_carries_position(self):
        try:
            parse("graph g {\n  wat\n}")
        except DslSyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected DslSyntaxError")

    def test_negative_scale_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse(MINIMAL.replace("Person = 100", "Person = -5"))


class TestCompiler:
    def test_end_to_end(self):
        schema, scale, name = load_schema(MINIMAL)
        assert name == "tiny"
        assert scale == {"Person": 100}
        assert schema.edge_type("knows").cardinality \
            is Cardinality.MANY_TO_MANY

    def test_unknown_property_generator(self):
        source = MINIMAL.replace("uniform_int", "not_a_generator")
        with pytest.raises(DslCompileError, match="unknown property"):
            load_schema(source)

    def test_unknown_structure_generator(self):
        source = MINIMAL.replace("erdos_renyi_m", "not_a_generator")
        with pytest.raises(DslCompileError, match="unknown structure"):
            load_schema(source)

    def test_unresolved_reference(self):
        source = MINIMAL.replace(
            "uniform_int(low=18, high=99)",
            "categorical(values=@ghost)",
        )
        with pytest.raises(DslCompileError, match="@ghost"):
            load_schema(source)

    def test_reference_resolution(self):
        source = MINIMAL.replace(
            "uniform_int(low=18, high=99)",
            "categorical(values=@options)",
        )
        schema, _, _ = load_schema(
            source, {"options": ["a", "b"]}
        )
        spec = schema.node_type("Person").property_named(
            "age"
        ).generator
        assert spec.params["values"] == ["a", "b"]

    def test_scale_entry_must_name_type(self):
        source = MINIMAL.replace("Person = 100", "Ghost = 100")
        with pytest.raises(DslCompileError, match="no declared type"):
            load_schema(source)

    def test_list_literals(self):
        source = """
        graph g {
          node T {
            c: string = categorical(values=["x", "y"],
                                    weights=[0.9, 0.1])
          }
          scale { T = 10 }
        }
        """
        schema, _, _ = load_schema(source)
        spec = schema.node_type("T").property_named("c").generator
        assert spec.params["weights"] == [0.9, 0.1]

    def test_generated_graph_from_dsl(self):
        """Full loop: DSL text -> schema -> generated graph."""
        from repro.core import GraphGenerator

        schema, scale, _ = load_schema(MINIMAL)
        graph = GraphGenerator(schema, scale, seed=4).generate()
        assert graph.num_nodes("Person") == 100
        ages = graph.node_property("Person", "age").values
        assert ages.min() >= 18
        assert ages.max() < 99


class TestBipartiteCorrelateDsl:
    SOURCE = """
    graph rec {
      node User {
        genre: string = categorical(values=["a", "b"],
                                    weights=[0.5, 0.5])
      }
      node Item {
        genre: string = categorical(values=["a", "b"],
                                    weights=[0.5, 0.5])
      }
      edge likes: User -> Item [*..*] {
        structure = bipartite_configuration(
            tail_distribution=@deg, head_distribution=@deg,
            tail_offset=1, head_offset=1, head_nodes=80)
        correlate genre with genre joint @joint
      }
      scale { User = 120 Item = 80 }
    }
    """

    def test_compile_and_generate(self):
        import numpy as np

        from repro.core import GraphGenerator
        from repro.stats import Zipf

        env = {
            "deg": Zipf(1.2, 6),
            "joint": np.array([[0.45, 0.05], [0.05, 0.45]]),
        }
        schema, scale, _ = load_schema(self.SOURCE, env)
        corr = schema.edge_type("likes").correlation
        assert corr.tail_property == "genre"
        assert corr.head_property == "genre"
        graph = GraphGenerator(schema, scale, seed=6).generate()
        match = graph.match_results["likes"]
        assert match is not None
        achieved = match.achieved / match.achieved.sum()
        assert np.trace(achieved) > 0.5
