"""Tests for the simulated shared-nothing execution (in-place claim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GeneratorSpec, GraphGenerator
from repro.core.parallel import generate_property_sharded, shard_ranges
from repro.datasets import social_network_schema


class TestShardRanges:
    def test_covers_everything(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_more_shards_than_items(self):
        ranges = shard_ranges(2, 4)
        sizes = [stop - start for start, stop in ranges]
        assert sum(sizes) == 2
        assert len(ranges) == 4

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestInPlaceGeneration:
    """The distributed-generation claim of Section 4.1: any worker can
    regenerate any id range and the result is bit-identical."""

    def test_sharded_equals_engine_output(self):
        schema = social_network_schema(num_countries=8)
        graph = GraphGenerator(
            schema, {"Person": 400}, seed=77
        ).generate()
        spec = schema.node_type("Person").property_named(
            "country"
        ).generator
        for num_shards in (1, 3, 7, 400):
            sharded = generate_property_sharded(
                spec, "Person.country", 400, 77, num_shards
            )
            assert np.array_equal(
                sharded.values,
                graph.node_property("Person", "country").values,
            )

    def test_sharded_with_dependencies(self):
        """Conditional properties shard correctly too, given the
        dependency columns."""
        schema = social_network_schema(num_countries=8)
        graph = GraphGenerator(
            schema, {"Person": 300}, seed=5
        ).generate()
        spec = schema.node_type("Person").property_named(
            "name"
        ).generator
        countries = graph.node_property("Person", "country").values
        sexes = graph.node_property("Person", "sex").values
        sharded = generate_property_sharded(
            spec, "Person.name", 300, 5, 6,
            dependency_columns=(countries, sexes),
        )
        assert np.array_equal(
            sharded.values,
            graph.node_property("Person", "name").values,
        )

    def test_single_row_regeneration(self):
        """The strongest form: regenerate ONE instance from its id."""
        schema = social_network_schema(num_countries=8)
        graph = GraphGenerator(
            schema, {"Person": 200}, seed=13
        ).generate()
        spec = schema.node_type("Person").property_named(
            "creationDate"
        ).generator
        full = graph.node_property("Person", "creationDate").values
        from repro.core.parallel import shard_ranges  # noqa: F401
        from repro.prng import RandomStream, derive_seed
        from repro.properties.registry import create_property_generator

        stream = RandomStream(
            derive_seed(13, "property:Person.creationDate")
        )
        generator = create_property_generator(spec.name, **spec.params)
        for instance in (0, 57, 199):
            value = generator.run_many(
                np.array([instance], dtype=np.int64), stream
            )[0]
            assert value == full[instance]

    def test_empty_table(self):
        spec = GeneratorSpec(
            "uniform_int", {"low": 0, "high": 3}
        )
        sharded = generate_property_sharded(
            spec, "T.x", 0, 1, 4
        )
        assert len(sharded) == 0

    def test_empty_table_keeps_generator_dtype(self):
        """count == 0 must stay bit-identical to single-shot output:
        the empty fallback takes the generator's dtype, not object."""
        from repro.core.tasks import property_shard_values

        for name, params, in (
            ("uniform_int", {"low": 0, "high": 3}),
            ("uniform_float", {"low": 0.0, "high": 1.0}),
        ):
            spec = GeneratorSpec(name, params)
            sharded = generate_property_sharded(spec, "T.x", 0, 1, 4)
            single = property_shard_values(spec, "property:T.x", 1, 0, 0)
            assert sharded.values.dtype == single.dtype
            assert np.array_equal(sharded.values, single)
