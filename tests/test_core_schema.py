"""Tests for the schema model."""

from __future__ import annotations

import pytest

from repro.core import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
    SchemaError,
)


def person():
    return NodeType(
        "Person",
        properties=[
            PropertyDef("country", "string"),
            PropertyDef("sex", "string"),
            PropertyDef(
                "name", "string", depends_on=("country", "sex")
            ),
        ],
    )


class TestCardinality:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1..1", Cardinality.ONE_TO_ONE),
            ("1..*", Cardinality.ONE_TO_MANY),
            ("*..*", Cardinality.MANY_TO_MANY),
            ("1->*", Cardinality.ONE_TO_MANY),
        ],
    )
    def test_parse(self, text, expected):
        assert Cardinality.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(SchemaError, match="cardinality"):
            Cardinality.parse("*..1")


class TestPropertyDef:
    def test_valid_dtypes(self):
        for dtype in ("string", "long", "double", "date", "bool"):
            PropertyDef("x", dtype)

    def test_invalid_dtype(self):
        with pytest.raises(SchemaError, match="dtype"):
            PropertyDef("x", "varchar")

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            PropertyDef("", "string")


class TestNodeType:
    def test_duplicate_property_rejected(self):
        with pytest.raises(SchemaError, match="duplicate property"):
            NodeType(
                "T",
                properties=[
                    PropertyDef("a", "string"),
                    PropertyDef("a", "long"),
                ],
            )

    def test_property_named(self):
        node = person()
        assert node.property_named("sex").name == "sex"
        with pytest.raises(SchemaError, match="no property"):
            node.property_named("age")

    def test_property_names_ordered(self):
        assert person().property_names() == ["country", "sex", "name"]


class TestGeneratorSpec:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            GeneratorSpec("")

    def test_params_default(self):
        assert GeneratorSpec("x").params == {}


class TestSchema:
    def test_missing_dependency_rejected(self):
        with pytest.raises(SchemaError, match="unknown property"):
            Schema(
                node_types=[
                    NodeType(
                        "T",
                        properties=[
                            PropertyDef(
                                "a", "string", depends_on=("ghost",)
                            )
                        ],
                    )
                ]
            )

    def test_dependency_cycle_rejected(self):
        with pytest.raises(SchemaError, match="cycle"):
            Schema(
                node_types=[
                    NodeType(
                        "T",
                        properties=[
                            PropertyDef("a", "string", depends_on=("b",)),
                            PropertyDef("b", "string", depends_on=("a",)),
                        ],
                    )
                ]
            )

    def test_self_dependency_rejected(self):
        with pytest.raises(SchemaError, match="cycle"):
            Schema(
                node_types=[
                    NodeType(
                        "T",
                        properties=[
                            PropertyDef("a", "string", depends_on=("a",))
                        ],
                    )
                ]
            )

    def test_edge_endpoint_must_exist(self):
        with pytest.raises(SchemaError, match="not declared"):
            Schema(
                node_types=[person()],
                edge_types=[
                    EdgeType("knows", "Person", "Ghost")
                ],
            )

    def test_duplicate_type_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate node type"):
            Schema(node_types=[person(), person()])

    def test_node_edge_name_collision(self):
        schema = Schema(node_types=[person()])
        schema.add_edge_type(EdgeType("knows", "Person", "Person"))
        with pytest.raises(SchemaError, match="already names"):
            schema.add_node_type(NodeType("knows"))

    def test_correlation_property_must_exist(self):
        with pytest.raises(SchemaError, match="no property"):
            Schema(
                node_types=[person()],
                edge_types=[
                    EdgeType(
                        "knows",
                        "Person",
                        "Person",
                        correlation=CorrelationSpec(
                            tail_property="ghost", joint=None
                        ),
                    )
                ],
            )

    def test_bipartite_correlation_needs_both_sides(self):
        message = NodeType(
            "Message", properties=[PropertyDef("topic", "string")]
        )
        with pytest.raises(SchemaError, match="head_property"):
            Schema(
                node_types=[person(), message],
                edge_types=[
                    EdgeType(
                        "likes",
                        "Person",
                        "Message",
                        correlation=CorrelationSpec(
                            tail_property="country", joint=None
                        ),
                    )
                ],
            )

    def test_lookups(self):
        schema = Schema(
            node_types=[person()],
            edge_types=[EdgeType("knows", "Person", "Person")],
        )
        assert schema.node_type("Person").name == "Person"
        assert schema.edge_type("knows").is_monopartite
        with pytest.raises(SchemaError):
            schema.node_type("Nope")
        with pytest.raises(SchemaError):
            schema.edge_type("Nope")

    def test_validate_chains(self):
        schema = Schema(node_types=[person()])
        assert schema.validate() is schema

    def test_repr(self):
        schema = Schema(node_types=[person()])
        assert "Person" in repr(schema)
