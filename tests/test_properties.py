"""Tests for the property generator (PG) library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.properties import (
    AfterDependencyGenerator,
    BoundGenerator,
    CategoricalGenerator,
    CompositeKeyGenerator,
    ConditionalGenerator,
    DateRangeGenerator,
    FormulaGenerator,
    LookupGenerator,
    NormalGenerator,
    SequenceGenerator,
    TemplateGenerator,
    TextGenerator,
    UniformFloatGenerator,
    UniformIntGenerator,
    UuidGenerator,
    WeightedDictGenerator,
    ZipfIntGenerator,
    available_property_generators,
    create_property_generator,
)

IDS = np.arange(2000, dtype=np.int64)


class TestRegistry:
    def test_builtins_registered(self):
        names = set(available_property_generators())
        assert {
            "categorical", "conditional", "weighted_dict", "date_range",
            "after_dependency", "formula", "lookup", "uuid",
            "composite_key", "normal", "sequence", "uniform_float",
            "uniform_int", "zipf_int", "template", "text",
        } <= names

    def test_create_by_name(self):
        generator = create_property_generator(
            "uniform_int", low=0, high=5
        )
        assert isinstance(generator, UniformIntGenerator)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            create_property_generator("nope")

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError, match="unexpected parameter"):
            CategoricalGenerator(bogus=1)


class TestCategorical:
    def test_values_and_weights(self, stream):
        generator = CategoricalGenerator(
            values=["a", "b"], weights=[0.9, 0.1]
        )
        out = generator.run_many(IDS, stream)
        freq_a = (out == "a").mean()
        assert 0.85 < freq_a < 0.95

    def test_uniform_default(self, stream):
        generator = CategoricalGenerator(values=[1, 2, 3, 4])
        out = generator.run_many(IDS, stream)
        assert set(np.unique(out)) == {1, 2, 3, 4}

    def test_int_dtype(self):
        generator = CategoricalGenerator(values=[1, 2])
        assert generator.output_dtype() == np.int64

    def test_misaligned_weights(self):
        with pytest.raises(ValueError):
            CategoricalGenerator(values=["a"], weights=[0.5, 0.5])

    def test_in_place_random_access(self, stream):
        """The PG contract: value i is independent of other calls."""
        generator = CategoricalGenerator(values=["a", "b", "c"])
        full = generator.run_many(IDS, stream)
        single = generator.run_many(
            np.array([137], dtype=np.int64), stream
        )
        assert single[0] == full[137]


class TestConditional:
    TABLE = {
        ("de", "f"): (["Anna"], None),
        ("de", "m"): (["Hans"], None),
        ("fr", "f"): (["Marie"], None),
        ("fr", "m"): (["Jean"], None),
    }

    def test_respects_conditions(self, stream):
        generator = ConditionalGenerator(table=self.TABLE)
        countries = np.array(["de", "fr", "de"], dtype=object)
        sexes = np.array(["f", "m", "m"], dtype=object)
        out = generator.run_many(
            np.arange(3, dtype=np.int64), stream, countries, sexes
        )
        assert list(out) == ["Anna", "Jean", "Hans"]

    def test_default_for_unknown_key(self, stream):
        generator = ConditionalGenerator(
            table=self.TABLE, default=(["X"], None)
        )
        out = generator.run_many(
            np.array([0], dtype=np.int64), stream,
            np.array(["??"], dtype=object),
            np.array(["f"], dtype=object),
        )
        assert out[0] == "X"

    def test_unknown_key_without_default_raises(self, stream):
        generator = ConditionalGenerator(table=self.TABLE)
        with pytest.raises(KeyError):
            generator.run_many(
                np.array([0], dtype=np.int64), stream,
                np.array(["??"], dtype=object),
                np.array(["f"], dtype=object),
            )

    def test_single_dependency_key_form(self, stream):
        generator = ConditionalGenerator(
            table={"x": (["only"], None)}
        )
        out = generator.run_many(
            np.array([0], dtype=np.int64), stream,
            np.array(["x"], dtype=object),
        )
        assert out[0] == "only"

    def test_requires_dependency(self, stream):
        generator = ConditionalGenerator(table=self.TABLE)
        with pytest.raises(ValueError, match="dependency"):
            generator.run_many(IDS[:1], stream)


class TestWeightedDict:
    def test_skew(self, stream):
        generator = WeightedDictGenerator(
            values=["top", "mid", "rare"], exponent=2.0
        )
        out = generator.run_many(IDS, stream)
        counts = {v: (out == v).mean() for v in ("top", "rare")}
        assert counts["top"] > 4 * counts["rare"]


class TestNumeric:
    def test_uniform_int_bounds(self, stream):
        out = UniformIntGenerator(low=5, high=8).run_many(IDS, stream)
        assert out.min() >= 5 and out.max() <= 7

    def test_uniform_float_bounds(self, stream):
        out = UniformFloatGenerator(low=-1.0, high=1.0).run_many(
            IDS, stream
        )
        assert out.min() >= -1.0 and out.max() < 1.0

    def test_normal_moments(self, stream):
        out = NormalGenerator(mean=10, std=2).run_many(IDS, stream)
        assert abs(out.mean() - 10) < 0.3

    def test_normal_clipping(self, stream):
        out = NormalGenerator(
            mean=0, std=1, clip_low=-1, clip_high=1
        ).run_many(IDS, stream)
        assert out.min() >= -1 and out.max() <= 1

    def test_zipf_heavy_head(self, stream):
        out = ZipfIntGenerator(exponent=1.5, k=50).run_many(IDS, stream)
        assert (out == 1).mean() > (out == 10).mean()
        assert out.min() >= 1 and out.max() <= 50

    def test_sequence(self, stream):
        out = SequenceGenerator(start=100, step=3).run_many(
            np.arange(4, dtype=np.int64), stream
        )
        assert np.array_equal(out, [100, 103, 106, 109])


class TestDates:
    def test_date_range_bounds(self, stream):
        out = DateRangeGenerator(start=1000, end=2000).run_many(
            IDS, stream
        )
        assert out.min() >= 1000 and out.max() < 2000

    def test_day_granularity(self, stream):
        out = DateRangeGenerator(
            start=0, end=10 * 86400, granularity="day"
        ).run_many(IDS, stream)
        assert (out % 86400 == 0).all()

    def test_after_dependency_strictly_greater(self, stream):
        base_a = np.array([100, 500, 900], dtype=np.int64)
        base_b = np.array([200, 400, 800], dtype=np.int64)
        out = AfterDependencyGenerator(
            min_gap=1, max_gap=50
        ).run_many(np.arange(3, dtype=np.int64), stream, base_a, base_b)
        assert (out > np.maximum(base_a, base_b)).all()
        assert (out <= np.maximum(base_a, base_b) + 50).all()

    def test_after_dependency_needs_deps(self, stream):
        with pytest.raises(ValueError):
            AfterDependencyGenerator().run_many(IDS[:1], stream)

    def test_bad_gaps(self):
        with pytest.raises(ValueError):
            AfterDependencyGenerator(min_gap=10, max_gap=5)


class TestTextAndIds:
    def test_text_word_counts(self, stream):
        generator = TextGenerator(
            vocabulary=["alpha", "beta"], min_words=2, max_words=4
        )
        out = generator.run_many(
            np.arange(50, dtype=np.int64), stream
        )
        for sentence in out:
            words = sentence.split()
            assert 2 <= len(words) <= 4
            assert set(words) <= {"alpha", "beta"}

    def test_template(self, stream):
        generator = TemplateGenerator(template="{0}@{id}")
        out = generator.run_many(
            np.array([7], dtype=np.int64), stream,
            np.array(["bob"], dtype=object),
        )
        assert out[0] == "bob@7"

    def test_uuid_unique_and_stable(self, stream):
        generator = UuidGenerator()
        out = generator.run_many(IDS[:500], stream)
        assert len(set(out)) == 500
        again = generator.run_many(IDS[:500], stream)
        assert list(out) == list(again)

    def test_uuid_time_ordered(self, stream):
        generator = UuidGenerator(time_ordered=True)
        out = generator.run_many(np.arange(10, dtype=np.int64), stream)
        assert list(out) == sorted(out)

    def test_composite_key(self, stream):
        out = CompositeKeyGenerator(prefix="user").run_many(
            np.array([3], dtype=np.int64), stream
        )
        assert out[0] == "user-3"


class TestDerived:
    def test_formula_scalar(self, stream):
        generator = FormulaGenerator(
            function=lambda a, b: a + b, dtype="int64"
        )
        out = generator.run_many(
            np.arange(3, dtype=np.int64), stream,
            np.array([1, 2, 3]), np.array([10, 20, 30]),
        )
        assert np.array_equal(out, [11, 22, 33])

    def test_formula_vectorized(self, stream):
        generator = FormulaGenerator(
            function=lambda a: a * 2, vectorized=True
        )
        out = generator.run_many(
            np.arange(3, dtype=np.int64), stream, np.array([1, 2, 3])
        )
        assert np.array_equal(out, [2, 4, 6])

    def test_lookup(self, stream):
        generator = LookupGenerator(mapping={"a": 1, "b": 2})
        out = generator.run_many(
            np.arange(2, dtype=np.int64), stream,
            np.array(["b", "a"], dtype=object),
        )
        assert list(out) == [2, 1]

    def test_lookup_default(self, stream):
        generator = LookupGenerator(mapping={"a": 1}, default=0)
        out = generator.run_many(
            np.array([0], dtype=np.int64), stream,
            np.array(["zz"], dtype=object),
        )
        assert out[0] == 0

    def test_lookup_missing_raises(self, stream):
        generator = LookupGenerator(mapping={"a": 1})
        with pytest.raises(KeyError):
            generator.run_many(
                np.array([0], dtype=np.int64), stream,
                np.array(["zz"], dtype=object),
            )


class TestBoundGenerator:
    def test_scalar_run_matches_vectorised(self, stream):
        generator = CategoricalGenerator(values=["a", "b", "c"])
        bound = BoundGenerator(generator, stream)
        full = generator.run_many(IDS[:100], stream)
        assert bound.run(42, stream(42)) == full[42]
