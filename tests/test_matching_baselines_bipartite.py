"""Tests for matcher baselines and the bipartite SBM-Part variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import (
    bipartite_edge_count_target,
    bipartite_sbm_part_match,
    greedy_label_match,
    ldg_degree_match,
    random_match,
)
from repro.stats import empirical_joint, homophily_joint
from repro.tables import EdgeTable, PropertyTable


class TestRandomMatch:
    def test_bijective_prefix(self, small_lfr):
        table = small_lfr.table
        pt = PropertyTable(
            "v", np.zeros(table.num_nodes, dtype=np.int64)
        )
        mapping = random_match(pt, table, seed=1)
        assert np.unique(mapping).size == table.num_nodes

    def test_deterministic(self, small_lfr):
        table = small_lfr.table
        pt = PropertyTable("v", np.zeros(table.num_nodes, dtype=np.int64))
        assert np.array_equal(
            random_match(pt, table, seed=5),
            random_match(pt, table, seed=5),
        )

    def test_surplus_rows_allowed(self, triangle_table):
        pt = PropertyTable("v", np.zeros(10, dtype=np.int64))
        mapping = random_match(pt, triangle_table, seed=1)
        assert mapping.size == 3
        assert mapping.max() < 10

    def test_too_small_pt_raises(self, triangle_table):
        pt = PropertyTable("v", np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            random_match(pt, triangle_table)


class TestLdgDegreeMatch:
    def test_marginal_respected(self, small_lfr):
        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([0, 1], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.6)
        result = ldg_degree_match(pt, joint, table)
        assert np.array_equal(
            np.bincount(result.assignment, minlength=2), sizes
        )

    def test_overfills_diagonal_versus_target(self, small_lfr):
        """LDG optimises locality, so on a community graph it packs the
        diagonal beyond a weakly-homophilous target — the failure mode
        that motivates the Frobenius objective."""
        from repro.core.matching import sbm_part_match

        table = small_lfr.table
        n = table.num_nodes
        sizes = np.array([n // 2, n - n // 2])
        pt = PropertyTable("v", np.repeat([0, 1], sizes))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.2)  # weak
        ldg = ldg_degree_match(pt, joint, table)
        sbm = sbm_part_match(pt, joint, table)
        target_diag = np.trace(ldg.target)
        assert np.trace(ldg.achieved) > np.trace(sbm.achieved)
        assert abs(np.trace(sbm.achieved) - target_diag) < abs(
            np.trace(ldg.achieved) - target_diag
        )


class TestGreedyLabelMatch:
    def test_fills_in_order(self, path_table):
        pt = PropertyTable("v", np.array([0, 0, 1, 1]))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.5)
        result = greedy_label_match(pt, joint, path_table)
        assert np.array_equal(result.assignment, [0, 0, 1, 1])

    def test_respects_custom_order(self, path_table):
        pt = PropertyTable("v", np.array([0, 0, 1, 1]))
        joint = homophily_joint(np.array([0.5, 0.5]), 0.5)
        result = greedy_label_match(
            pt, joint, path_table, order=np.array([3, 2, 1, 0])
        )
        assert np.array_equal(result.assignment, [1, 1, 0, 0])


class TestBipartiteTarget:
    def test_normalises(self):
        target = bipartite_edge_count_target(
            np.array([[2.0, 2.0], [0.0, 4.0]]), 80
        )
        assert target.sum() == pytest.approx(80.0)
        assert target[1, 1] == pytest.approx(40.0)

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            bipartite_edge_count_target(np.zeros((2, 2)), 10)
        with pytest.raises(ValueError):
            bipartite_edge_count_target(np.ones(3), 10)


class TestBipartiteSbmPart:
    def _bipartite_instance(self, seed=0):
        """Persons x Messages with a planted topic alignment."""
        rng = np.random.default_rng(seed)
        nt, nh = 200, 400
        tail_values = np.repeat([0, 1], [100, 100])
        head_values = np.repeat([0, 1], [200, 200])
        # Edges mostly connect matching values.
        tails, heads = [], []
        for _ in range(1600):
            value = rng.integers(0, 2)
            if rng.random() < 0.9:
                t = rng.integers(0, 100) + value * 100
                h = rng.integers(0, 200) + value * 200
            else:
                t = rng.integers(0, 200)
                h = rng.integers(0, 400)
            tails.append(t)
            heads.append(h)
        table = EdgeTable(
            "likes", tails, heads,
            num_tail_nodes=nt, num_head_nodes=nh, directed=True,
        )
        return table, tail_values, head_values

    def test_capacities_respected(self):
        table, tail_values, head_values = self._bipartite_instance()
        joint = np.array([[0.45, 0.05], [0.05, 0.45]])
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            table,
        )
        assert np.array_equal(
            np.bincount(result.tail_assignment), [100, 100]
        )
        assert np.array_equal(
            np.bincount(result.head_assignment), [200, 200]
        )

    def test_mappings_bijective(self):
        table, tail_values, head_values = self._bipartite_instance()
        joint = np.array([[0.45, 0.05], [0.05, 0.45]])
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            table,
        )
        assert np.unique(result.tail_mapping).size == 200
        assert np.unique(result.head_mapping).size == 400

    def test_diagonal_mass_reproduced(self):
        table, tail_values, head_values = self._bipartite_instance()
        joint = np.array([[0.45, 0.05], [0.05, 0.45]])
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            table,
        )
        achieved = result.achieved / result.achieved.sum()
        # Requested 90% diagonal; the greedy stream lands well above
        # the random baseline (50%) though short of the request.
        assert np.trace(achieved) > 0.6

    def test_achieved_counts_total(self):
        table, tail_values, head_values = self._bipartite_instance()
        joint = np.ones((2, 2))
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            table,
        )
        assert result.achieved.sum() == pytest.approx(table.num_edges)

    def test_shape_mismatch_raises(self):
        table, tail_values, head_values = self._bipartite_instance()
        with pytest.raises(ValueError, match="groups"):
            bipartite_sbm_part_match(
                PropertyTable("t", tail_values),
                PropertyTable("h", head_values),
                np.ones((3, 3)),
                table,
            )

    def test_frobenius_error(self):
        table, tail_values, head_values = self._bipartite_instance()
        joint = np.array([[0.45, 0.05], [0.05, 0.45]])
        result = bipartite_sbm_part_match(
            PropertyTable("t", tail_values),
            PropertyTable("h", head_values),
            joint,
            table,
        )
        assert result.frobenius_error >= 0.0
