"""Serving-mode tests: VirtualGraph + HTTP front end.

Three pillars (docs/serving.md):

* **serve-vs-generate equivalence** — every node property column,
  edge endpoint and edge property page served by a
  :class:`~repro.serve.VirtualGraph` equals the materialised output
  of the serial engine, on three zoo recipes covering all three edge
  modes (virtual, spooled-sequential, spooled-correlated) plus a
  planted benchmark recipe (appended edge block, forced attributes);
* **byte-identity** — a served CSV page is the exact line range of a
  ``generate`` export file;
* **planted worlds** — ``neighbors_of`` / ``edge_exists`` see every
  injected template edge and the classification reports the block;
* **HTTP contract** — pagination boundaries, JSON error bodies, and
  byte-identical responses under concurrent load.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.schema import (
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.io.csv_io import write_property_table
from repro.properties.base import PropertyGenerator
from repro.properties.registry import register_property_generator
from repro.scenarios import compile_scenario
from repro.scenarios.zoo import load_zoo
from repro.serve import VirtualGraph, create_server

SCALES = {
    "social_network": {"Person": 250},
    "web_graph_rmat": {"Page": 256},
    "c2_pattern_infra_telemetry": {"Host": 300},
}


def _reference_graph(compiled):
    """What a real ``run_scenario`` produces: generate, then overlay
    the plant plan (planted recipes), materialised to plain tables."""
    graph = compiled.generator().generate()
    plants = list(getattr(compiled, "plants", []) or [])
    if not plants:
        return graph
    from repro.planting import plan_plants, planted_graph

    plan = plan_plants(
        plants, graph.node_counts,
        {name: len(t) for name, t in graph.edge_tables.items()},
        compiled.seed,
    )
    return planted_graph(graph, plan).materialize()


@pytest.fixture(scope="module", params=sorted(SCALES))
def scenario_pair(request):
    """(compiled, generated graph, virtual graph) per zoo recipe."""
    compiled = compile_scenario(
        load_zoo(request.param), scale=SCALES[request.param]
    )
    graph = _reference_graph(compiled)
    virtual = VirtualGraph.from_scenario(compiled, chunk_rows=512)
    yield request.param, compiled, graph, virtual
    virtual.close()


class TestServeMatchesGenerate:
    def test_node_counts_and_properties(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        for type_name, count in graph.node_counts.items():
            assert virtual.node_count(type_name) == count
            ids = np.arange(count, dtype=np.int64)
            for prop in virtual.node_property_names(type_name):
                full = graph.node_property(type_name, prop).values
                served = virtual.node_properties_of(
                    type_name, prop, ids
                )
                assert served.dtype == full.dtype
                assert (served == full).all(), (name, type_name, prop)

    def test_scattered_node_subsets(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        for type_name, count in graph.node_counts.items():
            pos = np.array(
                [0, count - 1, count // 2, 3 % count, count // 2],
                dtype=np.int64,
            )
            for prop in virtual.node_property_names(type_name):
                full = graph.node_property(type_name, prop).values
                served = virtual.node_properties_of(
                    type_name, prop, pos
                )
                assert (served == full[pos]).all()

    def test_edges_and_edge_properties(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        for edge_name, table in graph.edge_tables.items():
            assert virtual.edge_count(edge_name) == len(table)
            tails, heads = virtual.edges_range(
                edge_name, 0, len(table)
            )
            assert (tails == table.tails).all(), (name, edge_name)
            assert (heads == table.heads).all(), (name, edge_name)
            # An unaligned mid-table page (crosses chunk boundaries).
            lo, hi = len(table) // 3 + 1, len(table) // 3 + 77
            hi = min(hi, len(table))
            t2, h2 = virtual.edges_range(edge_name, lo, hi)
            assert (t2 == table.tails[lo:hi]).all()
            assert (h2 == table.heads[lo:hi]).all()
            for prop in virtual.edge_property_names(edge_name):
                full = graph.edge_property(edge_name, prop).values
                served = virtual.edge_properties_range(
                    edge_name, prop, lo, hi
                )
                assert (served == full[lo:hi]).all(), (edge_name, prop)

    def test_neighbors_and_existence(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        for edge_name, table in graph.edge_tables.items():
            tails = np.asarray(table.tails)
            heads = np.asarray(table.heads)
            probe = int(tails[len(table) // 2])
            for direction in ("out", "in", "both"):
                got = np.sort(virtual.neighbors_of(
                    edge_name, probe, direction
                ))
                parts = []
                if direction in ("out", "both"):
                    parts.append(heads[tails == probe])
                if direction in ("in", "both"):
                    mask = heads == probe
                    if direction == "both":
                        mask &= tails != heads
                    parts.append(tails[mask])
                expected = np.sort(np.concatenate(parts))
                assert (got == expected).all(), (edge_name, direction)
            k = len(table) // 2
            assert virtual.edge_exists(
                edge_name, int(tails[k]), int(heads[k])
            )

    def test_range_validation(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        edge_name = next(iter(graph.edge_tables))
        count = virtual.edge_count(edge_name)
        with pytest.raises(IndexError):
            virtual.edges_range(edge_name, 0, count + 1)
        with pytest.raises(IndexError):
            virtual.edges_range(edge_name, -1, 0)
        with pytest.raises(KeyError):
            virtual.edge_count("nope")
        with pytest.raises(KeyError):
            virtual.node_count("Nope")
        type_name = next(iter(graph.node_counts))
        with pytest.raises(IndexError):
            virtual.node_properties_of(
                type_name,
                virtual.node_property_names(type_name)[0],
                np.array([graph.node_counts[type_name]]),
            )


class TestPlantedServe:
    """Planted recipes through the serving layer (docs/planting.md)."""

    @pytest.fixture()
    def planted(self, scenario_pair):
        name, compiled, graph, virtual = scenario_pair
        if virtual.plan is None:
            pytest.skip("recipe declares no plants")
        return compiled, graph, virtual

    def test_appended_block_matches_plan(self, planted):
        compiled, graph, virtual = planted
        plan = virtual.plan
        for edge_name, (tails, heads) in plan.appended.items():
            m = virtual.base_edge_count(edge_name)
            total = virtual.edge_count(edge_name)
            assert total == m + tails.size
            got_t, got_h = virtual.edges_range(edge_name, m, total)
            assert (got_t == tails).all()
            assert (got_h == heads).all()

    def test_injected_edges_visible(self, planted):
        compiled, graph, virtual = planted
        plan = virtual.plan
        edge_of = {p.name: p.edge for p in plan.plants}
        for inst in plan.instances:
            edge_name = edge_of[inst.plant]
            for record in inst.edges:
                if record["status"] != "planted":
                    continue
                u, v = record["world"]
                assert virtual.edge_exists(edge_name, u, v)
                assert v in virtual.neighbors_of(edge_name, u)

    def test_forced_attributes_served(self, planted):
        compiled, graph, virtual = planted
        plan = virtual.plan
        for plant in plan.plants:
            for inst in plan.instances_of(plant.name):
                ids = np.asarray(inst.node_map, dtype=np.int64)
                for prop, value in plant.attributes.items():
                    served = virtual.node_properties_of(
                        plant.node_type, prop, ids
                    )
                    assert (served == value).all(), (plant.name, prop)

    def test_classification_reports_planted_block(self, planted):
        compiled, graph, virtual = planted
        plan = virtual.plan
        report = virtual.classification()
        for edge_name, (tails, _) in plan.appended.items():
            entry = report["edges"][edge_name]
            assert entry["planted"] == {
                "start": int(plan.edge_counts[edge_name]),
                "count": int(tails.size),
            }
            assert entry["count"] == (
                plan.edge_counts[edge_name] + tails.size
            )

    def test_plan_identical_to_run_scenario_path(self, planted):
        compiled, graph, virtual = planted
        from repro.planting import plan_plants

        base_counts = {
            name: virtual.base_edge_count(name)
            for name in compiled.schema.edge_types
        }
        again = plan_plants(
            compiled.plants, virtual.node_counts, base_counts,
            compiled.seed,
        )
        assert again.to_dict() == virtual.plan.to_dict()


class TestCsvByteIdentity:
    """A served CSV page is a line range of the export file."""

    def test_property_pages_reassemble_export_file(self, scenario_pair,
                                                   tmp_path):
        name, compiled, graph, virtual = scenario_pair
        type_name = next(iter(graph.node_counts))
        prop = virtual.node_property_names(type_name)[0]
        path = tmp_path / f"{type_name}.{prop}.csv"
        write_property_table(
            graph.node_property(type_name, prop), path
        )
        exported = path.read_bytes().decode()
        count = graph.node_counts[type_name]
        pages = []
        step = 61  # deliberately unaligned with chunk_rows
        from repro.io.chunks import format_property_csv_chunk

        for lo in range(0, count, step):
            hi = min(lo + step, count)
            values = virtual.node_properties_of(
                type_name, prop, np.arange(lo, hi, dtype=np.int64)
            )
            pages.append(format_property_csv_chunk(lo, values))
        assert "id,value\r\n" + "".join(pages) == exported


# -- HTTP layer --------------------------------------------------------------


@pytest.fixture(scope="module")
def http_server():
    compiled = compile_scenario(
        load_zoo("social_network"), scale={"Person": 200}
    )
    graph = compiled.generator().generate()
    virtual = VirtualGraph.from_scenario(compiled, chunk_rows=512)
    virtual.warm()
    server = create_server(virtual, port=0)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", graph, virtual
    server.shutdown()
    server.server_close()
    virtual.close()


def _get(base, path):
    try:
        with urllib.request.urlopen(base + path) as response:
            return (
                response.status,
                response.read().decode(),
                response.headers.get("Content-Type"),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), exc.headers.get(
            "Content-Type"
        )


class TestHttpContract:
    def test_meta_route_reports_classification(self, http_server):
        base, graph, virtual = http_server
        status, body, ctype = _get(base, "/")
        assert status == 200 and ctype == "application/json"
        meta = json.loads(body)
        assert meta["classification"]["nodes"]["Person"]["count"] == 200
        modes = {
            name: entry["mode"]
            for name, entry in meta["classification"]["edges"].items()
        }
        assert modes["creates"] == "virtual"  # strict one_to_many
        assert modes["knows"] == "spooled"    # correlated matching

    def test_nodes_pagination_walk(self, http_server):
        base, graph, virtual = http_server
        rows = []
        offset = 0
        while True:
            status, body, _ = _get(
                base, f"/nodes/Person?offset={offset}&limit=64"
            )
            assert status == 200
            page = body.splitlines()
            rows.extend(page)
            if len(page) < 64:
                break
            offset += 64
        assert len(rows) == 200
        record = json.loads(rows[123])
        assert record["id"] == 123
        served = virtual.node_records(
            "Person", np.array([123], dtype=np.int64)
        )
        for key, column in served.items():
            assert record[key] == (
                column[0].item()
                if hasattr(column[0], "item") else column[0]
            )

    def test_pagination_boundaries(self, http_server):
        base, graph, virtual = http_server
        # Last partial page.
        status, body, _ = _get(base, "/nodes/Person?offset=192&limit=64")
        assert status == 200 and len(body.splitlines()) == 8
        # Offset exactly at the end, and far past it: empty 200 pages.
        for offset in (200, 100_000):
            status, body, _ = _get(
                base, f"/nodes/Person?offset={offset}"
            )
            assert (status, body) == (200, "")
        # Malformed parameters: 400 with a JSON error body.
        for query in ("offset=-1", "limit=0", "offset=x",
                      f"limit={10**9}"):
            status, body, ctype = _get(base, f"/nodes/Person?{query}")
            assert status == 400, query
            assert ctype == "application/json"
            payload = json.loads(body)
            assert payload["status"] == 400 and payload["error"]

    def test_unknown_names_are_404_json(self, http_server):
        base, graph, virtual = http_server
        for path in ("/nodes/Nope", "/properties/Person/nope",
                     "/edges/nope", "/neighbors/nope/0",
                     "/bogus/route"):
            status, body, ctype = _get(base, path)
            assert status == 404, path
            assert json.loads(body)["status"] == 404

    def test_node_id_routes(self, http_server):
        base, graph, virtual = http_server
        status, body, ctype = _get(base, "/nodes/Person/7")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body)["id"] == 7
        status, body, _ = _get(base, "/nodes/Person/200")
        assert status == 404
        assert "out of range" in json.loads(body)["error"]
        status, _, _ = _get(base, "/nodes/Person/seven")
        assert status == 400

    def test_property_csv_page_matches_export_lines(self, http_server):
        base, graph, virtual = http_server
        from repro.io.chunks import format_property_csv_chunk

        full = graph.node_property("Person", "country").values
        status, body, ctype = _get(
            base, "/properties/Person/country?offset=37&limit=19"
        )
        assert status == 200 and ctype == "text/csv"
        assert body == format_property_csv_chunk(37, full[37:56])

    def test_edge_csv_page_matches_generate(self, http_server):
        base, graph, virtual = http_server
        from repro.io.chunks import format_edge_csv_chunk

        table = graph.edge_tables["knows"]
        status, body, ctype = _get(
            base, "/edges/knows?offset=11&limit=23"
        )
        assert status == 200 and ctype == "text/csv"
        assert body == format_edge_csv_chunk(
            11, table.tails[11:34], table.heads[11:34]
        )

    def test_edge_jsonl_includes_properties(self, http_server):
        base, graph, virtual = http_server
        status, body, _ = _get(
            base, "/edges/creates?offset=0&limit=2&format=jsonl"
        )
        assert status == 200
        table = graph.edge_tables["creates"]
        first = json.loads(body.splitlines()[0])
        assert first["id"] == 0
        assert first["tail"] == int(table.tails[0])
        assert first["head"] == int(table.heads[0])

    def test_exists_endpoint(self, http_server):
        base, graph, virtual = http_server
        table = graph.edge_tables["knows"]
        src, dst = int(table.tails[3]), int(table.heads[3])
        status, body, _ = _get(
            base, f"/edges/knows/exists?src={src}&dst={dst}"
        )
        assert status == 200 and json.loads(body)["exists"] is True
        status, body, _ = _get(base, "/edges/knows/exists?src=0")
        assert status == 400

    def test_neighbors_endpoint_paginates(self, http_server):
        base, graph, virtual = http_server
        table = graph.edge_tables["knows"]
        probe = int(np.asarray(table.tails)[0])
        status, body, _ = _get(base, f"/neighbors/knows/{probe}")
        assert status == 200
        payload = json.loads(body)
        expected = virtual.neighbors_of("knows", probe, "both")
        assert payload["count"] == expected.size
        assert payload["neighbors"] == [int(v) for v in expected]
        # A limit smaller than the neighbourhood pages it.
        status, body, _ = _get(
            base, f"/neighbors/knows/{probe}?limit=2&offset=1"
        )
        paged = json.loads(body)
        assert paged["neighbors"] == [int(v) for v in expected[1:3]]
        status, _, _ = _get(
            base, f"/neighbors/knows/{probe}?direction=sideways"
        )
        assert status == 400

    def test_concurrent_requests_are_byte_identical(self, http_server):
        base, graph, virtual = http_server
        paths = [
            "/nodes/Person?offset=0&limit=100",
            "/properties/Person/country?limit=150",
            "/edges/knows?offset=0&limit=200",
            f"/neighbors/knows/{int(graph.edge_tables['knows'].tails[0])}",
        ]
        results = {path: [] for path in paths}
        errors = []

        def fetch(path):
            try:
                results[path].append(_get(base, path))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=fetch, args=(path,))
            for path in paths for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for path, got in results.items():
            assert len(got) == 6
            assert len(set(got)) == 1, path
            assert got[0][0] == 200


class TestServeRobustness:
    """Health endpoints, warmup degradation, graceful drain, timeouts
    (the serving half of docs/robustness.md)."""

    def _spin(self, server):
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    def test_healthz_and_readyz_track_warmup(self, http_server):
        _, _, virtual = http_server
        server = create_server(virtual, port=0, ready=False)
        base = self._spin(server)
        try:
            status, body, _ = _get(base, "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok", "ready": False}
            status, body, _ = _get(base, "/readyz")
            assert status == 503
            assert json.loads(body)["status"] == "warming"
            # Data routes degrade with 503 + Retry-After, not errors.
            try:
                urllib.request.urlopen(base + "/nodes/Person?limit=1")
                raise AssertionError("expected 503 while warming")
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
                assert exc.headers.get("Retry-After") == "1"
                assert "warming" in json.loads(exc.read().decode())["error"]
            server.ready.set()
            status, body, _ = _get(base, "/healthz")
            assert json.loads(body) == {"status": "ok", "ready": True}
            status, body, _ = _get(base, "/readyz")
            assert status == 200
            status, _, _ = _get(base, "/nodes/Person?limit=1")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()

    def test_request_timeout_is_plumbed_and_enforced(self, http_server):
        import socket

        _, _, virtual = http_server
        server = create_server(virtual, port=0, request_timeout=0.5)
        assert server.request_timeout == 0.5
        base = self._spin(server)
        host, port = base.rsplit("//", 1)[1].split(":")
        try:
            # A client that connects and never finishes its request
            # line must be hung up on, not hold a handler thread.
            conn = socket.create_connection((host, int(port)), timeout=10)
            conn.settimeout(10)
            conn.sendall(b"GET /healthz HTTP/1.1\r\n")  # no final CRLF
            got = conn.recv(4096)
            assert got == b""  # server closed the half-open request
            conn.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_graceful_drain_completes_inflight_requests(
        self, http_server
    ):
        """shutdown + server_close must finish in-flight requests
        (block_on_close) rather than dropping them mid-response."""
        _, _, virtual = http_server
        entered, release = threading.Event(), threading.Event()

        class SlowGraph:
            def __getattr__(self, name):
                return getattr(virtual, name)

            def node_records(self, *args, **kwargs):
                entered.set()
                release.wait(10)
                return virtual.node_records(*args, **kwargs)

        server = create_server(SlowGraph(), port=0)
        base = self._spin(server)
        responses = []
        request = threading.Thread(
            target=lambda: responses.append(
                _get(base, "/nodes/Person?limit=1")
            ),
        )
        request.start()
        assert entered.wait(10)
        server.shutdown()  # stop accepting; in-flight keeps running
        closer = threading.Thread(target=server.server_close)
        closer.start()
        closer.join(0.3)
        assert closer.is_alive()  # drain is blocked on our request
        release.set()
        closer.join(10)
        assert not closer.is_alive()
        request.join(10)
        status, body, _ = responses[0]
        assert status == 200
        assert json.loads(body.splitlines()[0])["id"] == 0

    def test_cli_sigint_exits_clean_without_leaking_spool(
        self, tmp_path
    ):
        """Regression: Ctrl-C on ``repro serve`` must drain, exit 0,
        and remove the owned spool/mmap tempdir."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["TMPDIR"] = str(tmp_path)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "social_network", "--scale", "Person=60", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "serving" in line and "http://" in line, line
            base = line.split("on ", 1)[1].strip().rstrip("/")
            deadline = time.monotonic() + 60
            while True:  # poll /readyz until warm
                try:
                    urllib.request.urlopen(base + "/readyz", timeout=5)
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 503 or time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
        leaked = [
            p.name for p in tmp_path.iterdir()
            if p.name.startswith(("repro-serve-", "repro-spool-"))
        ]
        assert leaked == []


class TestSequentialGenerators501:
    def test_sequential_property_maps_to_501(self, tmp_path):
        class SequentialPG(PropertyGenerator):
            name = "serve_test_sequential"
            access = "sequential"

            def parameter_names(self):
                return set()

            def run_many(self, ids, stream, *deps):
                return np.zeros(len(ids), dtype=np.int64)

        try:
            register_property_generator(SequentialPG)
        except ValueError:
            pass  # already registered by a previous parametrisation
        schema = Schema(node_types=[NodeType("T", properties=[
            PropertyDef(
                "x", "long", GeneratorSpec("serve_test_sequential", {})
            ),
        ])])
        virtual = VirtualGraph(schema, {"T": 8}, seed=1,
                               spool_dir=tmp_path / "spool")
        server = create_server(virtual, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        try:
            status, body, _ = _get(
                f"http://{host}:{port}", "/properties/T/x"
            )
            assert status == 501
            assert "sequential" in json.loads(body)["error"]
        finally:
            server.shutdown()
            server.server_close()
            virtual.close()
