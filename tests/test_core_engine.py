"""Integration tests for the generation engine (the Figure 2 pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    GraphGenerator,
    NodeType,
    PropertyDef,
    Schema,
    SchemaError,
)
from repro.datasets import social_network_schema
from repro.stats import homophily_joint


@pytest.fixture(scope="module")
def generated():
    schema = social_network_schema(num_countries=10)
    return GraphGenerator(schema, {"Person": 1500}, seed=42).generate()


class TestRunningExample:
    def test_counts(self, generated):
        assert generated.num_nodes("Person") == 1500
        assert generated.num_nodes("Message") == generated.num_edges(
            "creates"
        )

    def test_every_message_has_one_creator(self, generated):
        creates = generated.edges("creates")
        counts = np.bincount(
            creates.heads, minlength=generated.num_nodes("Message")
        )
        assert (counts == 1).all()

    def test_knows_date_constraint(self, generated):
        """The running example: knows.creationDate exceeds both
        endpoints' creationDates."""
        knows = generated.edges("knows")
        person_dates = generated.node_property(
            "Person", "creationDate"
        ).values
        knows_dates = generated.edge_property(
            "knows", "creationDate"
        ).values
        endpoint_max = np.maximum(
            person_dates[knows.tails], person_dates[knows.heads]
        )
        assert (knows_dates > endpoint_max).all()

    def test_creates_date_constraint(self, generated):
        creates = generated.edges("creates")
        person_dates = generated.node_property(
            "Person", "creationDate"
        ).values
        creates_dates = generated.edge_property(
            "creates", "creationDate"
        ).values
        assert (creates_dates > person_dates[creates.tails]).all()

    def test_name_correlates_with_country_and_sex(self, generated):
        """P(name | country, sex): names must come from the right
        conditional buckets."""
        from repro.datasets import conditional_name_table

        table = conditional_name_table()
        countries = generated.node_property("Person", "country").values
        sexes = generated.node_property("Person", "sex").values
        names = generated.node_property("Person", "name").values
        checked = 0
        for i in range(500):
            key = (countries[i], sexes[i])
            if key in table:
                assert names[i] in table[key][0]
                checked += 1
        assert checked > 300

    def test_country_follows_population_skew(self, generated):
        values, counts = generated.node_property(
            "Person", "country"
        ).categories()
        freq = dict(zip(values, counts / counts.sum()))
        # China and India dominate the embedded weights; Mexico is the
        # smallest of the 10 retained countries.
        assert freq.get("China", 0) > freq.get("Mexico", 1)

    def test_country_homophily_instilled(self, generated):
        from repro.graphstats import attribute_assortativity

        codes, _ = generated.node_property("Person", "country").codes()
        r = attribute_assortativity(generated.edges("knows"), codes)
        assert r > 0.15

    def test_match_diagnostics_exposed(self, generated):
        match = generated.match_results["knows"]
        assert match is not None
        assert match.frobenius_error >= 0
        assert generated.match_results["creates"] is None

    def test_observed_joint(self, generated):
        joint = generated.observed_joint("knows")
        assert np.isclose(joint.matrix.sum(), 1.0)
        # Homophily: diagonal above independence.
        marginal = joint.marginal()
        assert np.trace(joint.matrix) > (marginal ** 2).sum()

    def test_records_views(self, generated):
        records = list(generated.node_records("Person", limit=3))
        assert len(records) == 3
        assert set(records[0]) == {
            "id", "country", "sex", "name", "interest", "creationDate"
        }
        edge_records = list(generated.edge_records("knows", limit=2))
        assert set(edge_records[0]) == {
            "id", "tail", "head", "creationDate"
        }

    def test_summary_and_repr(self, generated):
        summary = generated.summary()
        assert summary["nodes"]["Person"] == 1500
        assert "Person=1500" in repr(generated)


class TestDeterminism:
    def test_same_seed_identical(self):
        schema = social_network_schema(num_countries=8)
        a = GraphGenerator(schema, {"Person": 300}, seed=9).generate()
        b = GraphGenerator(schema, {"Person": 300}, seed=9).generate()
        for key in a.node_properties:
            assert a.node_properties[key] == b.node_properties[key]
        for key in a.edge_tables:
            assert a.edge_tables[key] == b.edge_tables[key]
        for key in a.edge_properties:
            assert a.edge_properties[key] == b.edge_properties[key]

    def test_different_seed_differs(self):
        schema = social_network_schema(num_countries=8)
        a = GraphGenerator(schema, {"Person": 300}, seed=1).generate()
        b = GraphGenerator(schema, {"Person": 300}, seed=2).generate()
        assert a.edges("knows") != b.edges("knows")


class TestScaleAnchors:
    def test_scale_by_edge_count(self):
        schema = Schema(
            node_types=[
                NodeType(
                    "Person",
                    properties=[
                        PropertyDef(
                            "x",
                            "long",
                            GeneratorSpec(
                                "uniform_int", {"low": 0, "high": 5}
                            ),
                        )
                    ],
                )
            ],
            edge_types=[
                EdgeType(
                    "knows",
                    "Person",
                    "Person",
                    structure=GeneratorSpec(
                        "erdos_renyi_m", {"edges_per_node": 4}
                    ),
                )
            ],
        )
        graph = GraphGenerator(
            schema, {"knows": 2000}, seed=3
        ).generate()
        # get_num_nodes(2000) with 4 edges/node -> 500 persons.
        assert graph.num_nodes("Person") == 500
        assert graph.num_edges("knows") == 2000

    def test_unknown_scale_type_rejected(self):
        schema = social_network_schema(num_countries=8)
        with pytest.raises(SchemaError, match="unknown types"):
            GraphGenerator(schema, {"Ghost": 10})


class TestErrorPaths:
    def test_property_without_generator(self):
        schema = Schema(
            node_types=[
                NodeType("T", properties=[PropertyDef("a", "string")])
            ],
        )
        with pytest.raises(SchemaError, match="no property generator"):
            GraphGenerator(schema, {"T": 5}).generate()

    def test_edge_without_structure(self):
        schema = Schema(
            node_types=[NodeType("T")],
            edge_types=[EdgeType("e", "T", "T")],
        )
        with pytest.raises(SchemaError, match="no structure generator"):
            GraphGenerator(schema, {"T": 5}).generate()


class TestUncorrelatedAndBipartite:
    def test_uncorrelated_monopartite_random_matching(self):
        schema = Schema(
            node_types=[NodeType("T")],
            edge_types=[
                EdgeType(
                    "e",
                    "T",
                    "T",
                    structure=GeneratorSpec(
                        "erdos_renyi_m", {"edges_per_node": 3}
                    ),
                )
            ],
        )
        graph = GraphGenerator(schema, {"T": 200}, seed=1).generate()
        assert graph.num_edges("e") == 600
        assert graph.match_results["e"] is None

    def test_bipartite_correlated_edge(self):
        """Two node types, correlated bipartite matching."""
        from repro.stats import Zipf

        person = NodeType(
            "Person",
            properties=[
                PropertyDef(
                    "group",
                    "long",
                    GeneratorSpec(
                        "categorical",
                        {"values": [0, 1], "weights": [0.5, 0.5]},
                    ),
                )
            ],
        )
        item = NodeType(
            "Item",
            properties=[
                PropertyDef(
                    "kind",
                    "long",
                    GeneratorSpec(
                        "categorical",
                        {"values": [0, 1], "weights": [0.5, 0.5]},
                    ),
                )
            ],
        )
        likes = EdgeType(
            "likes",
            "Person",
            "Item",
            structure=GeneratorSpec(
                "bipartite_configuration",
                {
                    "tail_distribution": Zipf(1.2, 6),
                    "head_distribution": Zipf(1.2, 6),
                    "tail_offset": 1,
                    "head_offset": 1,
                    "head_nodes": 150,
                },
            ),
            correlation=CorrelationSpec(
                tail_property="group",
                head_property="kind",
                joint=np.array([[0.45, 0.05], [0.05, 0.45]]),
            ),
            directed=True,
        )
        schema = Schema(
            node_types=[person, item],
            edge_types=[likes],
        )
        graph = GraphGenerator(
            schema, {"Person": 150, "Item": 150}, seed=2
        ).generate()
        match = graph.match_results["likes"]
        assert match is not None
        # Observed diagonal should exceed independence (0.5).
        achieved = match.achieved / match.achieved.sum()
        assert np.trace(achieved) > 0.5

    def test_one_to_one_edge(self):
        owner = NodeType("Owner")
        account = NodeType("Account")
        schema = Schema(
            node_types=[owner, account],
            edge_types=[
                EdgeType(
                    "owns",
                    "Owner",
                    "Account",
                    cardinality=Cardinality.ONE_TO_ONE,
                    structure=GeneratorSpec("one_to_one", {}),
                    directed=True,
                )
            ],
        )
        graph = GraphGenerator(schema, {"Owner": 120}, seed=5).generate()
        owns = graph.edges("owns")
        assert graph.num_nodes("Account") == 120
        assert np.unique(owns.tails).size == 120
        assert np.unique(owns.heads).size == 120
