"""Tests for the report generator and the report/validate CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import generate_report, render_markdown_table


class TestRenderMarkdownTable:
    def test_basic(self):
        text = render_markdown_table(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        )
        lines = text.strip().split("\n")
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"

    def test_empty(self):
        assert "no rows" in render_markdown_table([])


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory):
        # Quick variant only (figure 3 + timing) to keep tests fast.
        return generate_report(
            seed=0, include_figure4=False, include_ablation=False
        )

    def test_contains_sections(self, report_text):
        assert "# Reproduction report" in report_text
        assert "## Figure 3" in report_text
        assert "## Timing (P1)" in report_text
        assert "## Figure 4" not in report_text

    def test_contains_profile(self, report_text):
        assert "Scale profile" in report_text

    def test_contains_all_configs(self, report_text):
        from repro.experiments import lfr_sizes, rmat_scales

        for size in lfr_sizes():
            assert f"| {size} |" in report_text
        assert "RMAT(" in report_text
        assert f"rmat-{rmat_scales()[0]}" in report_text

    def test_paper_comparison_row(self, report_text):
        assert "paper reported" in report_text
        assert "1100" in report_text


class TestCliReport:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        code = main(
            ["report", "--out", str(out), "--quick"]
        )
        assert code == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()
        assert "wrote" in capsys.readouterr().out


class TestCliValidate:
    def test_passes_on_default(self, capsys):
        code = main(["validate", "--persons", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
        assert "FAIL" not in out
