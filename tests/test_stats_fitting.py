"""Tests for distribution fitting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.stats import (
    PowerLaw,
    empirical_degree_distribution,
    fit_power_law,
    fit_power_law_exponent,
    rescale_degree_sequence,
)


class TestFitPowerLawExponent:
    def test_recovers_known_exponent(self):
        stream = RandomStream(1, "fit")
        dist = PowerLaw(2.5, 2, 500)
        sample = dist.sample_values(stream, np.arange(200_000))
        gamma = fit_power_law_exponent(sample, xmin=2)
        assert abs(gamma - 2.5) < 0.15

    def test_filters_below_xmin(self):
        values = [1] * 100 + [10, 20, 30]
        gamma_all = fit_power_law_exponent(values, xmin=1)
        gamma_tail = fit_power_law_exponent(values, xmin=10)
        assert gamma_all != gamma_tail

    def test_empty_after_filter_raises(self):
        with pytest.raises(ValueError):
            fit_power_law_exponent([1, 2, 3], xmin=10)

    def test_all_equal_sample_finite(self):
        # With the xmin - 1/2 correction the estimator stays finite even
        # for a point-mass sample (it returns a steep exponent).
        gamma = fit_power_law_exponent([1, 1, 1], xmin=1)
        assert np.isfinite(gamma)
        assert gamma > 2.0


class TestEmpiricalDegreeDistribution:
    def test_counts(self):
        dist = empirical_degree_distribution([0, 1, 1, 3])
        assert np.allclose(dist.pmf(), [0.25, 0.5, 0.0, 0.25])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            empirical_degree_distribution([1, -2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_degree_distribution([])


class TestRescaleDegreeSequence:
    def test_length_and_parity(self, stream):
        resampled = rescale_degree_sequence([2, 3, 3, 4], 101, stream)
        assert resampled.size == 101
        assert int(resampled.sum()) % 2 == 0

    def test_preserves_distribution_shape(self, stream):
        original = np.array([1] * 500 + [10] * 500)
        resampled = rescale_degree_sequence(original, 50_000, stream)
        ones = (resampled == 1).mean()
        tens = (resampled == 10).mean()
        assert abs(ones - 0.5) < 0.02
        assert abs(tens - 0.5) < 0.02

    def test_rejects_zero_target(self, stream):
        with pytest.raises(ValueError):
            rescale_degree_sequence([1, 2], 0, stream)


class TestFitPowerLaw:
    def test_returns_distribution(self):
        stream = RandomStream(2, "fit2")
        sample = PowerLaw(2.0, 1, 100).sample_values(
            stream, np.arange(50_000)
        )
        fitted = fit_power_law(sample, xmin=1)
        assert isinstance(fitted, PowerLaw)
        assert fitted.xmax == int(sample.max())
        assert 1.5 < fitted.gamma < 2.5
