#!/usr/bin/env python
"""Chaos smoke: kill a worker mid-run, resume, byte-diff the export.

The CI ``chaos-smoke`` job's gate for docs/robustness.md: a zoo recipe
is run three ways on the process backend —

1. uninterrupted (the reference export and the throughput baseline),
2. with an injected ``shard:N:kill`` SIGKILL and no retries: the run
   must *fail*, leaving a resumable checkpoint in its spool, after
   which ``resume`` must complete and export byte-identical files,
3. with the same SIGKILL but ``retries=2``: one run, no manual
   intervention, byte-identical files.

Exits 1 on any surviving difference or on a chaos run that fails to
fail / recover.  Writes a ``repro-bench/1`` JSON row recording clean
throughput and the crash+resume wall-clock overhead so
``benchmarks/check_perf_regression.py`` can gate it against the
committed ``BENCH_scale.json`` baseline.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py --out chaos_fresh.json

Stdlib + numpy only, like every other CI tool here.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def _tree_bytes(root):
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _check(label, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {label}" + (f" ({detail})" if detail else ""))
    return ok


def _git_sha():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - detached CI checkouts
        return "unknown"


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", default="social_network")
    parser.add_argument("--scale", action="append", default=["Person=2000"],
                        metavar="TYPE=COUNT")
    parser.add_argument("--shard-rows", type=int, default=256)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-shard", type=int, default=3,
                        help="shard occurrence the injected SIGKILL hits")
    parser.add_argument("--out", default=None,
                        help="write a repro-bench/1 JSON here")
    args = parser.parse_args(argv)

    import numpy

    from repro.core import ShardedError, ShardedExecutor
    from repro.io import make_sink
    from repro.scenarios import compile_scenario
    from repro.scenarios.zoo import load_zoo

    scale = {}
    for item in args.scale:
        key, _, value = item.partition("=")
        scale[key] = int(value)
    compiled = compile_scenario(load_zoo(args.scenario), scale=scale)
    print(f"chaos-smoke: scenario {args.scenario!r} "
          f"scale={compiled.scale} seed={compiled.seed} "
          f"shard_rows={args.shard_rows} workers={args.workers}")

    work = Path(tempfile.mkdtemp(prefix="repro-chaos-smoke-"))
    kill_spec = f"shard:{args.kill_shard}:kill"
    failures = 0

    def run(out, spool, **kwargs):
        executor = ShardedExecutor(
            compiled.schema, compiled.scale, seed=compiled.seed,
            shard_rows=args.shard_rows, workers=args.workers,
            backend="process", spool_dir=spool, **kwargs,
        )
        start = time.perf_counter()
        result = executor.run(sink=make_sink("csv", out))
        return result, time.perf_counter() - start

    try:
        # 1. The reference: one uninterrupted run.
        result, clean_wall = run(work / "clean", work / "clean-spool")
        edges = sum(
            len(table) for table in result.edge_tables.values()
        )
        rows = sum(result.node_counts.values()) + edges
        result.cleanup()
        expected = _tree_bytes(work / "clean")
        print(f"  clean run: {rows} rows in {clean_wall:.2f}s")

        # 2. Chaos leg: SIGKILL a worker, no retries -> must fail ...
        crash_wall = time.perf_counter()
        try:
            run(work / "chaos", work / "chaos-spool", faults=kill_spec)
        except ShardedError as exc:
            crash_wall = time.perf_counter() - crash_wall
            failures += not _check(
                "worker SIGKILL aborts the run", True,
                f"shard {exc.shard}")
        else:  # pragma: no cover - the bug this smoke exists to catch
            crash_wall = time.perf_counter() - crash_wall
            failures += not _check(
                "worker SIGKILL aborts the run", False, "run survived?")
        failures += not _check(
            "crashed spool keeps its checkpoint",
            (work / "chaos-spool" / "checkpoint.json").exists())

        # ... then resume from the checkpoint and byte-diff.
        result, resume_wall = run(
            work / "chaos", work / "chaos-spool", resume=True)
        result.cleanup()
        failures += not _check(
            "resumed export is byte-identical",
            _tree_bytes(work / "chaos") == expected,
            f"resume {resume_wall:.2f}s")

        # 3. Retry leg: same SIGKILL, retries=2, single run.
        result, retry_wall = run(
            work / "retry", work / "retry-spool",
            retries=2, faults=kill_spec)
        result.cleanup()
        failures += not _check(
            "retries=2 recovers the SIGKILL in-run",
            _tree_bytes(work / "retry") == expected,
            f"{retry_wall:.2f}s")

        overhead = (crash_wall + resume_wall) / max(clean_wall, 1e-9)
        print(f"  crash+resume overhead: {overhead:.2f}x of clean "
              f"({crash_wall:.2f}s + {resume_wall:.2f}s "
              f"vs {clean_wall:.2f}s)")
        if args.out:
            payload = {
                "schema": "repro-bench/1",
                "git_sha": _git_sha(),
                "machine": platform.machine(),
                "numpy": numpy.__version__,
                "profile": "chaos",
                "python": platform.python_version(),
                "rows": [{
                    "suite": "chaos",
                    "name": f"chaos_resume_{args.scenario}",
                    "edges": edges,
                    "wall_s": round(clean_wall, 3),
                    "rows_per_sec": round(rows / clean_wall, 1),
                    "resume_overhead_x": round(overhead, 2),
                    "retry_wall_s": round(retry_wall, 3),
                    "workers": args.workers,
                    "shard_rows": args.shard_rows,
                }],
            }
            Path(args.out).write_text(json.dumps(
                payload, indent=1, sort_keys=True) + "\n")
            print(f"  wrote {args.out}")
    finally:
        shutil.rmtree(work, ignore_errors=True)

    if failures:
        print(f"chaos-smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print("chaos-smoke: crash, resume and retry all byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
