#!/usr/bin/env python
"""Planted-recipe recall smoke: generate every planted zoo scenario at
smoke scale, run the baseline subgraph matcher over each plant, and
fail unless every injected instance is recovered exactly.

This is the CI ``plant-smoke`` job's correctness half (the throughput
half is ``benchmarks/bench_plant_matching.py``): at zero noise the
matcher must achieve **recall 1.0 with exact node-map membership** on
every planted zoo recipe — the acceptance bar docs/planting.md pins.
A matcher or injection regression that loses a single instance exits 1
here.

Also re-plans every plant a second time and asserts the ground-truth
document is bit-identical — the plan is a pure function of
``(plants, node counts, base edge counts, seed)``, which is what makes
planted exports reproducible across workers, backends and shard sizes.

Usage::

    PYTHONPATH=src python tools/plant_smoke.py
    PYTHONPATH=src python tools/plant_smoke.py \
        --scenario fraud_ring_social --scale Person=400

Stdlib + numpy only, like every other CI tool here.
"""

from __future__ import annotations

import argparse
import sys

#: Planted zoo recipes and their smoke scales.
PLANTED_RECIPES = {
    "fraud_ring_social": {"Person": 400},
    "c2_pattern_infra_telemetry": {"Host": 300},
}


def check_recipe(name, scale):
    """Run one planted recipe; return the number of failures."""
    from repro.graphstats import verify_plants
    from repro.planting import plan_plants
    from repro.scenarios import compile_scenario, run_scenario
    from repro.scenarios.zoo import load_zoo

    compiled = compile_scenario(load_zoo(name), scale=scale)
    print(f"plant-smoke: {name!r} scale={compiled.scale} "
          f"seed={compiled.seed}")
    if not compiled.plants:
        print(f"  [MISMATCH] {name!r} declares no plants")
        return 1

    graph, _, _ = run_scenario(compiled, workers=1, validate=False)
    failures = 0
    try:
        plan = graph.plan
        world = graph.materialize()

        # Determinism: re-planning from the same inputs must produce
        # the identical ground-truth document.
        replan = plan_plants(
            list(compiled.plants), world.node_counts,
            dict(plan.edge_counts), compiled.seed,
        )
        same = replan.to_dict() == plan.to_dict()
        print(f"  [{'ok' if same else 'MISMATCH'}] "
              "ground truth is a pure function of the plan inputs")
        failures += 0 if same else 1

        report = verify_plants(world, plan)
        for plant_name, row in sorted(report["plants"].items()):
            ok = row["recovered"] == row["instances"]
            status = "ok" if ok else "MISMATCH"
            print(f"  [{status}] {plant_name}: "
                  f"{row['recovered']}/{row['instances']} recovered, "
                  f"{row['matches']} matches, "
                  f"{row['rows_per_sec']:.0f} rows/s")
            failures += 0 if ok else 1
        if report["recall"] != 1.0:
            print(f"  [MISMATCH] overall recall "
                  f"{report['recall']:.3f} != 1.0")
            failures += 1
    finally:
        if hasattr(graph, "cleanup"):
            graph.cleanup()
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--scenario", action="append", default=[],
        help="planted zoo recipe to check (default: all of "
             + ", ".join(sorted(PLANTED_RECIPES)) + ")",
    )
    parser.add_argument(
        "--scale", action="append", default=[], metavar="TYPE=COUNT",
        help="scale override applied to every checked recipe",
    )
    args = parser.parse_args(argv)

    override = {}
    for item in args.scale:
        key, _, value = item.partition("=")
        override[key] = int(value)

    names = args.scenario or sorted(PLANTED_RECIPES)
    failures = 0
    for name in names:
        scale = override or PLANTED_RECIPES.get(name)
        failures += check_recipe(name, scale)

    if failures:
        print(f"plant-smoke: {failures} failure(s)", file=sys.stderr)
        return 1
    print("plant-smoke: every planted instance recovered exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
