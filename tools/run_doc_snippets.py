#!/usr/bin/env python
"""Execute documentation shell snippets marked runnable (CI docs job).

A snippet is runnable when the fenced ``bash`` block is immediately
preceded by an HTML comment marker::

    <!-- runnable -->
    ```bash
    python -m repro.cli scenario list
    ```

Each runnable snippet runs in its own ``bash -e`` process from the
repository root with ``PYTHONPATH`` including ``src``, so snippets are
copy-pasteable exactly as documented.  Any nonzero exit fails the run.

Usage::

    python tools/run_doc_snippets.py README.md docs/scenarios.md
"""

from __future__ import annotations

import os
import subprocess
import sys

MARKER = "<!-- runnable -->"


def extract_snippets(path):
    """``(line_number, script)`` pairs of runnable bash blocks."""
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    snippets = []
    i = 0
    while i < len(lines):
        if lines[i].strip() == MARKER:
            j = i + 1
            while j < len(lines) and not lines[j].strip():
                j += 1
            if j < len(lines) and lines[j].strip().startswith(
                "```bash"
            ):
                body = []
                j += 1
                while j < len(lines) and lines[j].strip() != "```":
                    body.append(lines[j])
                    j += 1
                snippets.append((i + 1, "\n".join(body)))
                i = j
        i += 1
    return snippets


def main(argv):
    if not argv:
        print("usage: run_doc_snippets.py FILE.md [FILE.md ...]")
        return 2
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    total = failed = 0
    for path in argv:
        for line, script in extract_snippets(path):
            total += 1
            print(f"--- {path}:{line}")
            print("\n".join(
                f"    $ {l}" for l in script.splitlines() if l.strip()
            ))
            result = subprocess.run(
                ["bash", "-e", "-c", script],
                cwd=repo_root, env=env,
            )
            if result.returncode != 0:
                failed += 1
                print(f"    FAILED (exit {result.returncode})")
    print(f"ran {total} snippets, {failed} failed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
