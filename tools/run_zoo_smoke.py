#!/usr/bin/env python
"""Run every zoo scenario at smoke scale and collect graded reports.

The CI docs job runs this and uploads the output directory as the
``zoo-validation-reports`` artifact, so every PR carries the graded
pass/warn/fail report of each built-in scenario — scenario fidelity
stays comparable across PRs (the GRASP-style grading rationale).

Recipe scales are clamped to ``--max-scale`` (default 500) by
:func:`clamp_scale`: the first anchor is clamped directly and every
later anchor is scaled by the same ratio, so structurally coupled
counts (a bipartite head sized against its tail, say) keep their
declared proportions instead of dwarfing the clamped primary.
Power-of-two anchors stay powers of two (R-MAT needs ``n = 2^k``).
Exits 1 if any scenario grades F.

Usage::

    PYTHONPATH=src python tools/run_zoo_smoke.py --out zoo-reports/
"""

from __future__ import annotations

import argparse
import os
import sys


def _is_pow2(value):
    return value > 0 and value & (value - 1) == 0


def clamp_scale(scale, max_scale):
    """Clamp a recipe's scale anchors to a smoke budget.

    The *first* anchor is the primary: it is clamped to ``max_scale``.
    Every later anchor is scaled by the same ``clamped / declared``
    ratio (with a floor of 1), so multi-anchor recipes shrink
    uniformly — previously only the primary was clamped and, e.g., a
    ``{User: 4000, Item: 2000}`` recipe smoked with 500 users but the
    full 2000 items.  Anchors that are declared as powers of two are
    kept powers of two (rounded down) because R-MAT-style generators
    require ``n = 2^k``.
    """
    scale = dict(scale)
    if not scale:
        return scale
    items = list(scale.items())
    primary, declared = items[0]
    if declared <= max_scale:
        return scale
    clamped = int(max_scale)
    if _is_pow2(declared):
        clamped = 1 << (clamped.bit_length() - 1)
    ratio = clamped / declared
    out = {primary: clamped}
    for key, value in items[1:]:
        scaled = max(1, int(round(value * ratio)))
        if _is_pow2(value):
            scaled = 1 << (scaled.bit_length() - 1)
        out[key] = scaled
    return out


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="zoo-reports")
    parser.add_argument("--max-scale", type=int, default=500)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.scenarios import (
        compile_scenario,
        run_scenario,
        zoo_specs,
    )

    os.makedirs(args.out, exist_ok=True)
    worst = "A"
    order = {"A": 0, "B": 1, "C": 2, "F": 3}
    failed = []
    for name, spec in zoo_specs():
        override = clamp_scale(spec.scale, args.max_scale)
        compiled = compile_scenario(spec, scale=override)
        _, report, _ = run_scenario(
            compiled, workers=args.workers, validate=True
        )
        json_path = os.path.join(args.out, f"{name}.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        text_path = os.path.join(args.out, f"{name}.txt")
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(str(report) + "\n")
        grade = report.overall_grade
        if order[grade] > order[worst]:
            worst = grade
        if not report.passed:
            failed.append(name)
        print(f"{name:24s} grade {grade}  -> {json_path}")
    print(f"worst grade: {worst}")
    if failed:
        print(f"FAILED scenarios: {', '.join(failed)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
