#!/usr/bin/env python
"""Run every zoo scenario at smoke scale and collect graded reports.

The CI docs job runs this and uploads the output directory as the
``zoo-validation-reports`` artifact, so every PR carries the graded
pass/warn/fail report of each built-in scenario — scenario fidelity
stays comparable across PRs (the GRASP-style grading rationale).

Each recipe's *first* scale anchor is clamped to ``--max-scale``
(default 500); remaining anchors are honoured as declared (they may be
structurally tied, e.g. a bipartite head count matched to the
structure's ``head_nodes``).  Exits 1 if any scenario grades F.

Usage::

    PYTHONPATH=src python tools/run_zoo_smoke.py --out zoo-reports/
"""

from __future__ import annotations

import argparse
import os
import sys


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="zoo-reports")
    parser.add_argument("--max-scale", type=int, default=500)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.scenarios import (
        compile_scenario,
        run_scenario,
        zoo_specs,
    )

    os.makedirs(args.out, exist_ok=True)
    worst = "A"
    order = {"A": 0, "B": 1, "C": 2, "F": 3}
    failed = []
    for name, spec in zoo_specs():
        override = {}
        if spec.scale:
            primary = next(iter(spec.scale))
            value = spec.scale[primary]
            clamped = min(value, args.max_scale)
            if value & (value - 1) == 0 and clamped != value:
                # Keep power-of-two anchors power-of-two (R-MAT needs
                # n to be 2^k).
                clamped = 1 << (clamped.bit_length() - 1)
            override[primary] = clamped
        compiled = compile_scenario(spec, scale=override)
        _, report, _ = run_scenario(
            compiled, workers=args.workers, validate=True
        )
        json_path = os.path.join(args.out, f"{name}.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        text_path = os.path.join(args.out, f"{name}.txt")
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(str(report) + "\n")
        grade = report.overall_grade
        if order[grade] > order[worst]:
            worst = grade
        if not report.passed:
            failed.append(name)
        print(f"{name:24s} grade {grade}  -> {json_path}")
    print(f"worst grade: {worst}")
    if failed:
        print(f"FAILED scenarios: {', '.join(failed)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
