#!/usr/bin/env python
"""Serve-vs-generate byte-identity smoke: boot a live server over a
zoo recipe, page every node-property and edge CSV route, and diff the
reassembled bytes against a real ``export_graph_csv`` run of the same
compiled scenario.

This is the CI ``serve-smoke`` job's correctness half (the throughput
half is ``benchmarks/bench_serve.py``): a server that drifts from the
export format by a single byte — header, CRLF, value encoding, page
stitching — exits 1 here.  Also probes the non-CSV contracts: the
meta route's access classification, neighbourhood queries against the
materialised edge tables, edge existence, and the empty-page rule for
past-the-end offsets.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py --scenario social_network

Stdlib + numpy only, like every other CI tool here.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path


def _get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return response.read()


def _boot_cli(scenario, scale_args):
    """Boot the server as the real CLI (``repro serve --port 0``).

    Returns ``(base_url, stop)`` where ``stop()`` SIGTERMs the process
    and asserts the graceful-drain contract: exit code 0 and no leaked
    ``repro-serve-*`` spool.  The chosen port is read back from the
    first stdout line — the same line operators script against.
    """
    import os
    import signal
    import subprocess
    import time
    import urllib.error

    tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-tmp-")
    env = dict(os.environ)
    env["TMPDIR"] = tmp
    cmd = [sys.executable, "-m", "repro.cli", "serve", scenario,
           "--port", "0"]
    for item in scale_args:
        cmd += ["--scale", item]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    line = proc.stdout.readline()
    if "http://" not in line:
        proc.kill()
        raise SystemExit(f"serve did not announce an address: {line!r}")
    base = line.split("on ", 1)[1].strip().rstrip("/")
    deadline = time.monotonic() + 120
    while True:  # data routes 503 until warm; poll readiness
        try:
            _get(base, "/readyz")
            break
        except urllib.error.HTTPError as exc:
            if exc.code != 503 or time.monotonic() > deadline:
                proc.kill()
                raise
            time.sleep(0.1)

    def stop():
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        leaked = [name for name in os.listdir(tmp)
                  if name.startswith(("repro-serve-", "repro-spool-"))]
        ok = _check("CLI SIGTERM drains cleanly",
                    code == 0 and not leaked,
                    f"exit={code} leaked={leaked}")
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)
        return ok

    return base, stop


def _paged_csv(base, route, header, page):
    """Reassemble one CSV file from paginated responses — the client
    loop the pagination contract promises: walk ``offset += limit``
    until a short (or empty) page."""
    parts = [header]
    offset = 0
    while True:
        body = _get(base, f"{route}?format=csv&offset={offset}&limit={page}")
        parts.append(body)
        rows = body.count(b"\r\n")
        offset += page
        if rows < page:
            return b"".join(parts)


def _check(label, ok, detail=""):
    status = "ok" if ok else "MISMATCH"
    print(f"  [{status}] {label}" + (f" ({detail})" if detail else ""))
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenario", default="social_network")
    parser.add_argument("--scale", action="append", default=[],
                        metavar="TYPE=COUNT")
    parser.add_argument("--page", type=int, default=97,
                        help="page size for reassembly (a non-divisor "
                             "exercises partial final pages)")
    parser.add_argument("--boot", choices=["inprocess", "cli"],
                        default="inprocess",
                        help="'cli' boots `repro serve --port 0` as a "
                             "subprocess, reads the chosen port back "
                             "from stdout, and asserts the SIGTERM "
                             "graceful-drain contract on teardown")
    args = parser.parse_args(argv)

    from repro.io.csv_io import export_graph_csv
    from repro.scenarios import compile_scenario
    from repro.scenarios.zoo import load_zoo
    from repro.serve import VirtualGraph, create_server

    scale = {}
    for item in args.scale:
        key, _, value = item.partition("=")
        scale[key] = int(value)

    compiled = compile_scenario(load_zoo(args.scenario),
                                scale=scale or None)
    print(f"serve-smoke: scenario {args.scenario!r} "
          f"scale={compiled.scale} seed={compiled.seed}")

    # The reference: a real serial generate + CSV export.  Planted
    # recipes overlay the plan first — the server must match the
    # *planted* export (appended edges, forced attributes).
    graph = compiled.generator(workers=1).generate()
    plants = list(getattr(compiled, "plants", []) or [])
    if plants:
        from repro.planting import plan_plants, planted_graph

        plan = plan_plants(
            plants, graph.node_counts,
            {n: len(t) for n, t in graph.edge_tables.items()},
            compiled.seed,
        )
        graph = planted_graph(graph, plan)
    out_dir = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    written = {p.stem: p for p in export_graph_csv(graph, out_dir)
               if p.suffix == ".csv"}

    # The subject: a virtual graph served over loopback HTTP — either
    # in-process, or as the real CLI subprocess (--boot cli).
    virtual = server = stop_cli = None
    if args.boot == "cli":
        base, stop_cli = _boot_cli(args.scenario, args.scale)
    else:
        virtual = VirtualGraph.from_scenario(compiled, chunk_rows=512)
        virtual.warm()
        server = create_server(virtual, port=0)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

    failures = 0
    try:
        meta = json.loads(_get(base, "/"))
        edges = meta["classification"]["edges"]
        print(f"  server up on {base}; edge modes: "
              + ", ".join(f"{k}={v['mode']}" for k, v in edges.items()))

        schema = compiled.schema
        for type_name, node_type in schema.node_types.items():
            for prop in node_type.properties:
                stem = f"{type_name}.{prop.name}"
                exported = written[stem].read_bytes()
                served = _paged_csv(
                    base, f"/properties/{type_name}/{prop.name}",
                    b"id,value\r\n", args.page)
                if not _check(f"property csv {stem}", served == exported,
                              f"{len(exported)} bytes"):
                    failures += 1

        for edge_name in schema.edge_types:
            exported = written[edge_name].read_bytes()
            served = _paged_csv(base, f"/edges/{edge_name}",
                                b"id,tailId,headId\r\n", args.page)
            if not _check(f"edge csv {edge_name}", served == exported,
                          f"{len(exported)} bytes"):
                failures += 1

            # Neighbourhood + existence against the materialised table.
            table = graph.edges(edge_name)
            tails = table.tails
            heads = table.heads
            probe = int(tails[0])
            expected = sorted(
                int(v) for v in
                list(heads[tails == probe]) + (
                    [] if table.directed
                    else list(tails[(heads == probe) & (tails != heads)]))
            )
            payload = json.loads(_get(
                base,
                f"/neighbors/{edge_name}/{probe}"
                f"?direction={'out' if table.directed else 'both'}"
                f"&limit=65536"))
            if not _check(f"neighbors {edge_name}/{probe}",
                          sorted(payload["neighbors"]) == expected,
                          f"{len(expected)} neighbours"):
                failures += 1

            exists = json.loads(_get(
                base, f"/edges/{edge_name}/exists"
                      f"?src={int(tails[0])}&dst={int(heads[0])}"))
            if not _check(f"exists {edge_name} first edge",
                          exists["exists"] is True):
                failures += 1

        # Planted recipes: every injected (non-deleted) template edge
        # must be visible through the live existence route.
        if plants:
            edge_of = {p.name: p.edge for p in plan.plants}
            missing = 0
            probes = 0
            for inst in plan.instances:
                for record in inst.edges:
                    if record["status"] != "planted":
                        continue
                    u, v = record["world"]
                    exists = json.loads(_get(
                        base,
                        f"/edges/{edge_of[inst.plant]}/exists"
                        f"?src={u}&dst={v}"))
                    probes += 1
                    if exists["exists"] is not True:
                        missing += 1
            if not _check("planted edges visible via /exists",
                          missing == 0,
                          f"{probes - missing}/{probes} present"):
                failures += 1

        # Pagination contract: a past-the-end offset is an empty 200.
        some_type = next(iter(schema.node_types))
        body = _get(base, f"/properties/{some_type}/"
                          f"{schema.node_types[some_type].properties[0].name}"
                          f"?format=csv&offset=10000000&limit=64")
        if not _check("past-the-end offset is empty 200", body == b""):
            failures += 1
    finally:
        if stop_cli is not None:
            if not stop_cli():
                failures += 1
        else:
            server.shutdown()
            server.server_close()
            virtual.close()

    if failures:
        print(f"serve-smoke: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print("serve-smoke: all responses byte-identical to export")
    return 0


if __name__ == "__main__":
    sys.exit(main())
