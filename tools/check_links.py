#!/usr/bin/env python
"""Markdown link checker (stdlib-only), used by the CI docs job.

Scans the given markdown files for inline links/images
(``[text](target)``) and reference definitions (``[id]: target``),
and verifies every *relative* target resolves to an existing file or
directory (anchors are stripped; ``http(s)``/``mailto`` targets are
skipped — CI must not depend on the network).  Heading anchors within
the same file (``#section``) are checked against the file's headings.

Usage::

    python tools/check_links.py README.md DESIGN.md docs/*.md
"""

from __future__ import annotations

import re
import sys

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def heading_anchors(text):
    """GitHub-style anchors for every heading in ``text``."""
    anchors = set()
    for match in HEADING.finditer(text):
        title = re.sub(r"[`*_]", "", match.group(1))
        slug = re.sub(r"[^\w\s§-]", "", title.lower())
        slug = re.sub(r"[\s]+", "-", slug.strip())
        anchors.add(slug)
    return anchors


def check_file(path):
    import os

    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    prose = FENCE.sub("", text)  # links inside code fences are samples
    base = os.path.dirname(os.path.abspath(path))
    problems = []
    targets = [m.group(1) for m in INLINE_LINK.finditer(prose)]
    targets += REF_DEF.findall(prose)
    for target in targets:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
            continue
        file_part, _, anchor = target.partition("#")
        if not file_part:
            if anchor and anchor not in heading_anchors(text):
                problems.append(f"{path}: broken anchor #{anchor}")
            continue
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken link {target!r}")
        elif anchor and resolved.endswith(".md"):
            with open(resolved, encoding="utf-8") as handle:
                if anchor not in heading_anchors(handle.read()):
                    problems.append(
                        f"{path}: broken anchor {target!r}"
                    )
    return problems


def main(argv):
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]")
        return 2
    problems = []
    for path in argv:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if not problems:
        print(f"checked {len(argv)} files: all links resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
