from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # Ship the scenario zoo recipes with the package.
    package_data={"repro.scenarios": ["zoo/*.yaml"]},
    include_package_data=True,
    # Both spellings used across the docs; `python -m repro.cli`
    # always works without installation.
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "datasynth = repro.cli:main",
        ],
    },
)
