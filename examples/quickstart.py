"""Quickstart: run a zoo scenario in a few lines.

The declarative entry point: load the built-in ``social_network``
recipe (the paper's Figure-1 running example), generate it, and read
the graded validation report plus the generated tables.  Equivalent to
``python -m repro.cli scenario run social_network --scale Person=5000``.

Run:  python examples/quickstart.py
"""

from repro.scenarios import compile_scenario, load_zoo, run_scenario


def main():
    # 1. A recipe from the zoo: schema, scale, thresholds — all data.
    recipe = load_zoo("social_network")

    # 2. Compile onto the core engine (override any knob here) and run.
    compiled = compile_scenario(recipe, scale={"Person": 5_000})
    graph, report, _ = run_scenario(compiled)
    print("generated:", graph.summary())

    # 3. The graded audit: pass/warn/fail per contract, grade A-F.
    print()
    print(report)

    # 4. Property tables are columnar; read them like arrays.
    countries = graph.node_property("Person", "country")
    names = graph.node_property("Person", "name")
    print("\nfirst five persons:")
    for person_id in range(5):
        print(
            f"  #{person_id}: {names.values[person_id]} "
            f"from {countries.values[person_id]}"
        )

    # 5. Edge tables hold (id, tail, head) plus their own properties.
    knows = graph.edges("knows")
    print(f"\nknows: {knows.num_edges} edges, "
          f"mean degree {knows.degrees().mean():.1f}")

    match = graph.match_results["knows"]
    print(f"knows matching Frobenius error: {match.frobenius_error:.1f}")


if __name__ == "__main__":
    main()
