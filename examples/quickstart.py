"""Quickstart: generate a property graph in ~20 lines.

Builds the paper's running-example social network (Figure 1) at a small
scale, prints a synopsis, and shows how to read the generated tables.

Run:  python examples/quickstart.py
"""

from repro import GraphGenerator, social_network_schema


def main():
    # 1. A ready-made schema: Person/Message with knows/creates edges,
    #    country homophily and correlated creation dates.
    schema = social_network_schema(num_countries=12)

    # 2. Generate: one scale anchor (#Persons); everything else —
    #    #Messages, edge counts — is inferred by dependency analysis.
    graph = GraphGenerator(schema, {"Person": 5_000}, seed=42).generate()
    print("generated:", graph.summary())

    # 3. Property tables are columnar; read them like arrays.
    countries = graph.node_property("Person", "country")
    names = graph.node_property("Person", "name")
    print("\nfirst five persons:")
    for person_id in range(5):
        print(
            f"  #{person_id}: {names.values[person_id]} "
            f"from {countries.values[person_id]}"
        )

    # 4. Edge tables hold (id, tail, head) plus their own properties.
    knows = graph.edges("knows")
    print(f"\nknows: {knows.num_edges} edges, "
          f"mean degree {knows.degrees().mean():.1f}")

    # 5. The matching diagnostics show how well the requested
    #    country-pair distribution was realised.
    match = graph.match_results["knows"]
    print(f"knows matching Frobenius error: {match.frobenius_error:.1f}")

    observed = graph.observed_joint("knows")
    import numpy as np

    print(f"fraction of same-country friendships: "
          f"{np.trace(observed.matrix):.2f}")


if __name__ == "__main__":
    main()
