"""A production-shaped pipeline: recipe → customise → run → gate.

Recipes are plain data, so a pipeline can load a zoo recipe and *edit*
it before compiling — here the ``social_network`` recipe grows a
multi-valued ``interests`` property and a unique ``handle`` (paper §5
future work), plus the matching validation expectations.  Export only
happens if the graded audit does not fail.

Run:  python examples/validated_pipeline.py [output_dir]
"""

import sys

import numpy as np

from repro.scenarios import compile_scenario, load_zoo, run_scenario
from repro.stats import empirical_multivalue_joint, encode_value_sets


def customised_recipe():
    """The zoo recipe plus interests/handle and their expectations."""
    recipe = load_zoo("social_network").raw
    person = recipe["nodes"]["Person"]["properties"]
    person["interests"] = {
        "generator": "multi_value",
        "params": {
            "values": {"$dataset": {"name": "interests", "limit": 12}},
            "min_size": 1,
            "max_size": 4,
            "exponent": 1.2,
        },
    }
    person["handle"] = {
        "generator": "composite_key",
        "params": {"prefix": "person"},
    }
    recipe.setdefault("validation", {})["unique"] = ["Person.handle"]
    recipe["validation"]["degrees"] = {
        "knows": {"min_mean": 8, "max_mean": 25, "max_degree": 50},
    }
    return recipe


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else None
    compiled = compile_scenario(
        customised_recipe(), scale={"Person": 4_000}, seed=3
    )
    print("generating ...")
    # Generate and audit first, *without* an out_dir — run_scenario
    # streams exports during generation, so gating on the audit means
    # exporting in a second step from the finished graph.
    graph, report, _ = run_scenario(compiled)
    print("generated:", graph.summary())
    print("\ngraded audit:")
    print(report)
    if not report.passed:
        raise SystemExit("audit failed; not exporting")

    written = []
    if out_dir:
        from repro.io import export_graph, make_sink

        written = export_graph(graph, make_sink("csv", out_dir))

    # Multi-valued joint: which interests co-occur across friendships?
    interests = graph.node_property("Person", "interests").values
    encoded, universe = encode_value_sets(list(interests))
    knows = graph.edges("knows")
    joint = empirical_multivalue_joint(
        knows.tails, knows.heads, encoded, k=len(universe)
    )
    marginal = joint.marginal()
    top = np.argsort(-marginal)[:3]
    print("\ntop interests at friendship endpoints:")
    for code in top:
        print(f"  {universe[code]}: {marginal[code]:.1%}")
    same = float(np.trace(joint.matrix))
    print(f"shared-interest friendship mass: {same:.1%} "
          "(uncorrelated by construction — interests were not matched)")

    if written:
        print(f"\nwrote {len(written)} files to {out_dir}")
    else:
        print("\n(no output dir given; skipping export)")


if __name__ == "__main__":
    main()
