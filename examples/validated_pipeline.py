"""A production-shaped pipeline: generate → validate → export → report.

Combines the pieces a benchmark team would actually wire together:

1. generate the social network with a multi-valued ``interests``
   property (paper §5 future work);
2. audit the dataset with the standard schema-derived checks plus
   custom ones (degree bands, key uniqueness);
3. measure the interest co-occurrence joint over friendships
   (multi-valued joint measurement);
4. export to CSV only if the audit passes.

Run:  python examples/validated_pipeline.py [output_dir]
"""

import sys

import numpy as np

from repro import GraphGenerator, social_network_schema
from repro.core.schema import GeneratorSpec, PropertyDef
from repro.datasets import INTERESTS
from repro.io import export_graph_csv
from repro.stats import empirical_multivalue_joint, encode_value_sets
from repro.validation import (
    DegreeDistributionCheck,
    UniquenessCheck,
    standard_checks,
    validate,
)


def build_schema():
    """The Figure-1 schema plus a multi-valued interests property and
    a unique handle."""
    schema = social_network_schema(num_countries=12)
    person = schema.node_type("Person")
    person.properties.append(
        PropertyDef(
            "interests",
            "string",  # object column of tuples
            GeneratorSpec(
                "multi_value",
                {
                    "values": INTERESTS[:12],
                    "min_size": 1,
                    "max_size": 4,
                    "exponent": 1.2,
                },
            ),
        )
    )
    person.properties.append(
        PropertyDef(
            "handle",
            "string",
            GeneratorSpec("composite_key", {"prefix": "person"}),
        )
    )
    return schema


def main():
    out_dir = sys.argv[1] if len(sys.argv) > 1 else None
    schema = build_schema()
    print("generating ...")
    graph = GraphGenerator(schema, {"Person": 4_000}, seed=3).generate()
    print("generated:", graph.summary())

    checks = standard_checks(schema)
    checks.append(
        DegreeDistributionCheck(
            "knows", min_mean=8, max_mean=25, max_degree=50
        )
    )
    checks.append(UniquenessCheck("Person", "handle"))
    report = validate(graph, checks)
    print("\naudit:")
    print(report)
    if not report.passed:
        raise SystemExit("audit failed; not exporting")

    # Multi-valued joint: which interests co-occur across friendships?
    interests = graph.node_property("Person", "interests").values
    encoded, universe = encode_value_sets(list(interests))
    knows = graph.edges("knows")
    joint = empirical_multivalue_joint(
        knows.tails, knows.heads, encoded, k=len(universe)
    )
    marginal = joint.marginal()
    top = np.argsort(-marginal)[:3]
    print("\ntop interests at friendship endpoints:")
    for code in top:
        print(f"  {universe[code]}: {marginal[code]:.1%}")
    same = float(np.trace(joint.matrix))
    print(f"shared-interest friendship mass: {same:.1%} "
          "(uncorrelated by construction — interests were not matched)")

    if out_dir:
        written = export_graph_csv(graph, out_dir)
        print(f"\nwrote {len(written)} CSV files to {out_dir}")
    else:
        print("\n(no output dir given; skipping export)")


if __name__ == "__main__":
    main()
