"""The full running example (Figure 1), scenario-driven.

A thin wrapper over the ``social_network`` zoo recipe: generate at the
requested scale, print the graded validation report (the audit of every
contract the paper states), show the structural profile of the
friendship graph, and stream-export as CSV if an output directory is
given.

Run:  python examples/social_network.py [num_persons] [output_dir]
"""

import sys

import numpy as np

from repro.graphstats import structural_summary
from repro.scenarios import compile_scenario, load_zoo, run_scenario


def main():
    num_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    out_dir = sys.argv[2] if len(sys.argv) > 2 else None

    compiled = compile_scenario(
        load_zoo("social_network"), scale={"Person": num_persons}
    )
    print(f"generating social network with {num_persons} persons ...")
    graph, report, written = run_scenario(compiled, out_dir=out_dir)
    print("generated:", graph.summary())

    print()
    print(report)
    if not report.passed:
        raise SystemExit("graded audit failed")

    print("\nfriendship graph structural profile:")
    knows = graph.edges("knows")
    profile = structural_summary(
        knows, clustering=num_persons <= 20_000, diameter=True
    )
    for key, value in profile.items():
        if isinstance(value, float):
            value = round(value, 4)
        print(f"  {key}: {value}")

    print("\nmost common names by country (sample):")
    countries = graph.node_property("Person", "country").values
    names = graph.node_property("Person", "name").values
    for country in ("China", "Germany", "Brazil"):
        mask = countries == country
        if mask.any():
            values, counts = np.unique(names[mask], return_counts=True)
            top = values[np.argmax(counts)]
            print(f"  {country}: {top}")

    if written:
        print(f"\nwrote {len(written)} files")


if __name__ == "__main__":
    main()
