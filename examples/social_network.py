"""The full running example (Figure 1) with verification and export.

Generates the Person/Message social network, verifies every property
the paper states for it, prints a structural profile of the friendship
graph, and exports the dataset as CSV (the shape a benchmark harness
would load into a graph database).

Run:  python examples/social_network.py [num_persons] [output_dir]
"""

import sys

import numpy as np

from repro import GraphGenerator, social_network_schema
from repro.graphstats import (
    attribute_assortativity,
    structural_summary,
)
from repro.io import export_graph_csv


def verify(graph):
    """Check the running example's stated requirements, print a report."""
    checks = []

    person_dates = graph.node_property("Person", "creationDate").values
    knows = graph.edges("knows")
    knows_dates = graph.edge_property("knows", "creationDate").values
    ok = bool(
        (knows_dates > np.maximum(
            person_dates[knows.tails], person_dates[knows.heads]
        )).all()
    )
    checks.append(("knows.creationDate > both endpoints", ok))

    creates = graph.edges("creates")
    creates_dates = graph.edge_property("creates", "creationDate").values
    ok = bool((creates_dates > person_dates[creates.tails]).all())
    checks.append(("creates.creationDate > creator's", ok))

    ok = graph.num_nodes("Message") == creates.num_edges
    checks.append(("#Messages == #creates edges (1..* inference)", ok))

    counts = np.bincount(
        creates.heads, minlength=graph.num_nodes("Message")
    )
    checks.append(("every Message has exactly one creator",
                   bool((counts == 1).all())))

    codes, _ = graph.node_property("Person", "country").codes()
    assortativity = attribute_assortativity(knows, codes)
    checks.append(
        (f"country homophily on knows (assortativity "
         f"{assortativity:.3f} > 0.1)", assortativity > 0.1)
    )

    print("requirement checks:")
    for label, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
    if not all(ok for _label, ok in checks):
        raise SystemExit("requirement check failed")


def main():
    num_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    out_dir = sys.argv[2] if len(sys.argv) > 2 else None

    schema = social_network_schema(num_countries=16)
    print(f"generating social network with {num_persons} persons ...")
    graph = GraphGenerator(
        schema, {"Person": num_persons}, seed=7
    ).generate()
    print("generated:", graph.summary())

    verify(graph)

    print("\nfriendship graph structural profile:")
    knows = graph.edges("knows")
    profile = structural_summary(
        knows, clustering=num_persons <= 20_000, diameter=True
    )
    for key, value in profile.items():
        if isinstance(value, float):
            value = round(value, 4)
        print(f"  {key}: {value}")

    print("\nmost common names by country (sample):")
    countries = graph.node_property("Person", "country").values
    names = graph.node_property("Person", "name").values
    for country in ("China", "Germany", "Brazil"):
        mask = countries == country
        if mask.any():
            values, counts = np.unique(
                names[mask], return_counts=True
            )
            top = values[np.argmax(counts)]
            print(f"  {country}: {top}")

    if out_dir:
        written = export_graph_csv(graph, out_dir)
        print(f"\nwrote {len(written)} CSV files to {out_dir}")


if __name__ == "__main__":
    main()
