"""Extending the framework: custom SGs and PGs, used from the DSL.

The paper's design is explicitly pluggable — "SGs can be provided by
users to customize the generation of the graph structure" and PGs "are
pluggable objects that can be referenced from the DSL".  This example
registers:

* a custom structure generator producing a 2D grid (mobility-planning
  style road network — another domain from the requirements section);
* a custom property generator emitting geo coordinates snapped to the
  grid;

and then drives both from DSL text.

Run:  python examples/custom_generators.py
"""

import numpy as np

from repro.core import GraphGenerator
from repro.core.dsl import load_schema
from repro.properties import (
    PropertyGenerator,
    register_property_generator,
)
from repro.structure import (
    Capability,
    GeneratorInfo,
    StructureGenerator,
    register_generator,
)
from repro.tables import EdgeTable


class GridGenerator(StructureGenerator):
    """4-connected 2D grid: the classic road-network approximation."""

    name = "grid2d"

    def parameter_names(self):
        return {"wrap"}

    def _generate(self, n, stream):
        side = int(np.floor(np.sqrt(n)))
        if side < 1:
            return EdgeTable(self.name, [], [], num_tail_nodes=n)
        wrap = bool(self._params.get("wrap", False))
        tails, heads = [], []
        for row in range(side):
            for col in range(side):
                node = row * side + col
                right = row * side + (col + 1) % side
                down = ((row + 1) % side) * side + col
                if col + 1 < side or wrap:
                    tails.append(node)
                    heads.append(right)
                if row + 1 < side or wrap:
                    tails.append(node)
                    heads.append(down)
        return EdgeTable(
            self.name, tails, heads, num_tail_nodes=n,
            num_head_nodes=n,
        )

    def expected_edges_for_nodes(self, n):
        side = int(np.floor(np.sqrt(n)))
        return 2 * side * side  # wrap upper bound


class GridCoordinateGenerator(PropertyGenerator):
    """Geo coordinates: grid position plus deterministic jitter."""

    name = "grid_coordinate"

    def parameter_names(self):
        return {"side", "jitter"}

    def run_many(self, ids, stream, *dependency_arrays):
        side = int(self._params.get("side", 100))
        jitter = float(self._params.get("jitter", 0.1))
        ids = np.asarray(ids, dtype=np.int64)
        rows = (ids // side).astype(np.float64)
        cols = (ids % side).astype(np.float64)
        dx = (stream.substream("x").uniform(ids) - 0.5) * jitter
        dy = (stream.substream("y").uniform(ids) - 0.5) * jitter
        out = np.empty(ids.size, dtype=object)
        for i in range(ids.size):
            out[i] = f"{rows[i] + dx[i]:.3f},{cols[i] + dy[i]:.3f}"
        return out


DSL = """
graph mobility {
  node Junction {
    coordinate: string = grid_coordinate(side=50, jitter=0.2)
    capacity:   long   = zipf_int(exponent=1.5, k=8)
  }
  edge road: Junction -- Junction [*..*] {
    structure = grid2d(wrap=false)
    speed_limit: long = uniform_int(low=30, high=121)
  }
  scale { Junction = 2500 }
}
"""


def main():
    register_generator(
        GeneratorInfo(
            "grid2d",
            GridGenerator,
            Capability(scale_by_nodes=True),
            "4-connected 2D grid",
        )
    )
    register_property_generator(GridCoordinateGenerator)

    schema, scale, name = load_schema(DSL)
    graph = GraphGenerator(schema, scale, seed=21).generate()
    print(f"generated graph {name!r}:", graph.summary())

    roads = graph.edges("road")
    degrees = roads.degrees()
    print(f"junction degrees: min={degrees.min()} "
          f"max={degrees.max()} (grid interior = 4)")

    coordinates = graph.node_property("Junction", "coordinate").values
    print("sample junctions:", list(coordinates[:3]))

    speeds = graph.edge_property("road", "speed_limit").values
    print(f"speed limits: {speeds.min()}..{speeds.max()} km/h, "
          f"mean {speeds.mean():.0f}")

    from repro.graphstats import approximate_diameter

    print(f"approximate diameter: {approximate_diameter(roads)} "
          "(grid: ~2 * side)")

    # Registered generators are equally reachable from declarative
    # scenario recipes (docs/scenarios.md) — same registries.
    from repro.scenarios import compile_scenario, run_scenario

    recipe = """
scenario: mobility_recipe
description: the same mobility network, as a recipe
seed: 21
nodes:
  Junction:
    properties:
      coordinate: {generator: grid_coordinate,
                   params: {side: 50, jitter: 0.2}}
edges:
  road:
    tail: Junction
    head: Junction
    structure: {generator: grid2d, params: {wrap: false}}
scale: {Junction: 2500}
"""
    graph2, report, _ = run_scenario(compile_scenario(recipe),
                                     validate=True)
    print("\nsame workload from a recipe:", graph2.summary())
    roads2 = graph2.edges("road")
    assert (roads2.tails == roads.tails).all() \
        and (roads2.heads == roads.heads).all()
    print("recipe output identical to the imperative run: ok")


if __name__ == "__main__":
    main()
