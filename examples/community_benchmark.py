"""The Figure-3 evaluation setting, scenario-driven, plus the ablation.

The ``lfr_benchmark`` zoo recipe *is* the paper's evaluation protocol
as data: an LFR graph with a 16-value label matched onto its planted
communities.  This wrapper runs it at a configurable scale, prints the
graded report, draws the expected/observed CDF curves as ASCII art,
and then compares matchers on the same instance via the experiments
protocol.

Run:  python examples/community_benchmark.py [nodes] [k]
"""

import sys

from repro.experiments import MATCHERS, run_protocol
from repro.scenarios import compile_scenario, load_zoo, run_scenario
from repro.stats import JointDistribution, compare_joints


def ascii_chart(comparison, width=60, rows=12):
    """Plot expected vs observed CDFs with ASCII art."""
    idx, expected, observed = comparison.series(width)
    lines = [[" "] * len(idx) for _ in range(rows)]
    for column, (e, o) in enumerate(zip(expected, observed)):
        row_e = min(rows - 1, int((1.0 - e) * rows))
        row_o = min(rows - 1, int((1.0 - o) * rows))
        lines[row_e][column] = "#"
        if row_o == row_e:
            lines[row_o][column] = "*"
        else:
            lines[row_o][column] = "o"
    print("  1.0 +" + "-" * len(idx))
    for line in lines:
        print("      |" + "".join(line))
    print("  0.0 +" + "-" * len(idx))
    print("       pairs sorted by decreasing expected probability ->")
    print("       # expected   o observed   * overlapping")


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"scenario: lfr_benchmark at Node={nodes}")
    compiled = compile_scenario(
        load_zoo("lfr_benchmark"), scale={"Node": nodes}
    )
    graph, report, _ = run_scenario(compiled)
    print("generated:", graph.summary())
    print()
    print(report)

    match = graph.match_results["link"]
    requested = JointDistribution(match.target)
    observed = graph.observed_joint("link")
    comparison = compare_joints(requested, observed)
    print(f"\nmatching quality: KS={comparison.ks:.4f} "
          f"L1={comparison.l1:.4f}\n")
    ascii_chart(comparison)

    print("\nmatcher comparison (experiments protocol, same sizes):")
    print(f"  {'matcher':<10} {'KS':>8} {'L1':>8} {'seconds':>8}")
    for matcher in MATCHERS:
        ablation = run_protocol("lfr", nodes, k, seed=0,
                                matcher=matcher)
        print(
            f"  {matcher:<10} {ablation.comparison.ks:>8.4f} "
            f"{ablation.comparison.l1:>8.4f} "
            f"{ablation.seconds_matching:>8.2f}"
        )


if __name__ == "__main__":
    main()
