"""Reproduce one Figure-3 panel interactively and compare matchers.

Runs the paper's evaluation protocol (LFR graph -> LDG ground truth ->
SBM-Part) for a configurable size and k, prints the expected/observed
CDF series (the paper's plotted curves) as an ASCII chart, and runs the
matcher ablation on the same instance.

Run:  python examples/community_benchmark.py [nodes] [k]
"""

import sys

from repro.experiments import MATCHERS, run_protocol


def ascii_chart(comparison, width=60, rows=12):
    """Plot expected vs observed CDFs with ASCII art."""
    idx, expected, observed = comparison.series(width)
    lines = [[" "] * len(idx) for _ in range(rows)]
    for column, (e, o) in enumerate(zip(expected, observed)):
        row_e = min(rows - 1, int((1.0 - e) * rows))
        row_o = min(rows - 1, int((1.0 - o) * rows))
        lines[row_e][column] = "#"
        if row_o == row_e:
            lines[row_o][column] = "*"
        else:
            lines[row_o][column] = "o"
    print("  1.0 +" + "-" * len(idx))
    for line in lines:
        print("      |" + "".join(line))
    print("  0.0 +" + "-" * len(idx))
    print("       pairs sorted by decreasing expected probability ->")
    print("       # expected   o observed   * overlapping")


def main():
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"protocol: LFR({nodes}) with k={k} property values")
    result = run_protocol("lfr", nodes, k, seed=0)
    print(f"graph: {result.num_nodes} nodes, {result.num_edges} edges")
    print(f"matching took {result.seconds_matching:.2f}s")
    print(f"quality: KS={result.comparison.ks:.4f} "
          f"L1={result.comparison.l1:.4f}\n")
    ascii_chart(result.comparison)

    print("\nmatcher comparison on the same instance:")
    print(f"  {'matcher':<10} {'KS':>8} {'L1':>8} {'seconds':>8}")
    for matcher in MATCHERS:
        ablation = run_protocol(
            "lfr", nodes, k, seed=0, matcher=matcher
        )
        print(
            f"  {matcher:<10} {ablation.comparison.ks:>8.4f} "
            f"{ablation.comparison.l1:>8.4f} "
            f"{ablation.seconds_matching:>8.2f}"
        )


if __name__ == "__main__":
    main()
