"""Bipartite generation: the recommender zoo scenario.

A thin wrapper over the ``recommender_bipartite`` recipe — a User
-likes-> Item graph whose edges follow a genre-affinity joint (the
bipartite variant of SBM-Part).  The recipe carries the schema and the
graded expectations; this script adds the domain analysis.

Run:  python examples/recommender_bipartite.py
"""

import numpy as np

from repro.scenarios import load_zoo, run_scenario


def main():
    graph, report, _ = run_scenario(load_zoo("recommender_bipartite"))
    print("generated:", graph.summary())
    print()
    print(report)

    likes = graph.edges("likes")
    user_genres = graph.node_property("User", "genre").values
    item_genres = graph.node_property("Item", "genre").values
    same = (user_genres[likes.tails] == item_genres[likes.heads]).mean()
    print(f"\nlikes within the user's genre: {same:.1%} "
          "(requested 75% + diagonal share of the independent part)")

    match = graph.match_results["likes"]
    print(f"matching Frobenius error: {match.frobenius_error:.1f}")

    ratings = graph.edge_property("likes", "rating").values
    print(f"ratings: min={ratings.min()} max={ratings.max()} "
          f"mean={ratings.mean():.2f}")

    # Top items by in-degree (the Zipf head).
    in_degrees = np.bincount(
        likes.heads, minlength=graph.num_nodes("Item")
    )
    top = np.argsort(-in_degrees)[:5]
    titles = graph.node_property("Item", "title").values
    print("most liked items:")
    for item_id in top:
        print(f"  {titles[item_id]} ({item_genres[item_id]}): "
              f"{in_degrees[item_id]} likes")


if __name__ == "__main__":
    main()
