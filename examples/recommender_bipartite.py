"""Bipartite generation: a recommender-system benchmark dataset.

Builds a User -likes-> Item graph where users and items both carry a
genre property and the likes edges follow a genre-affinity joint (users
mostly like items of their genre) — the bipartite variant of SBM-Part
in action.  This is the "recommender systems" domain from the paper's
requirements section.

Run:  python examples/recommender_bipartite.py
"""

import numpy as np

from repro.core import (
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    GraphGenerator,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.stats import Zipf

GENRES = ["action", "comedy", "drama", "documentary"]


def build_schema(affinity=0.75):
    user = NodeType(
        "User",
        properties=[
            PropertyDef(
                "genre",
                "string",
                GeneratorSpec(
                    "categorical",
                    {"values": GENRES,
                     "weights": [0.4, 0.3, 0.2, 0.1]},
                ),
            ),
            PropertyDef(
                "handle",
                "string",
                GeneratorSpec("composite_key", {"prefix": "user"}),
            ),
        ],
    )
    item = NodeType(
        "Item",
        properties=[
            PropertyDef(
                "genre",
                "string",
                GeneratorSpec(
                    "categorical",
                    {"values": GENRES,
                     "weights": [0.4, 0.3, 0.2, 0.1]},
                ),
            ),
            PropertyDef(
                "title",
                "string",
                GeneratorSpec("composite_key", {"prefix": "item"}),
            ),
        ],
    )
    # Genre-affinity joint: `affinity` of the mass on the diagonal,
    # spread by popularity.
    marginal = np.array([0.4, 0.3, 0.2, 0.1])
    joint = (
        affinity * np.diag(marginal)
        + (1 - affinity) * np.outer(marginal, marginal)
    )
    likes = EdgeType(
        "likes",
        tail_type="User",
        head_type="Item",
        structure=GeneratorSpec(
            "bipartite_configuration",
            {
                "tail_distribution": Zipf(1.3, 30),
                "head_distribution": Zipf(1.1, 50),
                "tail_offset": 1,
                "head_offset": 1,
                "head_nodes": 2_000,
            },
        ),
        correlation=CorrelationSpec(
            tail_property="genre",
            head_property="genre",
            joint=joint,
        ),
        directed=True,
        properties=[
            PropertyDef(
                "rating",
                "long",
                GeneratorSpec("uniform_int", {"low": 1, "high": 6}),
            ),
        ],
    )
    return Schema(node_types=[user, item], edge_types=[likes])


def main():
    schema = build_schema()
    graph = GraphGenerator(
        schema, {"User": 4_000, "Item": 2_000}, seed=11
    ).generate()
    print("generated:", graph.summary())

    likes = graph.edges("likes")
    user_genres = graph.node_property("User", "genre").values
    item_genres = graph.node_property("Item", "genre").values
    same = (
        user_genres[likes.tails] == item_genres[likes.heads]
    ).mean()
    print(f"likes within the user's genre: {same:.1%} "
          "(requested 75% + diagonal share of the independent part)")

    match = graph.match_results["likes"]
    print(f"matching Frobenius error: {match.frobenius_error:.1f}")

    ratings = graph.edge_property("likes", "rating").values
    print(f"ratings: min={ratings.min()} max={ratings.max()} "
          f"mean={ratings.mean():.2f}")

    # Top items by in-degree (the Zipf head).
    in_degrees = np.bincount(
        likes.heads, minlength=graph.num_nodes("Item")
    )
    top = np.argsort(-in_degrees)[:5]
    titles = graph.node_property("Item", "title").values
    print("most liked items:")
    for item_id in top:
        print(f"  {titles[item_id]} ({item_genres[item_id]}): "
              f"{in_degrees[item_id]} likes")


if __name__ == "__main__":
    main()
