"""Message cascades: the zoo scenario plus cascade analytics.

A thin wrapper over the ``message_cascades`` recipe — a forest of
reply trees (paper §5 future work) with topics, text, and timestamps —
followed by the cascade-shape analysis: per-cascade sizes, depths, and
the broom-shaped size distribution, reconstructed from the generated
``replyOf`` edge table.

Run:  python examples/message_cascades.py
"""

import numpy as np

from repro.scenarios import load_zoo, run_scenario


def cascade_stats(table, num_messages):
    """Per-node root and depth from the (child -> parent) reply edges."""
    parents = np.full(num_messages, -1, dtype=np.int64)
    parents[table.tails] = table.heads
    depths = np.zeros(num_messages, dtype=np.int64)
    roots = np.arange(num_messages, dtype=np.int64)
    node = parents.copy()
    while (node >= 0).any():
        active = node >= 0
        depths[active] += 1
        roots[active] = node[active]
        node = np.where(active, parents[np.clip(node, 0, None)], -1)
    return roots, depths


def main():
    graph, report, _ = run_scenario(load_zoo("message_cascades"))
    print("generated:", graph.summary())
    print()
    print(report)

    replies = graph.edges("replyOf")
    num_messages = graph.num_nodes("Message")
    roots, depths = cascade_stats(replies, num_messages)

    sizes = np.bincount(roots)
    sizes = sizes[sizes > 0]
    print(f"\nforest: {len(np.unique(roots))} cascades over "
          f"{num_messages} messages, max depth {int(depths.max())}")
    print(f"cascade sizes: min={sizes.min()} "
          f"median={int(np.median(sizes))} max={sizes.max()}")
    depth_hist = np.bincount(depths)
    print("depth histogram (top 6 levels):", depth_hist[:6].tolist())

    # Topic mixing along reply edges: children vs their cascade root.
    topics = graph.node_property("Message", "topic").values
    same_as_root = float((topics == topics[roots]).mean())
    print(f"messages sharing their cascade root's topic: "
          f"{same_as_root:.1%} (topics are uncorrelated by "
          "construction)")


if __name__ == "__main__":
    main()
