"""Tree cascades with vertex-centric propagation (paper §5).

The paper's future-work section proposes handling tree structures
(message cascades in social networks) with "a vertex-centric approach
that propagates the information through the cascade iteratively".
This example builds a forest of reply trees and propagates two
properties down the cascades:

* ``timestamp`` — every reply strictly later than its parent;
* ``topic`` — inherited from the root with occasional drift.

Run:  python examples/message_cascades.py
"""

import numpy as np

from repro.prng import RandomStream
from repro.structure import CascadeForest

TOPICS = ["sports", "music", "politics", "movies", "technology"]


def main():
    generator = CascadeForest(seed=3, num_cascades=40, depth_bias=1.0)
    result = generator.run_with_metadata(2_000)
    table = result.table
    print(f"forest: {result.num_cascades} cascades, "
          f"{table.num_edges} reply edges, "
          f"max depth {int(result.depths.max())}")

    # Root timestamps uniform over a day; replies propagate strictly
    # later with per-node random gaps.
    stream = RandomStream(9, "cascade.time")
    roots = np.flatnonzero(result.parents < 0)
    initial = np.zeros(2_000, dtype=np.int64)
    initial[roots] = stream.randint(roots, 0, 86_400)

    gap_stream = stream.substream("gaps")

    def later_than_parent(parent_value, node, depth):
        gap = int(gap_stream.raw(np.int64(node)) % np.uint64(3_600)) + 1
        return parent_value + gap

    timestamps = np.asarray(
        generator.propagate(result, initial, later_than_parent)
    )
    parents = result.parents
    non_roots = np.flatnonzero(parents >= 0)
    assert (timestamps[non_roots] > timestamps[parents[non_roots]]).all()
    print("every reply strictly later than its parent: ok")

    # Topic inheritance with 10% drift.
    topic_stream = stream.substream("topics")
    initial_topics = [
        TOPICS[int(topic_stream.raw(np.int64(node)) % np.uint64(5))]
        for node in range(2_000)
    ]

    def inherit_topic(parent_topic, node, depth):
        drift = float(
            topic_stream.substream("drift").uniform(np.int64(node))
        )
        if drift < 0.1:
            choice = int(
                topic_stream.substream("new").raw(np.int64(node))
                % np.uint64(len(TOPICS))
            )
            return TOPICS[choice]
        return parent_topic

    topics = generator.propagate(result, initial_topics, inherit_topic)
    same_as_root = np.mean(
        [topics[node] == topics[result.roots[node]]
         for node in range(2_000)]
    )
    print(f"messages sharing their cascade root's topic: "
          f"{same_as_root:.1%}")

    # Cascade size distribution (broom shape).
    sizes = np.bincount(result.roots)
    sizes = sizes[sizes > 0]
    print(f"cascade sizes: min={sizes.min()} median="
          f"{int(np.median(sizes))} max={sizes.max()}")
    depth_hist = np.bincount(result.depths)
    print("depth histogram (top 6 levels):",
          depth_hist[:6].tolist())


if __name__ == "__main__":
    main()
