"""E1 — the running example of Figure 1, end to end.

Generates the Person/Message social network and verifies every
requirement the paper states for it:

* Person.country follows a real-life-like (skewed) distribution;
* Person.name is correlated with sex and country;
* knows.creationDate is greater than both endpoints' creationDates;
* D_creates (messages per person) follows a heavy-tailed distribution;
* the knows degree distribution is heavy-tailed-ish (LFR power law);
* countries of connected Persons follow the homophilous P'(X, Y).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GraphGenerator
from repro.datasets import conditional_name_table, social_network_schema
from repro.graphstats import attribute_assortativity
from repro.stats import compare_joints
from conftest import print_table

PERSONS = 3000


@pytest.fixture(scope="module")
def graph():
    schema = social_network_schema(num_countries=12)
    return GraphGenerator(
        schema, {"Person": PERSONS}, seed=2017
    ).generate()


def test_running_example_generation(benchmark, graph):
    def generate():
        schema = social_network_schema(num_countries=12)
        return GraphGenerator(
            schema, {"Person": PERSONS}, seed=2017
        ).generate()

    benchmark.pedantic(generate, rounds=1, iterations=1)

    rows = [
        {
            "check": "entity counts",
            "value": str(graph.summary()),
        }
    ]

    # Country skew.
    values, counts = graph.node_property(
        "Person", "country"
    ).categories()
    freq = counts / counts.sum()
    top_share = float(np.sort(freq)[-2:].sum())
    rows.append(
        {"check": "top-2 country share", "value": round(top_share, 3)}
    )
    assert top_share > 0.35  # China+India dominate

    # Name conditioning.
    table = conditional_name_table()
    countries = graph.node_property("Person", "country").values
    sexes = graph.node_property("Person", "sex").values
    names = graph.node_property("Person", "name").values
    in_bucket = sum(
        1
        for i in range(1000)
        if (countries[i], sexes[i]) in table
        and names[i] in table[(countries[i], sexes[i])][0]
    )
    rows.append(
        {"check": "names from conditional bucket (of 1000)",
         "value": in_bucket}
    )
    assert in_bucket > 800

    # knows.creationDate ordering.
    knows = graph.edges("knows")
    person_dates = graph.node_property("Person", "creationDate").values
    knows_dates = graph.edge_property("knows", "creationDate").values
    violations = int(
        (knows_dates <= np.maximum(
            person_dates[knows.tails], person_dates[knows.heads]
        )).sum()
    )
    rows.append(
        {"check": "knows.creationDate violations", "value": violations}
    )
    assert violations == 0

    # D_creates heavy tail.
    creates = graph.edges("creates")
    out_degrees = np.bincount(creates.tails, minlength=PERSONS)
    rows.append(
        {
            "check": "creates degree (mean / max)",
            "value": f"{out_degrees.mean():.1f} / {out_degrees.max()}",
        }
    )
    assert out_degrees.max() > 4 * max(out_degrees.mean(), 1)

    # Country homophily.
    codes, _ = graph.node_property("Person", "country").codes()
    assortativity = attribute_assortativity(knows, codes)
    rows.append(
        {"check": "country assortativity on knows",
         "value": round(assortativity, 3)}
    )
    assert assortativity > 0.15

    # Requested vs observed joint.
    match = graph.match_results["knows"]
    observed = graph.observed_joint("knows")
    from repro.stats import JointDistribution

    requested = JointDistribution(match.target)
    comparison = compare_joints(requested, observed)
    rows.append(
        {"check": "joint KS (requested vs observed)",
         "value": round(comparison.ks, 4)}
    )
    assert comparison.ks < 0.6  # greedy bound; random would be ~0.75+

    print_table("E1 — running example checks", rows)
    benchmark.extra_info["persons"] = PERSONS
    benchmark.extra_info["assortativity"] = round(assortativity, 3)
