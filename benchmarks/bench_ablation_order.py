"""A2 — ablation: node arrival order.

The paper streams nodes to SBM-Part in random order.  This ablation
compares random, natural, BFS and degree-sorted arrival on the same
instance, quantifying the order sensitivity inherent to streaming
algorithms.
"""

from __future__ import annotations

import pytest

from repro.experiments import fixed_k, lfr_sizes, run_protocol
from conftest import print_table

ORDERS = ("random", "natural", "bfs", "degree_desc", "degree_asc")


@pytest.fixture(scope="module")
def results():
    size = lfr_sizes()[1]
    return {
        order: run_protocol(
            "lfr", size, fixed_k(), seed=0, order_kind=order
        )
        for order in ORDERS
    }


def test_order_ablation(benchmark, results):
    size = lfr_sizes()[1]

    def run_random():
        return run_protocol(
            "lfr", size, fixed_k(), seed=0, order_kind="random"
        )

    benchmark.pedantic(run_random, rounds=1, iterations=1)

    rows = [
        {"order": order, **result.row()}
        for order, result in results.items()
    ]
    print_table("A2 — arrival order ablation (LFR, k=16)", rows)

    ks = {o: r.comparison.ks for o, r in results.items()}
    # Every order must stay in a usable range on LFR — the algorithm
    # cannot be so order-sensitive that some order breaks it outright.
    for order, value in ks.items():
        assert value < 0.45, (order, value)
    # The paper's choice (random) must be in the usable band.  Note
    # the measured finding: *natural* order can win on LFR because
    # LFR assigns node ids community by community, which effectively
    # streams whole communities contiguously.
    assert ks["random"] < 0.3

    benchmark.extra_info.update(
        {o: round(v, 4) for o, v in ks.items()}
    )
