"""A3 — ablation: the LDG capacity-balancing factor ``(1 - s_t/q_t)``.

SBM-Part inherits LDG's multiplicative remaining-capacity weight; this
ablation runs the same instances with the factor disabled (pure
Frobenius-gain argmax, capacities still enforced as hard constraints)
and reports the quality difference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import sbm_part_match
from repro.experiments import fixed_k, lfr_sizes, make_graph
from repro.partitioning import arrival_order, ldg_partition
from repro.prng import RandomStream, derive_seed
from repro.stats import (
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
)
from repro.tables import PropertyTable
from conftest import print_table


def _instance(seed=0):
    size = lfr_sizes()[1]
    k = fixed_k()
    graph = make_graph("lfr", size, derive_seed(seed, "graph"))
    sizes = TruncatedGeometric(0.4, k).sizes(graph.num_nodes)
    labels = ldg_partition(graph, sizes)
    expected = empirical_joint(graph.tails, graph.heads, labels, k=k)
    ptable = PropertyTable(
        "a3.value",
        np.repeat(np.arange(k, dtype=np.int64),
                  np.bincount(labels, minlength=k)),
    )
    order = arrival_order(
        graph, "random", stream=RandomStream(derive_seed(seed, "o"))
    )
    return graph, ptable, expected, order


@pytest.fixture(scope="module")
def results():
    graph, ptable, expected, order = _instance()
    out = {}
    for flag in (True, False):
        match = sbm_part_match(
            ptable, expected, graph, order=order,
            capacity_weighting=flag,
        )
        observed = empirical_joint(
            graph.tails, graph.heads, ptable.values[match.mapping],
            k=expected.k,
        )
        out[flag] = compare_joints(expected, observed)
    return out


def test_capacity_weighting_ablation(benchmark, results):
    def run_weighted():
        graph, ptable, expected, order = _instance()
        return sbm_part_match(ptable, expected, graph, order=order)

    benchmark.pedantic(run_weighted, rounds=1, iterations=1)

    rows = [
        {
            "capacity_weighting": flag,
            "ks": round(comparison.ks, 4),
            "l1": round(comparison.l1, 4),
        }
        for flag, comparison in results.items()
    ]
    print_table("A3 — capacity balancing ablation (LFR, k=16)", rows)

    # Both variants stay functional; capacities are hard constraints
    # either way, so the difference is a quality delta, not a validity
    # one.
    for flag, comparison in results.items():
        assert comparison.ks < 0.45, flag

    benchmark.extra_info["ks_weighted"] = round(results[True].ks, 4)
    benchmark.extra_info["ks_unweighted"] = round(
        results[False].ks, 4
    )
