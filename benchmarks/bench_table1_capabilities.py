"""T1 — reproduce Table 1: the related-work capability matrix.

The paper's Table 1 compares LDBC-SNB, Myriad, RMat, LFR, BTER and
Darwini along schema / structure / distribution / scale-factor
capability columns.  This bench regenerates the table from the
generator registry (internal SGs derive their rows from code; external
systems from their documented capability sets) and asserts the
paper-stated cells.
"""

from __future__ import annotations

from repro.structure import capability_matrix
from conftest import print_table


def _rows():
    return [
        {"system": name, **row} for name, row in capability_matrix()
    ]


def test_table1_capability_matrix(benchmark):
    rows = benchmark.pedantic(_rows, rounds=3, iterations=1)
    print_table("Table 1 — generator capability matrix", rows)

    by_name = {row["system"]: row for row in rows}
    # Paper-stated cells (spot checks, one per row of the original).
    assert by_name["LDBC-SNB"]["property structure correlation"] == "x"
    assert by_name["Myriad"]["edge cardinality"] == "x"
    assert by_name["RMat"]["structure"] == "pl, dd"
    assert "c" in by_name["LFR"]["structure"]
    assert "accd" in by_name["BTER"]["structure"]
    assert "ccdd" in by_name["Darwini"]["structure"]
    # The framework's own row dominates every capability column.
    datasynth = by_name["DataSynth (this work)"]
    missing = [
        column
        for column, cell in datasynth.items()
        if column not in ("system", "structure") and cell != "x"
    ]
    assert not missing, f"DataSynth row missing: {missing}"
    benchmark.extra_info["systems"] = len(rows)
