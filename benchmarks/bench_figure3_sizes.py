"""F3 — reproduce Figure 3: matching quality across graph sizes, k=16.

Paper protocol: LFR graphs of 10k/100k/1M nodes and R-MAT graphs of
scale 18/20/22, partitioned into k=16 groups with LDG and
truncated-geometric(0.4) sizes; SBM-Part must reproduce the measured
joint.  The paper's findings, which this bench asserts:

1. LFR quality is very good (observed CDF close to expected);
2. LFR quality beats R-MAT quality (structure sensitivity);
3. quality does not degrade with graph size;
4. on R-MAT, the pronounced initial slope (diagonal pairs) is still
   reproduced.

Sizes follow the active ``REPRO_SCALE`` profile (default "small":
LFR 2k/5k/10k, RMAT 12/13/14); set ``REPRO_SCALE=paper`` for the
original scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fixed_k, lfr_sizes, rmat_scales, run_protocol
from conftest import print_cdf_series, print_table


def _collect():
    k = fixed_k()
    results = []
    for size in lfr_sizes():
        results.append(run_protocol("lfr", size, k, seed=0))
    for scale in rmat_scales():
        results.append(run_protocol("rmat", scale, k, seed=0))
    return results


@pytest.fixture(scope="module")
def results():
    return _collect()


def test_figure3_full_sweep(benchmark, results):
    """Print all six panels and assert the paper's findings."""

    def smallest_cell():
        return run_protocol("lfr", lfr_sizes()[0], fixed_k(), seed=0)

    benchmark.pedantic(smallest_cell, rounds=1, iterations=1)

    print_table(
        "Figure 3 — quality across sizes (k=16)",
        [r.row() for r in results],
    )
    for result in results:
        print_cdf_series(result.label, result.comparison)

    num_lfr = len(lfr_sizes())
    lfr_results = results[:num_lfr]
    rmat_results = results[num_lfr:]

    # Finding 1: LFR quality is very good.
    for result in lfr_results:
        assert result.comparison.ks < 0.25, result.label

    # Finding 2: LFR beats RMAT (mean KS comparison).
    lfr_mean = np.mean([r.comparison.ks for r in lfr_results])
    rmat_mean = np.mean([r.comparison.ks for r in rmat_results])
    assert lfr_mean < rmat_mean

    # Finding 3: no size degradation (largest no worse than smallest
    # plus slack).
    assert lfr_results[-1].comparison.ks \
        <= lfr_results[0].comparison.ks + 0.1
    assert rmat_results[-1].comparison.ks \
        <= rmat_results[0].comparison.ks + 0.1

    # Finding 4: the initial slope (top pairs) is reproduced on RMAT —
    # observed CDF over the first 10% of pairs captures a substantial
    # share of the expected mass there (the paper's "pronounced slope
    # at the beginning ... is reproduced").
    for result in rmat_results:
        comparison = result.comparison
        head = max(1, len(comparison.expected_cdf) // 10)
        assert comparison.observed_cdf[head] \
            >= 0.5 * comparison.expected_cdf[head], result.label

    benchmark.extra_info.update(
        {r.label: round(r.comparison.ks, 4) for r in results}
    )
