"""Attribute-kernel throughput: batched pipelines vs the frozen legacy
per-row generators.

The acceptance workload of the batched attribute rewrite: every hot
property family at n=100k, timed against the pre-rewrite loops frozen
in ``repro/properties/legacy.py``, with value-identity asserted on
each comparison (the kernels are only fast *because* the goldens prove
they are the same function).  Run with
``--json-out BENCH_properties.json`` to refresh the committed perf
baseline; CI's perf-smoke job regenerates the rows and gates a >2x
``speedup_vs_legacy`` regression.

Rows record the default-impl throughput (C inner loops when a system
compiler exists, numpy otherwise) plus the numpy-only speedup so the
two layers are trackable separately.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager

import numpy as np

from repro.prng import RandomStream
from repro.properties import (
    create_legacy_generator,
    create_property_generator,
)
from conftest import print_table

N = 100_000

#: The three gated families (>= 10x acceptance) plus the string-
#: assembly generators that ride the same pipelines.
VOCABULARY = [f"word{i:04d}" for i in range(2000)]
TOPICS = [f"topic{i:03d}" for i in range(64)]
COUNTRIES = [f"country{i:02d}" for i in range(12)]
NAME_TABLE = {
    (country, sex): (
        [f"name_{country}_{sex}_{j}" for j in range(30)],
        list(range(30, 0, -1)),
    )
    for country in COUNTRIES
    for sex in ("f", "m")
}

CASES = {
    "text": (
        "text",
        dict(vocabulary=VOCABULARY, min_words=3, max_words=12,
             zipf_exponent=1.0),
        (),
    ),
    "multivalue": (
        "multi_value",
        dict(values=TOPICS, min_size=1, max_size=4, exponent=1.1),
        (),
    ),
    "conditional_categorical": (
        "conditional",
        dict(table=NAME_TABLE),
        ("countries", "sexes"),
    ),
    "categorical": (
        "categorical",
        dict(values=COUNTRIES, weights=list(range(12, 0, -1))),
        (),
    ),
    "uuid": ("uuid", dict(), ()),
}


def _dependencies(tags, ids):
    dep_stream = RandomStream(99, "bench.deps")
    columns = []
    for tag in tags:
        if tag == "countries":
            pool = np.empty(len(COUNTRIES), dtype=object)
            pool[:] = COUNTRIES
            codes = dep_stream.randint(ids, 0, len(COUNTRIES))
        else:
            pool = np.empty(2, dtype=object)
            pool[:] = ["f", "m"]
            codes = dep_stream.substream(tag).randint(ids, 0, 2)
        columns.append(pool[codes])
    return tuple(columns)


@contextmanager
def _forced_impl(impl):
    import repro.properties._ckernel as ck

    previous = os.environ.get("REPRO_PROP_IMPL")
    os.environ["REPRO_PROP_IMPL"] = impl
    ck._LOADED, ck._KERNEL = False, None
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_PROP_IMPL", None)
        else:
            os.environ["REPRO_PROP_IMPL"] = previous
        ck._LOADED, ck._KERNEL = False, None


def _timed(generator, ids, stream, deps):
    start = time.perf_counter()
    values = generator.run_many(ids, stream, *deps)
    return time.perf_counter() - start, values


def test_property_kernel_throughput(bench_recorder):
    """rows/sec + speedup-vs-legacy per property family (identity
    asserted)."""
    from repro.properties._ckernel import resolve_impl

    ids = np.arange(N, dtype=np.int64)
    rows = []
    for label, (name, params, dep_tags) in CASES.items():
        deps = _dependencies(dep_tags, ids)
        stream = RandomStream(7, f"bench.{label}")
        legacy_seconds, legacy_values = _timed(
            create_legacy_generator(name, **params), ids, stream, deps
        )
        with _forced_impl("numpy"):
            numpy_seconds, numpy_values = _timed(
                create_property_generator(name, **params),
                ids, stream, deps,
            )
        default_impl = resolve_impl()
        kernel_seconds, kernel_values = _timed(
            create_property_generator(name, **params),
            ids, stream, deps,
        )
        # Identity is the contract that makes the speedup meaningful.
        assert list(numpy_values) == list(legacy_values), label
        assert list(kernel_values) == list(legacy_values), label
        tracemalloc.start()
        create_property_generator(name, **params).run_many(
            ids, stream, *deps
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            bench_recorder.record(
                "properties",
                f"{label}.n{N // 1000}k",
                n=N,
                impl=default_impl,
                rows_per_sec=round(N / kernel_seconds, 1),
                seconds=round(kernel_seconds, 4),
                seconds_legacy=round(legacy_seconds, 4),
                speedup_vs_legacy=round(
                    legacy_seconds / kernel_seconds, 2
                ),
                speedup_numpy_vs_legacy=round(
                    legacy_seconds / numpy_seconds, 2
                ),
                tracemalloc_peak_mb=round(peak / 1e6, 2),
            )
        )
    print_table(
        f"A7 — attribute-kernel throughput (n={N}, values asserted "
        "identical to legacy)",
        rows,
    )
    # Never regress below the CI gate's floor on any row; the
    # committed baseline carries the real (>=10x) numbers.
    for row in rows:
        assert row["speedup_vs_legacy"] > 2.0, row


def test_ragged_draw_throughput(bench_recorder):
    """The tentpole primitive on its own: ragged draws vs N substreams."""
    stream = RandomStream(3, "bench.ragged")
    ids = np.arange(N, dtype=np.int64)
    lengths = stream.substream("len").randint(ids, 3, 13)

    start = time.perf_counter()
    flat, offsets = stream.uniform_ragged(ids, lengths)
    batched_seconds = time.perf_counter() - start

    sample = np.arange(0, N, 50, dtype=np.int64)
    start = time.perf_counter()
    for instance in sample.tolist():
        sub = stream.indexed_substream(instance)
        sub.uniform(
            np.arange(int(lengths[instance]), dtype=np.int64)
        )
    legacy_seconds = (time.perf_counter() - start) * (N / sample.size)

    row = bench_recorder.record(
        "properties",
        f"uniform_ragged.n{N // 1000}k",
        n=N,
        draws=int(offsets[-1]),
        rows_per_sec=round(N / batched_seconds, 1),
        seconds=round(batched_seconds, 4),
        speedup_vs_legacy=round(legacy_seconds / batched_seconds, 2),
    )
    print_table("A7+ — ragged PRNG fan-out (extrapolated legacy)", [row])
    assert row["speedup_vs_legacy"] > 2.0
