"""Shared helpers for the benchmark suite.

Every benchmark prints the table/figure rows it reproduces (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and records the
headline numbers in ``benchmark.extra_info`` so they survive into the
pytest-benchmark JSON output.

Perf-trajectory emission: pass ``--json-out PATH`` and every benchmark
that calls the ``bench_recorder`` fixture lands its rows (rows/sec,
speedup vs the frozen legacy loops, peak tracemalloc) in one JSON file.
The committed baselines at the repository root are produced exactly
this way::

    pytest benchmarks/bench_ablation_matchers.py -q -s \
        --json-out BENCH_matching.json
    pytest benchmarks/bench_structure_zoo.py -q -s \
        --json-out BENCH_structure.json

CI's perf-smoke job regenerates the matching file and fails on a >2x
regression against the committed baseline
(``benchmarks/check_perf_regression.py``).

Scale: benchmarks honour the ``REPRO_SCALE`` env profile ("small"
default, "medium", "paper") — see ``repro.experiments.scale``.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--json-out",
        action="store",
        default=None,
        help=(
            "write benchmark rows recorded via the bench_recorder "
            "fixture to this JSON file"
        ),
    )


class BenchRecorder:
    """Collects benchmark rows for the --json-out emission."""

    def __init__(self):
        self.rows = []
        self._mark = self._clock()

    @staticmethod
    def _clock():
        """(wall, user-CPU, sys-CPU) including worker children.

        ``RUSAGE_CHILDREN`` folds in reaped worker processes, so rows
        produced by the sharded process backend account for the CPU
        their pool actually burned, not just the parent's share.
        """
        own = resource.getrusage(resource.RUSAGE_SELF)
        kids = resource.getrusage(resource.RUSAGE_CHILDREN)
        return (
            time.perf_counter(),
            own.ru_utime + kids.ru_utime,
            own.ru_stime + kids.ru_stime,
        )

    def record(self, suite, name, **fields):
        """Record one benchmark result row.

        Conventional fields: ``rows_per_sec`` (nodes or edges per
        second through the hot loop), ``speedup_vs_legacy`` (same
        instance through the frozen legacy implementation) and
        ``tracemalloc_peak_mb``.

        Every row is additionally stamped with ``wall_s`` /
        ``cpu_user_s`` / ``cpu_sys_s`` — deltas since the previous
        ``record`` call (or recorder start), i.e. roughly the cost of
        producing this row.  Explicit keyword values win over the
        stamps.
        """
        wall, user, sys_cpu = self._clock()
        row = {"suite": suite, "name": name}
        row.update(fields)
        row.setdefault("wall_s", round(wall - self._mark[0], 3))
        row.setdefault("cpu_user_s", round(user - self._mark[1], 3))
        row.setdefault("cpu_sys_s", round(sys_cpu - self._mark[2], 3))
        self._mark = (wall, user, sys_cpu)
        self.rows.append(row)
        return row


_RECORDER = BenchRecorder()


@pytest.fixture(scope="session")
def bench_recorder():
    return _RECORDER


def _git_sha():
    """Short commit hash of HEAD, or "unknown" outside a checkout."""
    import subprocess

    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except Exception:
        return "unknown"
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else "unknown"


def pytest_sessionfinish(session, exitstatus):
    out = session.config.getoption("--json-out")
    if not out or not _RECORDER.rows:
        return
    import numpy

    from repro.experiments import profile_name

    payload = {
        "schema": "repro-bench/1",
        "profile": profile_name(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "git_sha": _git_sha(),
        "machine": platform.machine(),
        "rows": _RECORDER.rows,
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {len(_RECORDER.rows)} rows to {path}")


def print_table(title, rows):
    """Pretty-print a list of dict rows under a title banner."""
    print()
    print(f"=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    widths = {
        key: max(len(str(key)), *(len(str(row[key])) for row in rows))
        for key in keys
    }
    header = "  ".join(str(key).ljust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "  ".join(str(row[key]).ljust(widths[key]) for key in keys)
        )


def print_cdf_series(label, comparison, points=12):
    """Print the expected/observed CDF series the paper plots."""
    idx, expected, observed = comparison.series(points)
    print(f"--- {label}: expected vs observed CDF ---")
    print("rank  expected  observed")
    for i, e, o in zip(idx, expected, observed):
        print(f"{int(i):4d}  {e:8.4f}  {o:8.4f}")


@pytest.fixture
def table_printer():
    return print_table


@pytest.fixture
def cdf_printer():
    return print_cdf_series
