"""Shared helpers for the benchmark suite.

Every benchmark prints the table/figure rows it reproduces (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and records the
headline numbers in ``benchmark.extra_info`` so they survive into the
pytest-benchmark JSON output.

Scale: benchmarks honour the ``REPRO_SCALE`` env profile ("small"
default, "medium", "paper") — see ``repro.experiments.scale``.
"""

from __future__ import annotations

import pytest


def print_table(title, rows):
    """Pretty-print a list of dict rows under a title banner."""
    print()
    print(f"=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    widths = {
        key: max(len(str(key)), *(len(str(row[key])) for row in rows))
        for key in keys
    }
    header = "  ".join(str(key).ljust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            "  ".join(str(row[key]).ljust(widths[key]) for key in keys)
        )


def print_cdf_series(label, comparison, points=12):
    """Print the expected/observed CDF series the paper plots."""
    idx, expected, observed = comparison.series(points)
    print(f"--- {label}: expected vs observed CDF ---")
    print("rank  expected  observed")
    for i, e, o in zip(idx, expected, observed):
        print(f"{int(i):4d}  {e:8.4f}  {o:8.4f}")


@pytest.fixture
def table_printer():
    return print_table


@pytest.fixture
def cdf_printer():
    return print_cdf_series
