"""A4 — structure sensitivity: LFR mixing-factor sweep.

The paper's §5 asks "in which situations the algorithm performs well
and which does not".  This ablation quantifies one axis: the community
mixing factor mu.

Measured finding (recorded in EXPERIMENTS.md): with *protocol-derived*
targets (measured from an LDG partition of the same graph), quality is
roughly flat across mu — as mixing increases, the achievable joint
itself flattens toward independence, which is easy to match.  The
structure sensitivity the paper observes between LFR and R-MAT is
therefore about degree skew and hub structure, not merely about the
amount of community mixing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import sbm_part_match
from repro.experiments import fixed_k, lfr_sizes
from repro.partitioning import arrival_order, ldg_partition
from repro.prng import RandomStream, derive_seed
from repro.stats import (
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
)
from repro.structure import LFR
from repro.tables import PropertyTable
from conftest import print_table

MUS = (0.05, 0.1, 0.2, 0.35, 0.5)


def _run_for_mu(mu, seed=0):
    size = lfr_sizes()[0]
    k = fixed_k()
    generator = LFR(
        seed=derive_seed(seed, f"mu{mu}"),
        avg_degree=20,
        max_degree=50,
        min_community=10,
        max_community=50,
        mu=mu,
    )
    graph = generator.run(size)
    sizes = TruncatedGeometric(0.4, k).sizes(graph.num_nodes)
    labels = ldg_partition(graph, sizes)
    expected = empirical_joint(graph.tails, graph.heads, labels, k=k)
    ptable = PropertyTable(
        "a4.value",
        np.repeat(np.arange(k, dtype=np.int64),
                  np.bincount(labels, minlength=k)),
    )
    order = arrival_order(
        graph, "random",
        stream=RandomStream(derive_seed(seed, "arrival")),
    )
    match = sbm_part_match(ptable, expected, graph, order=order)
    observed = empirical_joint(
        graph.tails, graph.heads, ptable.values[match.mapping], k=k
    )
    return compare_joints(expected, observed)


@pytest.fixture(scope="module")
def results():
    return {mu: _run_for_mu(mu) for mu in MUS}


def test_mixing_factor_sweep(benchmark, results):
    benchmark.pedantic(
        lambda: _run_for_mu(0.1), rounds=1, iterations=1
    )

    rows = [
        {
            "mu": mu,
            "ks": round(comparison.ks, 4),
            "l1": round(comparison.l1, 4),
        }
        for mu, comparison in results.items()
    ]
    print_table("A4 — LFR mixing factor sweep (k=16)", rows)

    ks = [results[mu].ks for mu in MUS]
    # The whole sweep stays in the good-quality band: realisable
    # targets stay matchable across mixing levels.
    assert max(ks) < 0.25
    # The paper's mu=0.1 configuration is comfortably good.
    assert results[0.1].ks < 0.2

    benchmark.extra_info.update(
        {f"mu_{mu}": round(results[mu].ks, 4) for mu in MUS}
    )
