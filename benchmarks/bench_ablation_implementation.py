"""A5 — ablation: the two implementation choices this reproduction made.

The paper leaves two details of SBM-Part unspecified:

* what to do with a node that has no placed neighbours (cold start);
* how the LDG capacity factor applies when every candidate's Frobenius
  gain is negative.

Our defaults ("proportional" cold-start spread, "divide" for negative
gains) are compared against the literal-LDG readings ("greedy" /
"multiply") on the paper's own protocol, quantifying how much the
choices matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import sbm_part_match
from repro.experiments import fixed_k, lfr_sizes, make_graph
from repro.partitioning import arrival_order, ldg_partition
from repro.prng import RandomStream, derive_seed
from repro.stats import (
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
)
from repro.tables import PropertyTable
from conftest import print_table

VARIANTS = {
    "defaults (proportional / divide)": {
        "cold_start": "proportional", "negative_gain": "divide",
    },
    "literal LDG (greedy / multiply)": {
        "cold_start": "greedy", "negative_gain": "multiply",
    },
    "cold start only (greedy / divide)": {
        "cold_start": "greedy", "negative_gain": "divide",
    },
    "negative only (proportional / multiply)": {
        "cold_start": "proportional", "negative_gain": "multiply",
    },
}


def _instance(seed=0):
    size = lfr_sizes()[1]
    k = fixed_k()
    graph = make_graph("lfr", size, derive_seed(seed, "graph"))
    sizes = TruncatedGeometric(0.4, k).sizes(graph.num_nodes)
    labels = ldg_partition(graph, sizes)
    expected = empirical_joint(graph.tails, graph.heads, labels, k=k)
    ptable = PropertyTable(
        "a5.value",
        np.repeat(np.arange(k, dtype=np.int64),
                  np.bincount(labels, minlength=k)),
    )
    order = arrival_order(
        graph, "random",
        stream=RandomStream(derive_seed(seed, "arrival")),
    )
    return graph, ptable, expected, order


@pytest.fixture(scope="module")
def results():
    graph, ptable, expected, order = _instance()
    out = {}
    for label, kwargs in VARIANTS.items():
        match = sbm_part_match(
            ptable, expected, graph, order=order, **kwargs
        )
        observed = empirical_joint(
            graph.tails, graph.heads, ptable.values[match.mapping],
            k=expected.k,
        )
        out[label] = compare_joints(expected, observed)
    return out


def test_implementation_choice_ablation(benchmark, results):
    def run_default():
        graph, ptable, expected, order = _instance()
        return sbm_part_match(ptable, expected, graph, order=order)

    benchmark.pedantic(run_default, rounds=1, iterations=1)

    rows = [
        {
            "variant": label,
            "ks": round(comparison.ks, 4),
            "l1": round(comparison.l1, 4),
        }
        for label, comparison in results.items()
    ]
    print_table("A5 — implementation-choice ablation (LFR, k=16)", rows)

    default_ks = results["defaults (proportional / divide)"].ks
    literal_ks = results["literal LDG (greedy / multiply)"].ks
    # Every variant works on the easy LFR protocol...
    for label, comparison in results.items():
        assert comparison.ks < 0.45, label
    # ...and the chosen defaults are at least as good as the literal
    # reading (this is why they are the defaults).
    assert default_ks <= literal_ks + 0.02

    benchmark.extra_info.update(
        {label: round(c.ks, 4) for label, c in results.items()}
    )
