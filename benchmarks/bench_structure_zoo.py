"""A6 — structure zoo: matching quality across eight graph families.

Extends Figures 3/4 to answer the paper's §5 question ("understanding
... the relation between the graph structure and the provided joint
probability distribution") empirically: the same matching protocol on
eight structurally different graphs of comparable size, from strongly
clustered (LFR, Watts-Strogatz, Forest Fire) to hub-dominated (R-MAT,
Kronecker, Barabási–Albert) to structureless (Erdős–Rényi).

Also measures raw generator throughput (edges/sec + peak tracemalloc)
for the zoo plus the two generators whose hot loops were rewritten
(Barabási–Albert's rejection sampling, forest fire's burn frontier);
run with ``--json-out BENCH_structure.json`` to refresh the committed
perf baseline.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from repro.core.matching import sbm_part_match
from repro.partitioning import arrival_order, ldg_partition
from repro.prng import RandomStream, derive_seed
from repro.stats import (
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
)
from repro.structure import create_generator
from repro.tables import PropertyTable
from conftest import print_table

N = 4096  # power of two so rmat/kronecker fit too
K = 16

ZOO = {
    "lfr": {"avg_degree": 16, "max_degree": 40, "mu": 0.1},
    "watts_strogatz": {"k": 16, "beta": 0.1},
    "forest_fire": {"p": 0.37},
    "bter": {"avg_degree": 16, "max_degree": 40},
    "darwini": {"avg_degree": 16, "max_degree": 40},
    "rmat": {"edge_factor": 8},
    "kronecker": {
        "initiator": [[0.9, 0.5], [0.5, 0.2]], "edge_factor": 8,
    },
    "erdos_renyi_m": {"edges_per_node": 8},
}


def _protocol_on(name, params, seed=0):
    generator = create_generator(
        name, seed=derive_seed(seed, name), **params
    )
    graph = generator.run(N)
    sizes = TruncatedGeometric(0.4, K).sizes(graph.num_nodes)
    labels = ldg_partition(graph, sizes)
    expected = empirical_joint(graph.tails, graph.heads, labels, k=K)
    ptable = PropertyTable(
        "zoo.value",
        np.repeat(np.arange(K, dtype=np.int64),
                  np.bincount(labels, minlength=K)),
    )
    order = arrival_order(
        graph, "random",
        stream=RandomStream(derive_seed(seed, f"{name}.arrival")),
    )
    match = sbm_part_match(ptable, expected, graph, order=order)
    observed = empirical_joint(
        graph.tails, graph.heads, ptable.values[match.mapping], k=K
    )
    comparison = compare_joints(expected, observed)
    # Cheap structural covariates for the table.
    degrees = graph.degrees()
    skew = float(degrees.max() / max(degrees.mean(), 1e-9))
    return {
        "structure": name,
        "m": graph.num_edges,
        "degree_skew": round(skew, 1),
        "ks": round(comparison.ks, 4),
        "l1": round(comparison.l1, 4),
    }


@pytest.fixture(scope="module")
def rows():
    return [_protocol_on(name, params) for name, params in ZOO.items()]


def test_structure_zoo(benchmark, rows):
    benchmark.pedantic(
        lambda: _protocol_on("erdos_renyi_m", ZOO["erdos_renyi_m"]),
        rounds=1, iterations=1,
    )
    ordered = sorted(rows, key=lambda row: row["ks"])
    print_table(
        "A6 — matching quality across the structure zoo "
        f"(n={N}, k={K})", ordered,
    )

    by_name = {row["structure"]: row for row in rows}
    # Clustered families must beat the hub-dominated ones.
    clustered = min(
        by_name["lfr"]["ks"], by_name["watts_strogatz"]["ks"]
    )
    hubby = min(by_name["rmat"]["ks"], by_name["kronecker"]["ks"])
    assert clustered < hubby
    # Everything beats a coin flip against the sorted-CDF metric.
    for row in rows:
        assert row["ks"] < 0.6, row

    benchmark.extra_info.update(
        {row["structure"]: row["ks"] for row in rows}
    )


#: Generator-throughput cases: the zoo at its quality-protocol size,
#: plus the rewritten hot-loop generators at a size where the per-node
#: Python cost dominates.
THROUGHPUT_CASES = [
    *((name, N, params) for name, params in ZOO.items()),
    ("barabasi_albert", 20_000, {"m": 8}),
    ("forest_fire", 20_000, {"p": 0.37}),
]


def test_structure_generator_throughput(bench_recorder):
    """Edges/sec and peak memory per structure generator."""
    rows = []
    for name, n, params in THROUGHPUT_CASES:
        generator = create_generator(
            name, seed=derive_seed(1, f"thr.{name}"), **params
        )
        start = time.perf_counter()
        graph = generator.run(n)
        elapsed = time.perf_counter() - start
        tracemalloc.start()
        create_generator(
            name, seed=derive_seed(1, f"thr.{name}"), **params
        ).run(n)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows.append(
            bench_recorder.record(
                "structure",
                f"{name}.n{n}",
                n=n,
                edges=int(graph.num_edges),
                rows_per_sec=round(graph.num_edges / elapsed, 1),
                seconds=round(elapsed, 4),
                tracemalloc_peak_mb=round(peak / 1e6, 2),
            )
        )
    print_table("A6+ — generator throughput (edges/sec)", rows)
    for row in rows:
        assert row["rows_per_sec"] > 0
