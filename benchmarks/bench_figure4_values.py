"""F4 — reproduce Figure 4: matching quality across k ∈ {4, 16, 64}.

Paper protocol: fix the largest graphs (LFR 1M, RMAT 22 at paper scale)
and sweep the number of property values.  The paper's findings:

1. LFR works consistently very well across k;
2. for R-MAT, "the larger the number of values the better";
3. together these confirm the strong influence of graph structure on
   quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import k_values, lfr_sizes, rmat_scales, run_protocol
from conftest import print_cdf_series, print_table


@pytest.fixture(scope="module")
def results():
    lfr_size = lfr_sizes()[-1]
    rmat_scale = rmat_scales()[-1]
    out = []
    for k in k_values():
        out.append(run_protocol("lfr", lfr_size, k, seed=0))
    for k in k_values():
        out.append(run_protocol("rmat", rmat_scale, k, seed=0))
    return out


def test_figure4_value_sweep(benchmark, results):
    def one_cell():
        return run_protocol(
            "lfr", lfr_sizes()[-1], k_values()[0], seed=0
        )

    benchmark.pedantic(one_cell, rounds=1, iterations=1)

    print_table(
        "Figure 4 — quality across k (largest graphs)",
        [r.row() for r in results],
    )
    for result in results:
        print_cdf_series(result.label, result.comparison)

    num_k = len(k_values())
    lfr_results = results[:num_k]
    rmat_results = results[num_k:]

    # Finding 1: LFR consistently good across k.
    for result in lfr_results:
        assert result.comparison.ks < 0.25, result.label

    # Finding 2: RMAT quality improves with more values (k=64 at least
    # as good as k=4, with slack for noise).
    assert rmat_results[-1].comparison.ks \
        <= rmat_results[0].comparison.ks + 0.05

    # Finding 3: structure sensitivity — LFR beats RMAT on average.
    assert np.mean([r.comparison.ks for r in lfr_results]) \
        < np.mean([r.comparison.ks for r in rmat_results])

    benchmark.extra_info.update(
        {r.label: round(r.comparison.ks, 4) for r in results}
    )
