"""A1 — ablation: SBM-Part vs random vs LDG vs greedy matching.

Isolates the contribution of the Frobenius objective: all four matchers
respect the group-size marginal; only SBM-Part optimises against the
requested joint.

Measured finding (recorded in EXPERIMENTS.md): SBM-Part clearly beats
random and greedy.  Plain LDG is *competitive on this protocol* —
unsurprisingly, because the protocol derives the target joint from an
LDG partition of the very same graph, so pure locality nearly replays
the generating process.  LDG's failure mode appears when the requested
joint differs from pure locality (weakly homophilous targets), which
the unit test ``test_overfills_diagonal_versus_target`` pins down.

This module also carries the **kernel acceptance benchmark**: SBM-Part
on the n=100k, k=32 Erdős–Rényi instance frozen in
``tests/golden/matching/matching_large.npz``, streamed through the
legacy loop, the numpy kernel and (when a compiler is present) the C
kernel.  Assignments must equal the golden fixture and the kernel must
clear ≥10x over legacy.  Run with ``--json-out BENCH_matching.json``
to refresh the committed perf baseline.
"""

from __future__ import annotations

import importlib.util
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core.matching import (
    available_impls,
    sbm_part_assign,
)
from repro.core.matching.legacy import (
    legacy_bipartite_assignments,
    legacy_ldg_partition,
    legacy_sbm_part_assign,
)
from repro.experiments import MATCHERS, fixed_k, lfr_sizes, run_protocol
from repro.partitioning import ldg_partition
from conftest import print_table

GOLDEN_DIR = (
    Path(__file__).resolve().parent.parent
    / "tests" / "golden" / "matching"
)


def _regen():
    name = "golden_matching_regenerate"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def results():
    size = lfr_sizes()[1]
    return {
        matcher: run_protocol(
            "lfr", size, fixed_k(), seed=0, matcher=matcher
        )
        for matcher in MATCHERS
    }


def test_matcher_ablation(benchmark, results):
    size = lfr_sizes()[1]

    def run_sbm():
        return run_protocol(
            "lfr", size, fixed_k(), seed=0, matcher="sbm_part"
        )

    benchmark.pedantic(run_sbm, rounds=1, iterations=1)

    rows = [
        {"matcher": matcher, **result.row()}
        for matcher, result in results.items()
    ]
    print_table("A1 — matcher ablation (LFR, k=16)", rows)

    ks = {m: r.comparison.ks for m, r in results.items()}
    assert ks["sbm_part"] < ks["random"], ks
    assert ks["sbm_part"] < ks["greedy"], ks
    # Random must be clearly worse than the objective-driven matcher.
    assert ks["random"] > 1.5 * ks["sbm_part"], ks
    # LDG rides the protocol's LDG-derived target; it must be in the
    # same quality class as SBM-Part here (see module docstring).
    assert ks["ldg"] < 2.5 * ks["sbm_part"] + 0.05, ks

    benchmark.extra_info.update(
        {m: round(v, 4) for m, v in ks.items()}
    )


# -- kernel acceptance: n=100k, k=32 ------------------------------------------


@pytest.fixture(scope="module")
def acceptance_instance():
    """The exact instance of the large golden fixture."""
    regen = _regen()
    table = regen._graph(
        "erdos_renyi_m", 14, regen.LARGE_N, edges_per_node=8
    )
    sizes = np.full(
        regen.LARGE_K, regen.LARGE_N // regen.LARGE_K, dtype=np.int64
    )
    target = regen._target(table, regen.LARGE_K, 0.6)
    order = regen._order(table, 24)
    golden = np.load(GOLDEN_DIR / "matching_large.npz")[
        "sbm.er100k.k32"
    ].astype(np.int64)
    return table, sizes, target, order, golden


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def test_kernel_throughput_100k(
    benchmark, acceptance_instance, bench_recorder
):
    """≥10x SBM-Part matching at n=100k, k=32, golden-identical."""
    table, sizes, target, order, golden = acceptance_instance
    n = table.num_nodes

    legacy_s, legacy_assignment = _timed(
        legacy_sbm_part_assign, table, sizes, target, order=order
    )

    rows = []
    for impl in available_impls():
        elapsed, assignment = _timed(
            sbm_part_assign, table, sizes, target, order=order,
            impl=impl,
        )
        assert np.array_equal(assignment, golden), (
            f"{impl} kernel diverged from the golden fixture"
        )
        tracemalloc.start()
        sbm_part_assign(table, sizes, target, order=order, impl=impl)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        row = bench_recorder.record(
            "matching",
            f"sbm_part.er100k.k32.{impl}",
            n=n,
            k=int(sizes.size),
            edges=int(table.num_edges),
            rows_per_sec=round(n / elapsed, 1),
            seconds=round(elapsed, 4),
            speedup_vs_legacy=round(legacy_s / elapsed, 2),
            legacy_rows_per_sec=round(n / legacy_s, 1),
            tracemalloc_peak_mb=round(peak / 1e6, 2),
        )
        rows.append(row)
    print_table(
        "A1+ — streaming-placement kernel vs legacy "
        "(SBM-Part, n=100k, k=32)",
        rows,
    )

    # The acceptance bar: ≥10x with the compiled kernel; the portable
    # numpy path must still clearly beat legacy.
    by_impl = {row["name"].rsplit(".", 1)[-1]: row for row in rows}
    if "c" in by_impl:
        assert by_impl["c"]["speedup_vs_legacy"] >= 10.0, by_impl["c"]
    assert by_impl["numpy"]["speedup_vs_legacy"] >= 1.5, (
        by_impl["numpy"]
    )

    best_impl = available_impls()[0]
    benchmark.extra_info.update(
        {
            "speedup": by_impl[best_impl]["speedup_vs_legacy"],
            "rows_per_sec": by_impl[best_impl]["rows_per_sec"],
        }
    )
    benchmark.pedantic(
        lambda: sbm_part_assign(
            table, sizes, target, order=order, impl=best_impl
        ),
        rounds=1, iterations=1,
    )


def test_ldg_kernel_throughput(acceptance_instance, bench_recorder):
    """LDG rides the same kernel; measure it on the same graph."""
    table, sizes, _, order, _ = acceptance_instance
    n = table.num_nodes
    legacy_s, legacy_labels = _timed(
        legacy_ldg_partition, table, sizes, order=order
    )
    rows = []
    for impl in available_impls():
        elapsed, labels = _timed(
            ldg_partition, table, sizes, order=order, impl=impl
        )
        assert np.array_equal(labels, legacy_labels), impl
        rows.append(
            bench_recorder.record(
                "matching",
                f"ldg.er100k.k32.{impl}",
                n=n,
                rows_per_sec=round(n / elapsed, 1),
                seconds=round(elapsed, 4),
                speedup_vs_legacy=round(legacy_s / elapsed, 2),
                legacy_rows_per_sec=round(n / legacy_s, 1),
            )
        )
    print_table("A1+ — LDG kernel vs legacy (n=100k, k=32)", rows)
    for row in rows:
        assert row["speedup_vs_legacy"] >= 1.2, row


def test_bipartite_kernel_throughput(bench_recorder):
    """Bipartite SBM-Part on the kernel vs the legacy loop."""
    from repro.core.matching import bipartite_edge_count_target
    from repro.core.matching.kernel import bipartite_stream
    from repro.prng import RandomStream

    rng = np.random.default_rng(7)
    nt, nh, m = 15_000, 25_000, 160_000
    kt, kh = 8, 6
    from repro.tables import EdgeTable

    table = EdgeTable(
        "likes", rng.integers(0, nt, m), rng.integers(0, nh, m),
        num_tail_nodes=nt, num_head_nodes=nh, directed=True,
    )
    tail_sizes = np.full(kt, nt // kt, dtype=np.int64)
    head_sizes = np.full(kh, -(-nh // kh), dtype=np.int64)
    joint = np.full((kt, kh), 1.0) + 4.0 * np.eye(kt, kh)
    target = bipartite_edge_count_target(joint, m)
    order = RandomStream(5, "bip.arr").permutation(nt + nh)

    legacy_s, legacy_result = _timed(
        legacy_bipartite_assignments,
        table, tail_sizes, head_sizes, target, order=order,
    )
    elapsed, result = _timed(
        bipartite_stream,
        table, tail_sizes, head_sizes, target, order=order,
    )
    assert np.array_equal(legacy_result[0], result[0])
    assert np.array_equal(legacy_result[1], result[1])
    row = bench_recorder.record(
        "matching",
        "bipartite.nt15k_nh25k",
        n=nt + nh,
        rows_per_sec=round((nt + nh) / elapsed, 1),
        seconds=round(elapsed, 4),
        speedup_vs_legacy=round(legacy_s / elapsed, 2),
        legacy_rows_per_sec=round((nt + nh) / legacy_s, 1),
    )
    print_table("A1+ — bipartite kernel vs legacy", [row])
    assert row["speedup_vs_legacy"] >= 1.5, row
