"""A1 — ablation: SBM-Part vs random vs LDG vs greedy matching.

Isolates the contribution of the Frobenius objective: all four matchers
respect the group-size marginal; only SBM-Part optimises against the
requested joint.

Measured finding (recorded in EXPERIMENTS.md): SBM-Part clearly beats
random and greedy.  Plain LDG is *competitive on this protocol* —
unsurprisingly, because the protocol derives the target joint from an
LDG partition of the very same graph, so pure locality nearly replays
the generating process.  LDG's failure mode appears when the requested
joint differs from pure locality (weakly homophilous targets), which
the unit test ``test_overfills_diagonal_versus_target`` pins down.
"""

from __future__ import annotations

import pytest

from repro.experiments import MATCHERS, fixed_k, lfr_sizes, run_protocol
from conftest import print_table


@pytest.fixture(scope="module")
def results():
    size = lfr_sizes()[1]
    return {
        matcher: run_protocol(
            "lfr", size, fixed_k(), seed=0, matcher=matcher
        )
        for matcher in MATCHERS
    }


def test_matcher_ablation(benchmark, results):
    size = lfr_sizes()[1]

    def run_sbm():
        return run_protocol(
            "lfr", size, fixed_k(), seed=0, matcher="sbm_part"
        )

    benchmark.pedantic(run_sbm, rounds=1, iterations=1)

    rows = [
        {"matcher": matcher, **result.row()}
        for matcher, result in results.items()
    ]
    print_table("A1 — matcher ablation (LFR, k=16)", rows)

    ks = {m: r.comparison.ks for m, r in results.items()}
    assert ks["sbm_part"] < ks["random"], ks
    assert ks["sbm_part"] < ks["greedy"], ks
    # Random must be clearly worse than the objective-driven matcher.
    assert ks["random"] > 1.5 * ks["sbm_part"], ks
    # LDG rides the protocol's LDG-derived target; it must be in the
    # same quality class as SBM-Part here (see module docstring).
    assert ks["ldg"] < 2.5 * ks["sbm_part"] + 0.05, ks

    benchmark.extra_info.update(
        {m: round(v, 4) for m, v in ks.items()}
    )
