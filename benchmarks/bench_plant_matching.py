"""Baseline subgraph-matcher throughput over the planted zoo recipes.

Recall-identity asserted: each benchmark generates a planted zoo
scenario at smoke scale, runs :func:`repro.graphstats.verify_plants`,
and *asserts* recall 1.0 with exact node-map membership before
recording a row — a fast matcher that stopped finding the plants
cannot post a number.

Rows land in the ``matching`` suite next to the SBM-Part kernel rows::

    pytest benchmarks/bench_plant_matching.py -q -s \
        --json-out bench_plant_fresh.json

CI's ``plant-smoke`` job regenerates these rows and gates
``rows_per_sec`` against the committed ``BENCH_matching.json``
baseline (10x allowance; absolute throughput varies with the runner).
"""

from __future__ import annotations

import pytest

from repro.graphstats import verify_plants
from repro.scenarios import compile_scenario, run_scenario
from repro.scenarios.zoo import load_zoo

#: (zoo recipe, smoke scale) — mirrors tools/plant_smoke.py.
PLANTED = [
    ("fraud_ring_social", {"Person": 400}),
    ("c2_pattern_infra_telemetry", {"Host": 300}),
]


@pytest.mark.parametrize("name,scale", PLANTED,
                         ids=[name for name, _ in PLANTED])
def test_plant_matching_throughput(bench_recorder, table_printer,
                                   name, scale):
    compiled = compile_scenario(load_zoo(name), scale=scale)
    graph, _, _ = run_scenario(compiled, workers=1, validate=False)
    try:
        world = graph.materialize()
        report = verify_plants(world, graph.plan)
    finally:
        if hasattr(graph, "cleanup"):
            graph.cleanup()

    assert report["recall"] == 1.0, report
    rows = []
    for plant_name, row in sorted(report["plants"].items()):
        assert row["recovered"] == row["instances"]
        assert not row["truncated"]
        edge_rows = world.edges(row["edge"])
        rows.append({
            "plant": plant_name,
            "template": row["template"]["kind"],
            "instances": row["instances"],
            "matches": row["matches"],
            "edges": len(edge_rows),
            "rows_per_sec": row["rows_per_sec"],
            "seconds": row["seconds"],
        })
        bench_recorder.record(
            "matching", f"plant.{name}.{plant_name}",
            rows_per_sec=row["rows_per_sec"],
            seconds=row["seconds"],
            edges=len(edge_rows),
            instances=row["instances"],
            matches=row["matches"],
            recall=row["recall"],
        )
    table_printer(f"planted matcher throughput: {name}", rows)
