"""Supplementary: structure generator and property generator throughput.

The paper's "others" requirement is scalability; these benches record
edges/second for each SG and values/second for representative PGs so
regressions in the hot paths are visible in the benchmark history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.prng import RandomStream
from repro.properties import (
    CategoricalGenerator,
    DateRangeGenerator,
    UniformIntGenerator,
)
from repro.structure import create_generator
from conftest import print_table

N_NODES = 20_000


@pytest.mark.parametrize(
    "name,params",
    [
        ("erdos_renyi_m", {"edges_per_node": 8}),
        ("configuration", {"distribution": None}),
        ("bter", {"avg_degree": 16, "max_degree": 40}),
        ("darwini", {"avg_degree": 16, "max_degree": 40}),
        ("lfr", {"avg_degree": 16, "max_degree": 40, "mu": 0.1}),
    ],
)
def test_structure_generator_throughput(benchmark, name, params):
    if name == "configuration":
        from repro.stats import PowerLaw

        params = {"distribution": PowerLaw(2.0, 4, 40)}
    generator = create_generator(name, seed=1, **params)

    table = benchmark.pedantic(
        lambda: generator.run(N_NODES), rounds=1, iterations=1
    )
    benchmark.extra_info["edges"] = table.num_edges
    print(f"\n{name}: {table.num_edges} edges from {N_NODES} nodes")
    assert table.num_edges > 0


def test_rmat_throughput(benchmark):
    generator = create_generator("rmat", seed=1)
    table = benchmark.pedantic(
        lambda: generator.run_scale(15), rounds=1, iterations=1
    )
    benchmark.extra_info["edges"] = table.num_edges
    assert table.num_edges > 100_000


@pytest.mark.parametrize(
    "label,generator",
    [
        (
            "categorical",
            CategoricalGenerator(
                values=list("abcdefgh"), weights=[8, 7, 6, 5, 4, 3, 2, 1]
            ),
        ),
        ("uniform_int", UniformIntGenerator(low=0, high=1000)),
        ("date_range", DateRangeGenerator(start=0, end=10**9)),
    ],
)
def test_property_generator_throughput(benchmark, label, generator):
    ids = np.arange(200_000, dtype=np.int64)
    stream = RandomStream(7, label)

    values = benchmark.pedantic(
        lambda: generator.run_many(ids, stream), rounds=1, iterations=1
    )
    assert len(values) == ids.size
    benchmark.extra_info["values"] = ids.size
