"""Out-of-core scale smoke: sharded 10M-edge runs under a memory budget.

The acceptance criterion for the sharded executor is that a graph far
larger than the shard budget streams end-to-end — structure chunk,
match, properties, sink — with peak traced allocation bounded by the
budget, not the graph.  Two rows:

* ``sharded_one_to_many_10m`` — the gated row.  A ~10M-edge
  one-to-many graph generated with ``memory_budget="256MB"`` must keep
  its tracemalloc peak under that budget.  Every stage of this
  pipeline streams (offsets spilled to disk, heads derived per chunk),
  so the bound is the real thing, not slack.
* ``sharded_erdos_renyi_2m`` — context row for the G(n, m) sampling
  stage, which now runs through spilled sorted runs
  (``repro.io.spool.SortedRuns``): candidate codes are deduplicated
  and thinned out of core, so the pinned per-edge constant covers
  only the block-sized working set, not an O(m) transient.  The row
  gates that constant so the stage cannot silently regress toward
  full materialisation.
* ``sharded_one_to_many_10m_p4`` — the process-backend row: the same
  10M-edge pipeline on ``backend="process"`` with 4 workers, asserted
  byte-identical to the serial run; on runners with >= 4 CPUs it must
  also clear 2x the single-worker throughput.

Refresh the committed baseline with::

    pytest benchmarks/bench_scale.py -q -s --json-out BENCH_scale.json

CI's scale-smoke job regenerates the file and fails on regression via
two ``check_perf_regression.py`` passes: ``--gate-field
tracemalloc_peak_mb --gate-direction lower-is-better`` for memory and
``--gate-field rows_per_sec`` (higher-is-better) for throughput.

Scale: "small" is the CI size (~10M edges); ``REPRO_SCALE=medium`` /
``paper`` raise to ~20M / ~50M.  A 1B-edge run uses the same recipe
with a larger scale — see ``docs/scaling.md``.
"""

from __future__ import annotations

import hashlib
import os
import time
import tracemalloc
from pathlib import Path

from repro.core import ShardedExecutor
from repro.core.schema import (
    Cardinality,
    EdgeType,
    GeneratorSpec,
    NodeType,
    Schema,
)
from repro.core.sharded import parse_memory_budget
from repro.experiments.scale import profile_name
from repro.io import make_sink
from repro.stats import Zipf
from conftest import print_table

# Zipf(0.6, 10) + offset 1 gives ~4.27 edges per tail node.
_PERSONS = {
    "small": 2_400_000,
    "medium": 4_800_000,
    "paper": 12_000_000,
}
_BUDGET = "256MB"

_ERM_NODES = 400_000
_ERM_EDGES_PER_NODE = 5
#: Pinned constant for the G(n, m) sampling stage: bytes of peak
#: traced allocation per sampled edge (measured ≈ 16 with the spilled
#: sort-merge sampler — block-sized draw/sort/merge buffers only).
#: The pre-spill whole-table dedup measured ≈ 70; full
#: materialisation costs several hundred.
_ERM_BYTES_PER_EDGE_LIMIT = 32


def _one_to_many_schema():
    schema = Schema(node_types=[
        NodeType("Person"),
        NodeType("Message"),
    ])
    schema.add_edge_type(EdgeType(
        "creates", tail_type="Person", head_type="Message",
        cardinality=Cardinality.ONE_TO_MANY, directed=True,
        structure=GeneratorSpec("one_to_many", {
            "degree_distribution": Zipf(0.6, 10),
            "degree_offset": 1,
        }),
    ))
    return schema


def _erdos_renyi_schema():
    schema = Schema(node_types=[NodeType("Person")])
    schema.add_edge_type(EdgeType(
        "knows", tail_type="Person", head_type="Person",
        structure=GeneratorSpec(
            "erdos_renyi_m",
            {"edges_per_node": _ERM_EDGES_PER_NODE},
        ),
    ))
    return schema


def _tree_digests(root):
    """sha256 per file, keyed by relative path (streamed, not held)."""
    root = Path(root)
    return {
        str(p.relative_to(root)):
            hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


def _run_sharded(schema, scale, budget, tmp_path, tag,
                 workers=1, backend="thread"):
    executor = ShardedExecutor(
        schema, scale, seed=7,
        memory_budget=budget, spool_dir=tmp_path / f"spool-{tag}",
        workers=workers, backend=backend,
    )
    sink = make_sink(
        "csv", tmp_path / f"out-{tag}",
        chunk_size=executor.shard_rows,
    )
    tracemalloc.start()
    start = time.perf_counter()
    result = executor.run(sink=sink)
    elapsed = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    edges = sum(len(t) for t in result.edge_tables.values())
    result.cleanup()
    return {
        "edges": edges,
        "elapsed_s": elapsed,
        "rows_per_sec": edges / elapsed,
        "tracemalloc_peak_mb": peak / 2**20,
        "peak_bytes": peak,
        "shard_rows": executor.shard_rows,
    }


def test_one_to_many_budget_honoured(tmp_path, bench_recorder):
    """~10M edges, every stage streamed: peak stays under the budget."""
    persons = _PERSONS[profile_name()]
    stats = _run_sharded(
        _one_to_many_schema(), {"Person": persons}, _BUDGET,
        tmp_path, "o2m",
    )
    budget_bytes = parse_memory_budget(_BUDGET)
    print_table(
        f"scale smoke: one_to_many, budget {_BUDGET}",
        [{
            "persons": persons,
            "edges": stats["edges"],
            "shard_rows": stats["shard_rows"],
            "peak_mb": f"{stats['tracemalloc_peak_mb']:.1f}",
            "budget_mb": budget_bytes // 2**20,
            "edges_per_sec": f"{stats['rows_per_sec']:,.0f}",
        }],
    )
    bench_recorder.record(
        "scale", "sharded_one_to_many_10m",
        rows_per_sec=round(stats["rows_per_sec"], 1),
        tracemalloc_peak_mb=round(stats["tracemalloc_peak_mb"], 2),
        edges=stats["edges"],
        budget_mb=budget_bytes // 2**20,
        shard_rows=stats["shard_rows"],
    )
    assert stats["edges"] >= 10_000_000
    assert stats["peak_bytes"] < budget_bytes, (
        f"peak {stats['peak_bytes']} exceeds the "
        f"{_BUDGET} memory budget"
    )


def test_process_backend_speedup_and_identity(tmp_path, bench_recorder):
    """~10M edges on ``backend="process"``: same bytes, more cores.

    Byte-identity against the single-worker thread run is asserted
    unconditionally.  The throughput gate (>= 2x the serial run) only
    applies on machines with at least 4 CPUs — the Amdahl headroom
    simply is not there on smaller runners, and wall-clock on a
    starved box would gate noise, not code.
    """
    persons = _PERSONS[profile_name()]
    schema = _one_to_many_schema()
    scale = {"Person": persons}
    serial = _run_sharded(schema, scale, _BUDGET, tmp_path, "ser")
    stats = _run_sharded(
        schema, scale, _BUDGET, tmp_path, "p4",
        workers=4, backend="process",
    )
    budget_bytes = parse_memory_budget(_BUDGET)
    speedup = stats["rows_per_sec"] / serial["rows_per_sec"]
    cpus = os.cpu_count() or 1
    print_table(
        f"scale smoke: one_to_many, process backend x4 ({cpus} CPUs)",
        [{
            "edges": stats["edges"],
            "serial_eps": f"{serial['rows_per_sec']:,.0f}",
            "process_eps": f"{stats['rows_per_sec']:,.0f}",
            "speedup": f"{speedup:.2f}x",
            "peak_mb": f"{stats['tracemalloc_peak_mb']:.1f}",
            "budget_mb": budget_bytes // 2**20,
        }],
    )
    bench_recorder.record(
        "scale", "sharded_one_to_many_10m_p4",
        rows_per_sec=round(stats["rows_per_sec"], 1),
        tracemalloc_peak_mb=round(stats["tracemalloc_peak_mb"], 2),
        edges=stats["edges"],
        speedup_vs_serial=round(speedup, 2),
        cpus=cpus,
    )
    assert _tree_digests(tmp_path / "out-p4") == \
        _tree_digests(tmp_path / "out-ser"), (
            "process backend output diverged from the serial run"
        )
    assert stats["peak_bytes"] < budget_bytes, (
        f"peak {stats['peak_bytes']} exceeds the "
        f"{_BUDGET} memory budget"
    )
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"process backend with 4 workers on {cpus} CPUs only "
            f"reached {speedup:.2f}x over the serial run"
        )


def test_erdos_renyi_global_stage_constant(tmp_path, bench_recorder):
    """G(n, m): the sampling transient stays at its pinned constant."""
    scale = {"Person": _ERM_NODES}
    stats = _run_sharded(
        _erdos_renyi_schema(), scale, "64MB", tmp_path, "erm",
    )
    bytes_per_edge = stats["peak_bytes"] / stats["edges"]
    print_table(
        "scale smoke: erdos_renyi_m global sampling stage",
        [{
            "edges": stats["edges"],
            "peak_mb": f"{stats['tracemalloc_peak_mb']:.1f}",
            "bytes_per_edge": f"{bytes_per_edge:.0f}",
            "limit": _ERM_BYTES_PER_EDGE_LIMIT,
        }],
    )
    bench_recorder.record(
        "scale", "sharded_erdos_renyi_2m",
        rows_per_sec=round(stats["rows_per_sec"], 1),
        tracemalloc_peak_mb=round(stats["tracemalloc_peak_mb"], 2),
        edges=stats["edges"],
        bytes_per_edge=round(bytes_per_edge, 1),
    )
    assert bytes_per_edge < _ERM_BYTES_PER_EDGE_LIMIT, (
        "the G(n, m) dedup transient grew beyond its pinned "
        f"constant ({bytes_per_edge:.0f} B/edge)"
    )
