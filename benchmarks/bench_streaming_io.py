"""Streaming IO layer: rows/sec and peak memory, streamed vs legacy.

Exports million-row tables through the vectorised chunk path and
through a faithful reimplementation of the superseded per-row writers
(``csv.writer`` / f-string / per-record ``json.dumps`` loops), asserts
the bytes are identical, and reports throughput plus the peak
Python-allocation footprint of each export (tracemalloc), which for
the streamed path is bounded by the chunk size rather than the table.

A second benchmark exercises the acceptance criterion end to end: a
>=1M-edge *generated* graph streamed to disk at workers 1/2/4 must
produce byte-identical files.

Scale: "small" uses 1M rows/edges; ``REPRO_SCALE=medium`` / ``paper``
raise to 2M / 5M.
"""

from __future__ import annotations

import csv
import json
import time
import tracemalloc

import numpy as np

from repro.core import (
    EdgeType,
    GeneratorSpec,
    GraphGenerator,
    NodeType,
    PropertyDef,
    Schema,
)
from repro.experiments.scale import profile_name
from repro.io import (
    make_sink,
    write_edge_table,
    write_edgelist,
    write_property_table,
    write_property_table_jsonl,
)
from repro.tables import EdgeTable, PropertyTable
from conftest import print_table

_ROWS = {"small": 1_000_000, "medium": 2_000_000, "paper": 5_000_000}


# -- the superseded per-row writers (kept here as the baseline) ---------------


def _legacy_write_property_table(table, path):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "value"])
        for row_id, value in table.rows():
            writer.writerow([row_id, value])


def _legacy_write_edge_table(table, path):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "tailId", "headId"])
        for edge_id, tail, head in table.rows():
            writer.writerow([edge_id, tail, head])


def _legacy_write_edgelist(table, path):
    with open(path, "w") as handle:
        for tail, head in zip(table.tails, table.heads):
            handle.write(f"{int(tail)} {int(head)}\n")


def _legacy_write_property_jsonl(table, path):
    with open(path, "w") as handle:
        for row_id, value in table.rows():
            record = {"id": row_id, "value": value}
            handle.write(json.dumps(
                {k: (int(v) if isinstance(v, np.integer) else v)
                 for k, v in record.items()}
            ))
            handle.write("\n")


def _timed(func, *args):
    # Time and peak memory in separate passes: tracemalloc roughly
    # halves throughput, which would distort the speedup ratio.
    start = time.perf_counter()
    func(*args)
    seconds = time.perf_counter() - start
    tracemalloc.start()
    func(*args)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak


def test_streaming_vs_legacy_throughput(benchmark, tmp_path):
    rows = _ROWS[profile_name()]
    rng = np.random.default_rng(7)
    int_pt = PropertyTable(
        "t.int", rng.integers(0, 10**12, rows).astype(np.int64)
    )
    words = np.array(
        ["alpha", "beta,comma", 'gam"ma', "delta", "épsilon"],
        dtype=object,
    )
    str_pt = PropertyTable("t.str", words[rng.integers(0, 5, rows)])
    edges = EdgeTable(
        "t.edges",
        rng.integers(0, rows, rows).astype(np.int64),
        rng.integers(0, rows, rows).astype(np.int64),
        num_tail_nodes=rows,
    )

    cases = [
        ("csv PT int64", int_pt,
         _legacy_write_property_table, write_property_table),
        ("csv PT strings", str_pt,
         _legacy_write_property_table, write_property_table),
        ("csv ET", edges,
         _legacy_write_edge_table, write_edge_table),
        ("edgelist", edges,
         _legacy_write_edgelist, write_edgelist),
        ("jsonl PT int64", int_pt,
         _legacy_write_property_jsonl, write_property_table_jsonl),
    ]

    table_rows = []
    speedups = {}
    for label, data, legacy_fn, streamed_fn in cases:
        legacy_path = tmp_path / f"{label.replace(' ', '_')}.legacy"
        streamed_path = tmp_path / f"{label.replace(' ', '_')}.new"
        legacy_seconds, legacy_peak = _timed(
            legacy_fn, data, legacy_path
        )
        streamed_seconds, streamed_peak = _timed(
            streamed_fn, data, streamed_path
        )
        assert streamed_path.read_bytes() == legacy_path.read_bytes(), (
            f"{label}: streamed output differs from legacy"
        )
        speedups[label] = legacy_seconds / max(streamed_seconds, 1e-9)
        table_rows.append({
            "export": label,
            "rows": rows,
            "legacy_s": round(legacy_seconds, 2),
            "streamed_s": round(streamed_seconds, 2),
            "legacy_Mrows/s": round(rows / legacy_seconds / 1e6, 2),
            "streamed_Mrows/s": round(
                rows / streamed_seconds / 1e6, 2
            ),
            "speedup": round(speedups[label], 1),
            "legacy_peak_MB": round(legacy_peak / 2**20, 1),
            "streamed_peak_MB": round(streamed_peak / 2**20, 1),
        })

    print_table(
        f"Streamed vs legacy exporters, {rows} rows "
        "(byte-identical output verified)",
        table_rows,
    )
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["speedups"] = {
        k: round(v, 2) for k, v in speedups.items()
    }
    # The vectorised path must actually beat the per-row loop it
    # replaced — regression gate on the hot path.
    assert speedups["csv ET"] > 1.0, speedups

    benchmark.pedantic(
        lambda: write_edge_table(edges, tmp_path / "bench.csv"),
        rounds=1,
        iterations=1,
    )


def test_million_edge_generated_export_worker_matrix(
    benchmark, tmp_path
):
    """Acceptance criterion: a >=1M-edge generated graph streams to
    disk with chunked memory and byte-identical files at workers
    1/2/4."""
    rows = _ROWS[profile_name()]
    schema = Schema(
        node_types=[
            NodeType(
                "V",
                properties=[
                    PropertyDef(
                        "x", "long",
                        GeneratorSpec(
                            "uniform_int", {"low": 0, "high": 99}
                        ),
                    )
                ],
            )
        ],
        edge_types=[
            EdgeType(
                "e", "V", "V",
                structure=GeneratorSpec(
                    "erdos_renyi_m", {"edges_per_node": 8}
                ),
            )
        ],
    )
    scale = {"e": rows}

    reference = {}
    table_rows = []
    for workers in (1, 2, 4):
        out = tmp_path / f"w{workers}"
        sink = make_sink("csv", out, chunk_size=65_536)
        start = time.perf_counter()
        graph = GraphGenerator(
            schema, scale, seed=13, workers=workers
        ).generate(sink=sink)
        seconds = time.perf_counter() - start
        assert graph.num_edges("e") == rows
        produced = {p.name: p.read_bytes() for p in sink.written}
        if not reference:
            reference = produced
        equal = produced == reference
        assert equal, f"workers={workers}: export differs"
        table_rows.append({
            "workers": workers,
            "edges": rows,
            "generate+export_s": round(seconds, 2),
            "byte_equal": equal,
        })

    print_table(
        f"Streamed export of a generated {rows}-edge graph",
        table_rows,
    )
    benchmark.extra_info["edges"] = rows
    benchmark.pedantic(
        lambda: GraphGenerator(
            schema, scale, seed=13
        ).generate(
            sink=make_sink("csv", tmp_path / "pedantic",
                           chunk_size=65_536)
        ),
        rounds=1,
        iterations=1,
    )
