"""A7 — §5 extension: direct attributed generation vs generate-then-match.

The paper's future-work section proposes operators that "generate both
the property values and the graph structure at the same time", trading
structural freedom for exact constraint satisfaction.  This bench
quantifies that trade-off on the same homophily target:

* **direct** — :class:`AttributedSbmGenerator` samples the SBM induced
  by the joint: near-perfect joint, but the structure *is* an SBM
  (no LFR-style fine communities, low clustering);
* **match** — LFR structure + SBM-Part: structural properties of LFR
  preserved, joint approximated.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matching import sbm_part_match
from repro.graphstats import average_clustering
from repro.prng import RandomStream, derive_seed
from repro.stats import (
    TruncatedGeometric,
    compare_joints,
    empirical_joint,
    homophily_joint,
)
from repro.structure import LFR, AttributedSbmGenerator
from repro.tables import PropertyTable
from conftest import print_table

N = 4000
K = 16
AFFINITY = 0.7


def _target_joint():
    marginal = TruncatedGeometric(0.4, K).pmf()
    return homophily_joint(marginal, AFFINITY)


def _direct(seed=0):
    joint = _target_joint()
    generator = AttributedSbmGenerator(
        seed=derive_seed(seed, "direct"), joint=joint, avg_degree=16
    )
    result = generator.run_with_labels(N)
    observed = empirical_joint(
        result.table.tails, result.table.heads, result.labels, k=K
    )
    return result.table, compare_joints(joint, observed)


def _matched(seed=0):
    joint = _target_joint()
    generator = LFR(
        seed=derive_seed(seed, "lfr"),
        avg_degree=16,
        max_degree=40,
        min_community=10,
        max_community=50,
        mu=0.1,
    )
    graph = generator.run(N)
    sizes = np.floor(joint.marginal() * N).astype(np.int64)
    sizes[0] += N - sizes.sum()
    ptable = PropertyTable(
        "a7.value",
        np.repeat(np.arange(K, dtype=np.int64), sizes),
    )
    order = RandomStream(derive_seed(seed, "arrival")).permutation(N)
    match = sbm_part_match(ptable, joint, graph, order=order)
    observed = empirical_joint(
        graph.tails, graph.heads, ptable.values[match.mapping], k=K
    )
    return graph, compare_joints(joint, observed)


@pytest.fixture(scope="module")
def results():
    return {"direct (attributed SBM)": _direct(),
            "match (LFR + SBM-Part)": _matched()}


def test_direct_vs_matching(benchmark, results):
    benchmark.pedantic(_direct, rounds=1, iterations=1)

    rows = []
    for label, (graph, comparison) in results.items():
        rows.append(
            {
                "strategy": label,
                "m": graph.num_edges,
                "ks": round(comparison.ks, 4),
                "clustering": round(average_clustering(graph), 3),
            }
        )
    print_table(
        f"A7 — direct vs matching (n={N}, k={K}, "
        f"affinity={AFFINITY})", rows,
    )

    direct_graph, direct_cmp = results["direct (attributed SBM)"]
    match_graph, match_cmp = results["match (LFR + SBM-Part)"]
    # Direct generation must nail the joint...
    assert direct_cmp.ks < 0.05
    # ...while matching trades joint accuracy for structure: the LFR
    # graph keeps its strong clustering, which the SBM cannot produce.
    assert average_clustering(match_graph) \
        > 3 * average_clustering(direct_graph)

    benchmark.extra_info["direct_ks"] = round(direct_cmp.ks, 4)
    benchmark.extra_info["match_ks"] = round(match_cmp.ks, 4)
