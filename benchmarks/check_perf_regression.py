"""Compare a fresh benchmark JSON against a committed baseline.

Usage::

    python benchmarks/check_perf_regression.py FRESH.json BASELINE.json

Exits non-zero when any row present in both files regressed by more
than the allowed factor (default 2x).  The default gate is
``speedup_vs_legacy``: both the kernel and the frozen legacy loop run
on the same machine in the same process, so their ratio is
machine-neutral — CI runners of very different speeds still produce
comparable numbers.  Raw ``rows_per_sec`` is reported for context but
only warns, since absolute throughput varies with the runner.

The scale-smoke job instead gates on peak traced allocation, where
*smaller* is better::

    python benchmarks/check_perf_regression.py \
        fresh.json BENCH_scale.json \
        --gate-field tracemalloc_peak_mb \
        --gate-direction lower-is-better

tracemalloc peaks are allocation counts, not wall-clock, so they are
runner-neutral too.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GATE_FIELD = "speedup_vs_legacy"
WARN_FIELD = "rows_per_sec"


def load_rows(path):
    payload = json.loads(Path(path).read_text())
    return {row["name"]: row for row in payload.get("rows", [])}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail when baseline/fresh exceeds this factor "
        "(default: 2.0)",
    )
    parser.add_argument(
        "--gate-field", default=GATE_FIELD,
        help=f"row field the fatal gate compares "
        f"(default: {GATE_FIELD})",
    )
    parser.add_argument(
        "--gate-direction",
        choices=["higher-is-better", "lower-is-better"],
        default="higher-is-better",
        help="whether a larger gate-field value is an improvement "
        "(default: higher-is-better)",
    )
    args = parser.parse_args(argv)

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)
    shared = sorted(set(fresh) & set(baseline))
    if not shared:
        print("error: no shared benchmark rows between the two files")
        return 2

    lower_is_better = args.gate_direction == "lower-is-better"
    fields = [(args.gate_field, True)]
    if WARN_FIELD != args.gate_field:
        fields.append((WARN_FIELD, False))
    failures = []
    for name in shared:
        fresh_row, base_row = fresh[name], baseline[name]
        for field, fatal in fields:
            if field not in fresh_row or field not in base_row:
                continue
            new = float(fresh_row[field])
            old = float(base_row[field])
            # ratio > 1 always means "fresh is worse".
            if fatal and lower_is_better:
                ratio = new / old if old > 0 else float("inf")
            elif new <= 0:
                ratio = float("inf")
            else:
                ratio = old / new
            status = "ok"
            if ratio > args.max_regression:
                status = "FAIL" if fatal else "warn"
                if fatal:
                    failures.append((name, field, old, new, ratio))
            print(
                f"{status:4s} {name:32s} {field}: "
                f"baseline={old:.2f} fresh={new:.2f} "
                f"(x{ratio:.2f} worse)"
                if ratio > 1
                else f"{status:4s} {name:32s} {field}: "
                f"baseline={old:.2f} fresh={new:.2f} "
                f"(x{1 / max(ratio, 1e-9):.2f} better)"
            )

    if failures:
        print(
            f"\n{len(failures)} gated regression(s) beyond "
            f"{args.max_regression}x:"
        )
        for name, field, old, new, ratio in failures:
            print(f"  {name} {field}: {old:.2f} -> {new:.2f}")
        return 1
    print(f"\nall {len(shared)} shared rows within "
          f"{args.max_regression}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
