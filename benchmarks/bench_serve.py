"""Serving-mode throughput: requests/sec against a live server.

Boots the stdlib HTTP front end over a :class:`~repro.serve.
VirtualGraph` of the ``social_network`` zoo recipe and replays the
hot routes with ``urllib`` — the same loopback path the CI
serve-smoke job curls.  Rows (gated on ``requests_per_sec``,
higher-is-better, with a generous regression factor because loopback
HTTP on shared runners is noisy):

* ``serve_nodes_page`` — JSON-lines node records, 64-row pages;
* ``serve_property_csv`` — one property column, CSV pages (the
  export formatter byte-for-byte);
* ``serve_edges_csv`` — edge pages through the virtual (strict
  one_to_many) table;
* ``serve_neighbors`` — neighbourhood queries (bounded edge scan).

Every response is checked non-empty, and one page per route is
asserted byte-identical across the run — a throughput row that
serves wrong bytes must fail here, not in the gate.

Refresh the committed baseline with::

    pytest benchmarks/bench_serve.py -q -s --json-out BENCH_serve.json
"""

from __future__ import annotations

import threading
import time
import urllib.request

from repro.scenarios import compile_scenario
from repro.scenarios.zoo import load_zoo
from repro.serve import VirtualGraph, create_server
from conftest import print_table

_PERSONS = 2_000   # the recipe's own anchor; CI-sized
_REPEATS = 120     # requests per route


def _boot():
    compiled = compile_scenario(
        load_zoo("social_network"), scale={"Person": _PERSONS}
    )
    graph = VirtualGraph.from_scenario(compiled, chunk_rows=8192)
    graph.warm()
    server = create_server(graph, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return graph, server, f"http://{host}:{port}"


def _drive(base, path, repeats=_REPEATS):
    """-> (requests/sec, first body).  Pages walk forward so the OS
    cannot serve one cached response."""
    first = None
    start = time.perf_counter()
    for i in range(repeats):
        url = f"{base}{path}&offset={(i * 64) % 1024}"
        with urllib.request.urlopen(url) as response:
            body = response.read()
        assert response.status == 200
        if i == 0:
            first = body
            assert body, path
    elapsed = time.perf_counter() - start
    # Determinism spot-check: replay page 0.
    with urllib.request.urlopen(f"{base}{path}&offset=0") as response:
        assert response.read() == first, path
    return repeats / elapsed, first


def test_serve_throughput(bench_recorder):
    graph, server, base = _boot()
    probe = int(graph.edges_range("knows", 0, 1)[0][0])
    routes = [
        ("serve_nodes_page", "/nodes/Person?limit=64"),
        ("serve_property_csv", "/properties/Person/country?limit=64"),
        ("serve_edges_csv", "/edges/creates?limit=64"),
        ("serve_neighbors", f"/neighbors/knows/{probe}?limit=64"),
    ]
    rows = []
    try:
        for name, path in routes:
            rps, first = _drive(base, path)
            rows.append(bench_recorder.record(
                "serve", name,
                requests_per_sec=round(rps, 1),
                bytes_per_response=len(first),
                persons=_PERSONS,
            ))
    finally:
        server.shutdown()
        server.server_close()
        graph.close()
    print_table("serving throughput (requests/sec)", rows)
    for row in rows:
        assert row["requests_per_sec"] > 0
