"""Shard-parallel engine: wall-clock speedup and byte-equality.

Generates the running-example social network serially and through the
:class:`~repro.core.executor.ParallelExecutor` at several worker
counts, verifies the outputs are byte-identical (the paper's
shared-nothing determinism claim), and reports the speedup.  Speedup
> 1 requires a multi-core host — the table records the core count so
single-core CI numbers aren't misread as regressions.

Scale: "small" generates 5k Persons; set ``REPRO_SCALE=medium`` /
``paper`` for 20k / 50k.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import GraphGenerator, ParallelExecutor
from repro.datasets import social_network_schema
from repro.experiments.scale import profile_name
from conftest import print_table

_PERSONS = {"small": 5_000, "medium": 20_000, "paper": 50_000}
WORKER_COUNTS = (2, 4)


def _byte_equal(a, b):
    """Byte-level equality of two PropertyGraphs, dict order included."""
    if list(a.node_counts) != list(b.node_counts):
        return False
    if a.node_counts != b.node_counts:
        return False
    if list(a.node_properties) != list(b.node_properties):
        return False
    for key, pt in a.node_properties.items():
        other = b.node_properties[key]
        if pt.values.dtype != other.values.dtype:
            return False
        if pt.values.tobytes() != other.values.tobytes():
            # object arrays have no stable buffer; fall back to ==
            if pt != other:
                return False
    if list(a.edge_tables) != list(b.edge_tables):
        return False
    for key, table in a.edge_tables.items():
        other = b.edge_tables[key]
        if (table.tails.tobytes() != other.tails.tobytes()
                or table.heads.tobytes() != other.heads.tobytes()):
            return False
    if list(a.edge_properties) != list(b.edge_properties):
        return False
    for key, pt in a.edge_properties.items():
        other = b.edge_properties[key]
        if pt.values.dtype != other.values.dtype or pt != other:
            return False
    return True


def test_parallel_engine_speedup_and_equality(benchmark):
    persons = _PERSONS[profile_name()]
    schema = social_network_schema(num_countries=12)
    scale = {"Person": persons}

    start = time.perf_counter()
    serial = GraphGenerator(schema, scale, seed=31).generate()
    serial_seconds = time.perf_counter() - start

    rows = [{
        "engine": "serial",
        "workers": 1,
        "seconds": round(serial_seconds, 3),
        "speedup": 1.0,
        "byte_equal": True,
    }]
    best_speedup = 1.0
    for workers in WORKER_COUNTS:
        executor = ParallelExecutor(
            schema, scale, seed=31, workers=workers, shard_size=2_048
        )
        start = time.perf_counter()
        graph = executor.run()
        seconds = time.perf_counter() - start
        equal = _byte_equal(serial, graph)
        speedup = serial_seconds / seconds if seconds > 0 else 0.0
        best_speedup = max(best_speedup, speedup)
        rows.append({
            "engine": "parallel",
            "workers": workers,
            "seconds": round(seconds, 3),
            "speedup": round(speedup, 2),
            "byte_equal": equal,
        })
        assert equal, f"workers={workers}: output differs from serial"

    cores = os.cpu_count() or 1
    print_table(
        f"Shard-parallel engine, {persons} Persons "
        f"({cores} cores available)",
        rows,
    )
    benchmark.extra_info["persons"] = persons
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["best_speedup"] = round(best_speedup, 2)

    # Re-run the fastest configuration under the benchmark harness so
    # the timing lands in the pytest-benchmark history.
    benchmark.pedantic(
        lambda: ParallelExecutor(
            schema, scale, seed=31, workers=WORKER_COUNTS[-1],
            shard_size=2_048,
        ).run(),
        rounds=1,
        iterations=1,
    )
    if cores > 1:
        assert best_speedup > 1.0, (
            f"expected wall-clock speedup on a {cores}-core host, "
            f"got {best_speedup:.2f}x"
        )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_engine_scaling_points(benchmark, workers):
    """One benchmark point per worker count, for the history charts."""
    persons = max(2_000, _PERSONS[profile_name()] // 2)
    schema = social_network_schema(num_countries=12)

    graph = benchmark.pedantic(
        lambda: ParallelExecutor(
            schema, {"Person": persons}, seed=31,
            workers=workers, shard_size=2_048,
        ).run(),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["persons"] = persons
    assert graph.num_nodes("Person") == persons
