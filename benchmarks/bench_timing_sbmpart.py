"""P1 — the in-text performance claim of Section 4.2.

"it takes about 1100s to process the largest problem, RMAT-22 (with 67M
of edges) and 64 values, using a single thread ... No optimizations of
any kind have been implemented."

This bench times SBM-Part across R-MAT scales and k values, prints
per-edge throughput, and extrapolates the fitted linear cost model to
the paper's configuration for a side-by-side with the reported 1100 s.
Absolute numbers are testbed-specific; the assertions check the *cost
model* (near-linear scaling in m + n k) rather than wall-clock.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    extrapolate_to_paper,
    rmat_scales,
    time_sbm_part,
)
from conftest import print_table


@pytest.fixture(scope="module")
def measurements():
    scales = rmat_scales()
    rows = []
    for scale in scales[:2]:
        rows.append(time_sbm_part("rmat", scale, 16, seed=0))
    # k sweep on the smallest scale.
    for k in (4, 64):
        rows.append(time_sbm_part("rmat", scales[0], k, seed=0))
    return rows


def test_timing_and_extrapolation(benchmark, measurements):
    smallest = rmat_scales()[0]

    def run_once():
        return time_sbm_part("rmat", smallest, 16, seed=0)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)

    rows = [m.row() for m in measurements]
    extrapolated = extrapolate_to_paper(measurements[0])
    rows.append(
        {
            "graph": "rmat-22 (paper cfg, extrapolated)",
            "k": 64,
            "n": 1 << 22,
            "m": 67_000_000,
            "seconds": round(
                extrapolated["predicted_paper_seconds"], 1
            ),
            "edges_per_s": "-",
        }
    )
    rows.append(
        {
            "graph": "rmat-22 (paper reported, Xeon E-2630v3)",
            "k": 64,
            "n": 1 << 22,
            "m": 67_000_000,
            "seconds": extrapolated["paper_reported_seconds"],
            "edges_per_s": "-",
        }
    )
    print_table("P1 — SBM-Part timing", rows)

    # Cost model check: doubling the scale (~2x nodes and edges) must
    # not blow up superlinearly (allow 3.5x for constant overheads).
    small, large = measurements[0], measurements[1]
    ops_ratio = (
        (large.num_edges + large.num_nodes * large.k)
        / (small.num_edges + small.num_nodes * small.k)
    )
    time_ratio = large.seconds / small.seconds
    assert time_ratio < 3.5 * ops_ratio

    # k sweep: k=64 costs more than k=4 but sub-quadratically in k.
    k4 = next(m for m in measurements if m.k == 4)
    k64 = next(m for m in measurements if m.k == 64)
    assert k64.seconds < 30 * k4.seconds

    benchmark.extra_info["predicted_paper_seconds"] = round(
        extrapolated["predicted_paper_seconds"], 1
    )
    benchmark.extra_info["paper_reported_seconds"] = 1100.0
    benchmark.extra_info["edges_per_second"] = int(
        result.edges_per_second
    )
