"""repro: a reproduction of *Towards a property graph generator for
benchmarking* (Prat-Pérez et al., 2017) — the DataSynth framework.

The package implements, in pure Python (numpy-vectorised):

* the DataSynth generation pipeline — schema DSL, dependency analysis,
  in-place property generation over skip-seed PRNG streams, pluggable
  structure generators, and the SBM-Part property-to-node matching
  algorithm (:mod:`repro.core`);
* every structure generator the paper references: R-MAT, LFR, BTER,
  Darwini, plus standard baselines (:mod:`repro.structure`);
* the LDG streaming partitioner and partition metrics
  (:mod:`repro.partitioning`);
* the statistical substrate: distributions, joint distributions,
  CDF comparison metrics (:mod:`repro.stats`);
* the evaluation protocol of Figures 3 and 4 (:mod:`repro.experiments`).

Quickstart::

    from repro import GraphGenerator, social_network_schema

    schema = social_network_schema(num_countries=12)
    graph = GraphGenerator(schema, {"Person": 10_000}, seed=42).generate()
    print(graph.summary())
"""

from .core import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    GraphGenerator,
    NodeType,
    ParallelExecutor,
    PropertyDef,
    PropertyGraph,
    Schema,
    SchemaError,
    execute_parallel,
    sbm_part_match,
)
from .core.dsl import load_schema
from .datasets import social_network_schema
from .prng import RandomStream
from .stats import JointDistribution, compare_joints, empirical_joint
from .tables import EdgeTable, PropertyTable

__version__ = "0.1.0"

__all__ = [
    "Cardinality",
    "CorrelationSpec",
    "EdgeTable",
    "EdgeType",
    "GeneratorSpec",
    "GraphGenerator",
    "JointDistribution",
    "NodeType",
    "ParallelExecutor",
    "PropertyDef",
    "PropertyGraph",
    "PropertyTable",
    "RandomStream",
    "Schema",
    "SchemaError",
    "__version__",
    "compare_joints",
    "empirical_joint",
    "execute_parallel",
    "load_schema",
    "sbm_part_match",
    "social_network_schema",
]
