"""Skip-seed pseudo-random number generation (Myriad-style, Section 4.1).

The public surface is :class:`RandomStream` — a deterministic, seekable
stream whose ``i``-th value is computable in O(1) — plus the seed-derivation
helpers used by the engine to give every property table an independent
stream.
"""

from .splitmix import GOLDEN_GAMMA, hash_string, mix64, splitmix64
from .streams import RandomStream, derive_seed

__all__ = [
    "GOLDEN_GAMMA",
    "RandomStream",
    "derive_seed",
    "hash_string",
    "mix64",
    "splitmix64",
]
