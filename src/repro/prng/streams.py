"""Random-access random number streams.

A :class:`RandomStream` is the concrete realisation of the paper's
``r : (i: Long) -> Long`` function: a deterministic map from an instance
id to a 64-bit random number, independent per stream.  The generation
engine builds one stream per property table so that properties are
mutually independent (Section 4.1 of the paper).

Streams also provide convenience conversions (floats in [0, 1), bounded
integers, permutation sampling) that property and structure generators
need, all vectorised and all derived from the same O(1)-access core.

Two access patterns exist:

* **flat** — one draw per instance id (``uniform(ids)``): one SplitMix
  pass over the id array.
* **ragged** — a *variable* number of draws per instance id
  (``uniform_ragged(ids, lengths)``): instance ``i`` needs
  ``lengths[i]`` draws, e.g. the words of a sentence or the picks of a
  multi-valued property.  The ragged API computes every per-instance
  substream seed and every draw in a single vectorised pass, returning
  a flat array plus segment offsets — bit-identical to building
  ``indexed_substream(i)`` objects one at a time, without the N Python
  objects.
"""

from __future__ import annotations

import numpy as np

from .splitmix import GOLDEN_GAMMA, hash_string, mix64, splitmix64

__all__ = ["RandomStream", "derive_seed"]

_DOUBLE_NORM = 1.0 / (1 << 53)


def derive_seed(root_seed, *names):
    """Derive a child seed from ``root_seed`` and a path of names.

    Successive names are folded in with the stable string hash, so
    ``derive_seed(s, "Person", "country")`` differs from
    ``derive_seed(s, "Person", "name")`` and from
    ``derive_seed(s, "Personcountry")``.
    """
    seed = int(root_seed)
    for name in names:
        seed = hash_string(str(name), seed=seed ^ 0xA5A5A5A5A5A5A5A5)
    return seed & ((1 << 64) - 1)


class RandomStream:
    """A named, seekable stream of pseudo-random numbers.

    Parameters
    ----------
    seed:
        64-bit stream seed.  Streams with different seeds are independent.
    name:
        Optional human-readable label, folded into the seed when given.

    Examples
    --------
    >>> r = RandomStream(42, "Person.country")
    >>> int(r(10)) == int(r(10))        # random access is deterministic
    True
    >>> r.uniform([0, 1, 2]).shape
    (3,)
    """

    __slots__ = ("seed", "name")

    def __init__(self, seed, name=None):
        if name is not None:
            seed = derive_seed(seed, name)
        self.seed = int(seed) & ((1 << 64) - 1)
        self.name = name

    def __repr__(self):
        label = f", name={self.name!r}" if self.name else ""
        return f"RandomStream(seed={self.seed:#x}{label})"

    def __eq__(self, other):
        return isinstance(other, RandomStream) and self.seed == other.seed

    def __hash__(self):
        return hash(("RandomStream", self.seed))

    # -- core contract ----------------------------------------------------

    def __call__(self, index):
        """Return the ``index``-th raw 64-bit number (the paper's ``r(i)``)."""
        return splitmix64(self.seed, index)

    def raw(self, index):
        """Alias of :meth:`__call__` for readability at call sites."""
        return splitmix64(self.seed, index)

    # -- derived draws ----------------------------------------------------

    def uniform(self, index):
        """Uniform float64 in ``[0, 1)`` for each entry of ``index``."""
        bits = splitmix64(self.seed, index)
        return (bits >> np.uint64(11)).astype(np.float64) * _DOUBLE_NORM

    def randint(self, index, low, high):
        """Uniform integer in ``[low, high)`` for each entry of ``index``.

        Uses the multiply-shift bounded-range reduction, which is unbiased
        enough for data generation (bias < 2^-53 via the float path).
        """
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        span = high - low
        u = self.uniform(index)
        return (low + (u * span).astype(np.int64)).astype(np.int64)

    def normal(self, index, mean=0.0, std=1.0):
        """Gaussian draws via the inverse-CDF method (deterministic)."""
        from scipy.special import ndtri

        u = self.uniform(index)
        # Clamp away from {0, 1} so ndtri stays finite.
        u = np.clip(u, 1e-12, 1.0 - 1e-12)
        return mean + std * ndtri(u)

    def substream(self, name):
        """Return an independent stream derived from this one."""
        return RandomStream(derive_seed(self.seed, name))

    def indexed_substream(self, index):
        """Return an independent stream for integer ``index``.

        Used when a single instance needs several draws, e.g. the ``i``-th
        node drawing a variable number of edges: each node gets its own
        substream, keeping the O(1) access property.
        """
        with np.errstate(over="ignore"):
            child = int(
                mix64(np.uint64(self.seed)
                      ^ (np.uint64(index) * GOLDEN_GAMMA))
            )
        return RandomStream(child)

    # -- batched ragged draws ---------------------------------------------

    def indexed_substream_seeds(self, index):
        """Seeds of ``indexed_substream(i)`` for every ``i`` in ``index``.

        One vectorised SplitMix pass replacing N Python stream objects:
        ``indexed_substream_seeds(ids)[j] == indexed_substream(ids[j]).seed``
        bit-for-bit.

        Returns a ``uint64`` array shaped like ``index`` — also for
        zero-length ``index`` (a plain ``[]`` would otherwise pass
        through numpy's float64 default and empty serving pages /
        shards would round-trip with the wrong dtype).

        >>> RandomStream(1).indexed_substream_seeds([]).dtype
        dtype('uint64')
        """
        idx = np.asarray(index)
        if idx.size == 0:
            return np.empty(idx.shape, dtype=np.uint64)
        with np.errstate(over="ignore"):
            return mix64(
                np.uint64(self.seed)
                ^ (idx.astype(np.uint64) * GOLDEN_GAMMA)
            )

    @staticmethod
    def _ragged_offsets(index, lengths):
        index = np.asarray(index, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.shape != index.shape:
            raise ValueError("lengths must align with index")
        if lengths.size and lengths.min() < 0:
            raise ValueError("lengths must be nonnegative")
        offsets = np.zeros(index.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return index, lengths, offsets

    def raw_ragged(self, index, lengths):
        """Raw 64-bit draws, ``lengths[i]`` of them per instance.

        Returns ``(flat, offsets)`` where
        ``flat[offsets[i]:offsets[i + 1]]`` equals
        ``indexed_substream(index[i]).raw(np.arange(lengths[i]))`` —
        the per-instance substream draws, computed as one SplitMix pass
        over the flattened positions.
        """
        index, lengths, offsets = self._ragged_offsets(index, lengths)
        seeds = self.indexed_substream_seeds(index)
        total = int(offsets[-1])
        position = np.arange(total, dtype=np.uint64)
        # Position within each segment: global position minus the
        # segment start, so draw j of instance i indexes its substream
        # at j exactly as the scalar path does.
        position -= np.repeat(
            offsets[:-1].astype(np.uint64), lengths
        )
        with np.errstate(over="ignore"):
            state = (
                np.repeat(seeds, lengths)
                + (position + np.uint64(1)) * GOLDEN_GAMMA
            )
        return mix64(state), offsets

    def uniform_ragged(self, index, lengths):
        """Uniform float64 in ``[0, 1)``, ``lengths[i]`` per instance.

        The ragged counterpart of :meth:`uniform`; see
        :meth:`raw_ragged` for the layout contract.

        >>> r = RandomStream(9, "ragged")
        >>> flat, offsets = r.uniform_ragged([4, 7], [2, 3])
        >>> per_instance = r.indexed_substream(7).uniform(
        ...     np.arange(3, dtype=np.int64))
        >>> bool((flat[offsets[1]:offsets[2]] == per_instance).all())
        True
        """
        bits, offsets = self.raw_ragged(index, lengths)
        flat = (bits >> np.uint64(11)).astype(np.float64)
        flat *= _DOUBLE_NORM
        return flat, offsets

    def permutation(self, n):
        """Deterministic permutation of ``range(n)`` (Fisher-Yates).

        This is the one operation that is inherently sequential; it is used
        only for experiment set-up (random arrival order), never inside the
        in-place generation path.
        """
        perm = np.arange(n, dtype=np.int64)
        # Vectorised draw of all swap targets first, then apply.
        idx = np.arange(n - 1, 0, -1, dtype=np.int64)
        u = self.uniform(idx)
        targets = (u * (idx + 1)).astype(np.int64)
        for pos, tgt in zip(idx, targets):
            perm[pos], perm[tgt] = perm[tgt], perm[pos]
        return perm

    def choice(self, index, weights):
        """Categorical draw by inverse-transform over ``weights``.

        Parameters
        ----------
        index:
            Instance ids (scalar or array).
        weights:
            1-D nonnegative weights; normalised internally.

        Returns
        -------
        int64 array of category indices.
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if (w < 0).any():
            raise ValueError("weights must be nonnegative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        cdf = np.cumsum(w) / total
        u = self.uniform(index)
        return np.searchsorted(cdf, u, side="right").astype(np.int64)
