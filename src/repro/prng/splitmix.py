"""Counter-based pseudo-random number generation with O(1) random access.

The paper borrows Myriad's *skip-seed* PRNG idea: a generator that can
produce the ``i``-th number of a stream directly, without generating the
``i - 1`` numbers before it.  This is the mechanism that makes *in-place*
property generation possible — any worker, on any machine, can regenerate
the property value of instance ``i`` from ``i`` alone.

We implement the skip-seed contract with a counter-based construction in
the spirit of SplitMix64 / Philox: the ``i``-th output is a strong 64-bit
mix of ``seed + i * GOLDEN_GAMMA``.  SplitMix64 passes BigCrush and its
outputs for distinct counters are statistically independent, which is all
the generation pipeline requires.

All functions are vectorised: they accept either Python ints or numpy
``uint64`` arrays and return the same shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GOLDEN_GAMMA",
    "splitmix64",
    "mix64",
    "hash_string",
]

#: Weyl-sequence increment used by SplitMix64 (2^64 / phi, odd).
GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)

_MIX_MUL_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MUL_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)

_U64_MASK = (1 << 64) - 1


def mix64(z):
    """Apply the SplitMix64 finaliser to ``z``.

    This is a bijective avalanche mix on 64 bits: every input bit affects
    every output bit with probability ~1/2.  ``z`` may be a Python int or
    a numpy array of ``uint64``.
    """
    z = np.asarray(z, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _SHIFT_30)) * _MIX_MUL_1
        z = (z ^ (z >> _SHIFT_27)) * _MIX_MUL_2
        z = z ^ (z >> _SHIFT_31)
    return z


def splitmix64(seed, index):
    """Return the ``index``-th output of the SplitMix64 stream ``seed``.

    Equivalent to seeding SplitMix64 with ``seed`` and drawing
    ``index + 1`` numbers, but in O(1): the state after ``index`` steps is
    ``seed + (index + 1) * GOLDEN_GAMMA`` by construction.

    Parameters
    ----------
    seed:
        Stream identifier (any 64-bit integer).
    index:
        Position in the stream; scalar or numpy integer array.

    Returns
    -------
    numpy.uint64 scalar or array of the same shape as ``index``.
    """
    idx = np.asarray(index, dtype=np.uint64)
    s = np.uint64(int(seed) & _U64_MASK)
    with np.errstate(over="ignore"):
        state = s + (idx + np.uint64(1)) * GOLDEN_GAMMA
    return mix64(state)


def hash_string(text, seed=0):
    """Hash ``text`` to a stable 64-bit integer (FNV-1a, then mixed).

    Used to derive independent sub-stream seeds from human-readable task
    names, e.g. ``hash_string("Person.country")``.  Stability across runs
    and Python processes is required (so the built-in ``hash`` is not
    usable — it is salted per process).
    """
    h = 0xCBF29CE484222325 ^ (int(seed) & _U64_MASK)
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & _U64_MASK
    return int(mix64(np.uint64(h)))
