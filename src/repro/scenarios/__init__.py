"""Declarative scenario layer: recipes → compiled workloads → graded
reports.

A *scenario* is a YAML/JSON recipe naming everything a workload needs —
node/edge types with bound generators, scale anchors, export settings,
validation thresholds.  The layer has four parts:

* :mod:`repro.scenarios.spec` — the stdlib-only recipe parser and the
  key registry (single source of truth for validation, the CLI's
  ``describe``, and the docs reference table);
* :mod:`repro.scenarios.compile` — lowers a recipe onto the core
  :class:`~repro.core.schema.Schema` / engine objects and derives the
  graded audit;
* :mod:`repro.scenarios.report` — pass/warn/fail per check, one
  overall grade, text + JSON rendering;
* :mod:`repro.scenarios.zoo` — the built-in recipe catalog.

End-to-end::

    from repro.scenarios import load_zoo, compile_scenario, run_scenario

    compiled = compile_scenario(load_zoo("social_network"),
                                scale={"Person": 2_000})
    graph, report, written = run_scenario(compiled, workers=2,
                                          out_dir="out/")
    print(report)            # graded: [pass]/[WARN]/[FAIL] + grade A–F
"""

from .compile import CompiledScenario, compile_scenario, run_scenario
from .report import (
    Grade,
    GradedCheck,
    GradedReport,
    GradedResult,
    run_graded,
)
from .spec import (
    RECIPE_FIELDS,
    Field,
    ScenarioError,
    ScenarioSpec,
    load_recipe,
    parse_recipe_text,
    recipe_reference_rows,
    validate_recipe,
)
from .zoo import load_zoo, zoo_dir, zoo_names, zoo_specs

__all__ = [
    "CompiledScenario",
    "Field",
    "Grade",
    "GradedCheck",
    "GradedReport",
    "GradedResult",
    "RECIPE_FIELDS",
    "ScenarioError",
    "ScenarioSpec",
    "compile_scenario",
    "load_recipe",
    "load_zoo",
    "parse_recipe_text",
    "recipe_reference_rows",
    "run_graded",
    "run_scenario",
    "validate_recipe",
    "zoo_dir",
    "zoo_names",
    "zoo_specs",
]
