"""Lower scenario recipes onto the core schema/engine objects.

The compiler turns a validated :class:`~repro.scenarios.spec.
ScenarioSpec` into the exact objects the imperative API uses — a
:class:`~repro.core.schema.Schema`, a scale dict, and a list of
:class:`~repro.scenarios.report.GradedCheck` — so a recipe and a
hand-built script drive *the same* engine:

    recipe (YAML) ──compile_scenario──► CompiledScenario
        .schema  : core Schema (nodes, edges, correlations)
        .scale   : scale anchors (recipe ∪ overrides)
        .checks(): graded validation derived from schema + thresholds
    run_scenario(compiled, workers=N, out_dir=...) ──► (graph, report)

``$constructor`` values — the recipe-side escape hatch for live Python
objects — are resolved here:

``{$zipf: {exponent, max}}`` and friends
    degree distributions (:mod:`repro.stats.distributions`);
``{$homophily: {affinity}}`` / ``{$affinity: {affinity}}`` /
``{$matrix: [[...], ...]}``
    joint distributions for correlations and ``attributed_sbm``,
    with marginals taken from the correlated categorical property;
``{$dataset: {name, limit}}``
    embedded value tables (countries, names, interests, ...);
``{$scale: Type}``
    the *final* scale anchor of a node type (recipe ∪ overrides) —
    for structure parameters that must track a count, e.g. a
    bipartite ``head_nodes`` tied to the head type's anchor, so
    rescaled runs (smoke clamps, ``--scale`` overrides) stay
    consistent without editing the recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import GraphGenerator
from ..core.schema import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from ..validation import (
    CardinalityCheck,
    DateOrderingCheck,
    DegreeDistributionCheck,
    JointDistributionCheck,
    MarginalDistributionCheck,
    UniquenessCheck,
)
from .report import GradedCheck, run_graded
from .spec import ScenarioError, ScenarioSpec

__all__ = [
    "CompiledScenario",
    "compile_scenario",
    "run_scenario",
]


# ---------------------------------------------------------------------------
# $constructor resolution
# ---------------------------------------------------------------------------

def _require_args(kind, args, required, optional=()):
    if not isinstance(args, dict):
        raise ScenarioError(
            f"${kind} expects a mapping of arguments, got {args!r}"
        )
    missing = [key for key in required if key not in args]
    unknown = [
        key for key in args
        if key not in required and key not in optional
    ]
    if missing or unknown:
        problems = []
        if missing:
            problems.append(f"missing {missing}")
        if unknown:
            problems.append(f"unknown {unknown}")
        raise ScenarioError(
            f"${kind}: {'; '.join(problems)} "
            f"(takes {sorted(set(required) | set(optional))})"
        )
    return args


def _make_distribution(kind, args):
    from ..stats import (
        Constant,
        Geometric,
        Poisson,
        PowerLaw,
        TruncatedGeometric,
        Uniform,
        Zipf,
    )

    if kind == "zipf":
        args = _require_args(kind, args, ("exponent", "max"))
        return Zipf(float(args["exponent"]), int(args["max"]))
    if kind == "uniform_degree":
        args = _require_args(kind, args, ("max",))
        return Uniform(int(args["max"]))
    if kind == "geometric":
        args = _require_args(kind, args, ("p", "max"),
                             optional=("truncated",))
        cls = (
            TruncatedGeometric if args.get("truncated", True)
            else Geometric
        )
        return cls(float(args["p"]), int(args["max"]))
    if kind == "poisson":
        args = _require_args(kind, args, ("lam", "max"))
        return Poisson(float(args["lam"]), int(args["max"]))
    if kind == "powerlaw":
        args = _require_args(kind, args, ("gamma", "xmin", "xmax"))
        return PowerLaw(
            float(args["gamma"]), int(args["xmin"]), int(args["xmax"])
        )
    if kind == "constant_degree":
        args = _require_args(kind, args, ("value",), optional=("max",))
        value = int(args["value"])
        return Constant(value, int(args.get("max", value)))
    return None


def _make_dataset(args):
    from ..datasets import (
        INTERESTS,
        TOPICS,
        VOCABULARY,
        conditional_name_table,
        country_names,
        country_weights,
    )

    args = _require_args("dataset", args, ("name",),
                         optional=("limit",))
    name = args["name"]
    tables = {
        "countries": country_names,
        "country_weights": country_weights,
        "interests": lambda: list(INTERESTS),
        "topics": lambda: list(TOPICS),
        "vocabulary": lambda: list(VOCABULARY),
        "name_table": conditional_name_table,
    }
    if name not in tables:
        raise ScenarioError(
            f"$dataset: unknown dataset {name!r}; "
            f"available: {sorted(tables)}"
        )
    value = tables[name]()
    limit = args.get("limit")
    if limit is not None:
        if name == "name_table":
            raise ScenarioError("$dataset: name_table takes no limit")
        value = value[: int(limit)]
    return value


class _JointContext:
    """Marginal lookup for $homophily/$affinity inside an edge spec."""

    def __init__(self, spec, edge_name):
        self.spec = spec
        self.edge_name = edge_name

    def _categorical(self, type_name, prop_name, where):
        nodes = self.spec.nodes
        prop = (
            nodes.get(type_name, {})
            .get("properties", {})
            .get(prop_name)
        )
        if not prop or prop.get("generator") != "categorical":
            raise ScenarioError(
                f"{where}: property {type_name}.{prop_name} must be "
                "a 'categorical' generator with values/weights to "
                "derive a joint marginal"
            )
        params = _resolve_value(
            prop.get("params", {}), self.spec, self.edge_name
        )
        values = params.get("values")
        if values is None:
            raise ScenarioError(
                f"{where}: categorical {type_name}.{prop_name} "
                "declares no values"
            )
        weights = params.get("weights")
        if weights is None:
            weights = [1.0] * len(values)
        weights = np.asarray(weights, dtype=np.float64)
        return list(values), weights / weights.sum()

    def tail_marginal(self, where):
        edge = self.spec.edges[self.edge_name]
        corr = edge.get("correlation") or {}
        prop = corr.get("property")
        if prop is None:
            raise ScenarioError(
                f"{where}: needs `correlation.property` on edge "
                f"{self.edge_name!r} to derive the marginal"
            )
        return self._categorical(edge["tail"], prop, where)

    def head_marginal(self, where):
        edge = self.spec.edges[self.edge_name]
        corr = edge.get("correlation") or {}
        prop = corr.get("head_property") or corr.get("property")
        return self._categorical(edge["head"], prop, where)


def _make_joint(kind, args, spec, edge_name, bipartite):
    from ..stats import JointDistribution, homophily_joint

    where = f"edges.{edge_name}.${kind}"
    context = _JointContext(spec, edge_name)
    if kind == "homophily":
        args = _require_args(kind, args, ("affinity",),
                             optional=("weights",))
        if bipartite:
            # A homophilous joint is square, so both endpoint domains
            # must agree — catch the mismatch here with a recipe path
            # instead of deep inside the matching step.
            tail_values, _ = context.tail_marginal(where)
            head_values, _ = context.head_marginal(where)
            if list(tail_values) != list(head_values):
                raise ScenarioError(
                    f"{where}: tail and head categories differ "
                    f"({len(tail_values)} vs {len(head_values)} "
                    "values); use $matrix for asymmetric domains"
                )
        if "weights" in args:
            weights = np.asarray(args["weights"], dtype=np.float64)
            marginal = weights / weights.sum()
        else:
            _, marginal = context.tail_marginal(where)
        joint = homophily_joint(marginal, float(args["affinity"]))
        return joint.matrix if bipartite else joint
    if kind == "affinity":
        args = _require_args(kind, args, ("affinity",))
        tail_values, tail_m = context.tail_marginal(where)
        head_values, head_m = context.head_marginal(where)
        if list(tail_values) != list(head_values):
            raise ScenarioError(
                f"{where}: tail and head categories differ; use "
                "$matrix for asymmetric domains"
            )
        a = float(args["affinity"])
        matrix = (
            a * np.diag(tail_m)
            + (1.0 - a) * np.outer(tail_m, head_m)
        )
        matrix = matrix / matrix.sum()
        if bipartite:
            return matrix
        return JointDistribution((matrix + matrix.T) / 2.0)
    if kind == "matrix":
        matrix = np.asarray(args, dtype=np.float64)
        if matrix.ndim != 2:
            raise ScenarioError(
                f"{where}: $matrix needs a 2-D list of rows"
            )
        if bipartite:
            return matrix / matrix.sum()
        return JointDistribution(matrix)
    return None


_DISTRIBUTION_KINDS = (
    "zipf", "uniform_degree", "geometric", "poisson", "powerlaw",
    "constant_degree",
)
_JOINT_KINDS = ("homophily", "affinity", "matrix")


def _make_scale_ref(args, scale):
    """``{$scale: Type}`` — the final scale anchor of a node type."""
    if isinstance(args, dict):
        args = _require_args("scale", args, ("type",))["type"]
    if not isinstance(args, str):
        raise ScenarioError(
            f"$scale expects a node-type name, got {args!r}"
        )
    if scale is None:
        raise ScenarioError(
            "$scale is only valid where the final scale is known "
            "(structure / property params)"
        )
    if args not in scale:
        raise ScenarioError(
            f"$scale: no scale anchor for {args!r} "
            f"(anchors: {sorted(scale)})"
        )
    return int(scale[args])


def _resolve_value(value, spec, edge_name=None, bipartite=False,
                   scale=None):
    """Recursively resolve ``$constructor`` mappings inside ``value``."""
    if isinstance(value, list):
        return [
            _resolve_value(v, spec, edge_name, bipartite, scale)
            for v in value
        ]
    if not isinstance(value, dict):
        return value
    if len(value) == 1:
        (key, args), = value.items()
        if isinstance(key, str) and key.startswith("$"):
            kind = key[1:]
            if kind in _DISTRIBUTION_KINDS:
                return _make_distribution(kind, args)
            if kind == "dataset":
                return _make_dataset(args)
            if kind == "scale":
                return _make_scale_ref(args, scale)
            if kind in _JOINT_KINDS:
                if edge_name is None:
                    raise ScenarioError(
                        f"${kind} is only valid inside an edge spec"
                    )
                return _make_joint(
                    kind, _resolve_value(args, spec, edge_name,
                                         bipartite, scale)
                    if kind == "matrix" else args,
                    spec, edge_name, bipartite,
                )
            raise ScenarioError(
                f"unknown constructor ${kind}; available: "
                f"{sorted(('dataset', 'scale') + _DISTRIBUTION_KINDS + _JOINT_KINDS)}"
            )
    return {
        k: _resolve_value(v, spec, edge_name, bipartite, scale)
        for k, v in value.items()
    }


# ---------------------------------------------------------------------------
# Lowering to the core schema
# ---------------------------------------------------------------------------

def _check_generator_names(spec):
    from ..properties.registry import available_property_generators
    from ..structure.registry import available_generators

    pg_names = available_property_generators()
    sg_names = available_generators()
    problems = []
    for type_name, node in spec.nodes.items():
        for prop, body in (node or {}).get("properties", {}).items():
            name = body.get("generator")
            if name not in pg_names:
                problems.append(
                    f"nodes.{type_name}.properties.{prop}: unknown "
                    f"property generator {name!r}"
                )
    for edge_name, edge in spec.edges.items():
        name = edge.get("structure", {}).get("generator")
        if name not in sg_names:
            problems.append(
                f"edges.{edge_name}.structure: unknown structure "
                f"generator {name!r}"
            )
        for prop, body in edge.get("properties", {}).items():
            pg = body.get("generator")
            if pg not in pg_names:
                problems.append(
                    f"edges.{edge_name}.properties.{prop}: unknown "
                    f"property generator {pg!r}"
                )
    if problems:
        raise ScenarioError(
            "invalid recipe: " + "; ".join(problems)
        )


def _compile_properties(owner_path, properties, spec, edge_name=None,
                        scale=None):
    compiled = []
    for name, body in properties.items():
        params = _resolve_value(
            body.get("params", {}), spec, edge_name, scale=scale
        )
        compiled.append(
            PropertyDef(
                name,
                body.get("dtype", "string"),
                GeneratorSpec(body["generator"], params),
                depends_on=tuple(body.get("depends_on", [])),
            )
        )
    return compiled


def _compile_edge(name, edge, spec, scale=None):
    bipartite = edge["tail"] != edge["head"]
    structure = edge["structure"]
    structure_params = _resolve_value(
        structure.get("params", {}), spec, name, bipartite, scale
    )
    correlation = None
    corr = edge.get("correlation")
    if corr:
        joint = _resolve_value(
            corr["joint"], spec, name, bipartite
        )
        if isinstance(joint, dict):
            raise ScenarioError(
                f"edges.{name}.correlation.joint must be a "
                "$homophily / $affinity / $matrix constructor"
            )
        values = corr.get("values")
        if values is None:
            context = _JointContext(spec, name)
            values, _ = context.tail_marginal(
                f"edges.{name}.correlation"
            )
        head_values = None
        if bipartite:
            context = _JointContext(spec, name)
            head_values, _ = context.head_marginal(
                f"edges.{name}.correlation"
            )
        correlation = CorrelationSpec(
            tail_property=corr["property"],
            joint=joint,
            head_property=corr.get("head_property"),
            values=tuple(values) if values is not None else None,
            head_values=(
                tuple(head_values) if head_values is not None
                else None
            ),
        )
    return EdgeType(
        name,
        tail_type=edge["tail"],
        head_type=edge["head"],
        cardinality=Cardinality.parse(
            edge.get("cardinality", "*..*")
        ),
        structure=GeneratorSpec(
            structure["generator"], structure_params
        ),
        properties=_compile_properties(
            f"edges.{name}", edge.get("properties", {}), spec, name,
            scale=scale,
        ),
        correlation=correlation,
        directed=bool(edge.get("directed", False)),
    )


@dataclass
class CompiledScenario:
    """A recipe lowered onto the core objects, ready to run."""

    spec: ScenarioSpec
    schema: Schema
    scale: dict
    seed: int
    name: str = ""
    description: str = ""
    graded_checks: list = field(default_factory=list)
    plants: list = field(default_factory=list)

    def checks(self):
        """The graded validation checks (copy)."""
        return list(self.graded_checks)

    def generator(self, workers=1):
        """A :class:`~repro.core.engine.GraphGenerator` for this
        scenario."""
        return GraphGenerator(
            self.schema, self.scale, seed=self.seed, workers=workers
        )


def _graded_checks(spec, schema):
    """Derive the graded audit from the schema + recipe thresholds."""
    checks = []
    joint_warn = spec.threshold("joint_ks", "warn")
    joint_fail = spec.threshold("joint_ks", "fail")
    tv_warn = spec.threshold("marginal_tv", "warn")
    tv_fail = spec.threshold("marginal_tv", "fail")

    for edge in schema.edge_types.values():
        if edge.cardinality is not Cardinality.MANY_TO_MANY:
            checks.append(GradedCheck(CardinalityCheck(edge.name)))
        if edge.correlation is not None \
                and edge.correlation.head_property is None:
            checks.append(GradedCheck(
                JointDistributionCheck(edge.name, max_ks=joint_fail),
                JointDistributionCheck(edge.name, max_ks=joint_warn),
            ))
        for prop in edge.properties:
            if prop.generator is None \
                    or prop.generator.name != "after_dependency":
                continue
            tail_prop = head_prop = None
            for dep in prop.depends_on:
                if dep.startswith("tail."):
                    tail_prop = dep[len("tail."):]
                elif dep.startswith("head."):
                    head_prop = dep[len("head."):]
            if tail_prop or head_prop:
                checks.append(GradedCheck(DateOrderingCheck(
                    edge.name, prop.name,
                    tail_property=tail_prop, head_property=head_prop,
                )))

    for node in schema.node_types.values():
        for prop in node.properties:
            if prop.generator is None \
                    or prop.generator.name != "categorical":
                continue
            params = prop.generator.params
            if "values" in params and params.get("weights") is not None:
                checks.append(GradedCheck(
                    MarginalDistributionCheck(
                        node.name, prop.name, params["values"],
                        params["weights"], tolerance=tv_fail,
                    ),
                    MarginalDistributionCheck(
                        node.name, prop.name, params["values"],
                        params["weights"], tolerance=tv_warn,
                    ),
                ))

    degrees = spec.validation.get("degrees") or {}
    for edge_name, bounds in degrees.items():
        fail = DegreeDistributionCheck(
            edge_name,
            min_mean=bounds.get("min_mean"),
            max_mean=bounds.get("max_mean"),
            max_degree=bounds.get("max_degree"),
        )
        warn = None
        if bounds.get("warn_min_mean") is not None \
                or bounds.get("warn_max_mean") is not None:
            warn = DegreeDistributionCheck(
                edge_name,
                min_mean=bounds.get("warn_min_mean"),
                max_mean=bounds.get("warn_max_mean"),
            )
        checks.append(GradedCheck(fail, warn))

    for column in spec.validation.get("unique") or []:
        type_name, _, prop_name = str(column).partition(".")
        if not prop_name:
            raise ScenarioError(
                f"validation.unique: expected 'Type.property', "
                f"got {column!r}"
            )
        checks.append(GradedCheck(
            UniquenessCheck(type_name, prop_name)
        ))
    return checks


def compile_scenario(spec, scale=None, seed=None):
    """Lower ``spec`` (a :class:`ScenarioSpec`, recipe dict, or recipe
    text) to a :class:`CompiledScenario`.

    ``scale`` entries override the recipe's anchors; ``seed`` overrides
    the recipe's seed.
    """
    if isinstance(spec, str):
        spec = ScenarioSpec.from_text(spec)
    elif isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    _check_generator_names(spec)
    final_scale = dict(spec.scale)
    if scale:
        final_scale.update(scale)
    if not final_scale:
        raise ScenarioError(
            f"scenario {spec.name!r} has no scale anchors; add a "
            "`scale:` block or pass --scale TYPE=COUNT"
        )
    node_types = [
        NodeType(
            name,
            properties=_compile_properties(
                f"nodes.{name}",
                (node or {}).get("properties", {}),
                spec,
                scale=final_scale,
            ),
        )
        for name, node in spec.nodes.items()
    ]
    schema = Schema(node_types=node_types)
    for name, edge in spec.edges.items():
        schema.add_edge_type(
            _compile_edge(name, edge, spec, scale=final_scale)
        )
    final_seed = spec.seed if seed is None else int(seed)
    plants = []
    if spec.plants:
        from ..planting import PlantingError, compile_plants

        try:
            plants = compile_plants(spec.plants, schema, final_seed)
        except PlantingError as exc:
            raise ScenarioError(f"invalid recipe: {exc}") from None
    return CompiledScenario(
        spec=spec,
        schema=schema,
        scale=final_scale,
        seed=final_seed,
        name=spec.name,
        description=spec.description,
        graded_checks=_graded_checks(spec, schema),
        plants=plants,
    )


def run_scenario(compiled, workers=1, out_dir=None, formats=None,
                 chunk_size=None, compress=None, validate=True,
                 shard_rows=None, memory_budget=None,
                 backend="thread", spool_dir=None, resume=False,
                 retries=0, faults=None):
    """Generate, export, and grade a compiled scenario.

    Parameters
    ----------
    compiled:
        a :class:`CompiledScenario` (or anything
        :func:`compile_scenario` accepts).
    workers:
        process-pool size; output is bit-identical for any value.
    out_dir:
        export directory; ``None`` skips export.  The first format
        streams *during* generation, remaining formats export from the
        finished graph — all byte-identical to a serial run.
    formats, chunk_size, compress:
        override the recipe's ``export`` block.
    validate:
        run the graded audit (returns ``None`` report when False).
    shard_rows, memory_budget:
        either one switches to the out-of-core
        :class:`~repro.core.sharded.ShardedExecutor`: the whole
        pipeline runs per id-range shard with disk-spooled tables, so
        peak memory is bounded by the shard size instead of the graph
        size (byte-identical output; see docs/scaling.md).  The graded
        audit materialises the graph, so pass ``validate=False`` for
        graphs that genuinely do not fit in memory.
    backend:
        sharded worker backend, ``"thread"`` (default) or
        ``"process"`` — processes sidestep the GIL for CPU-bound
        pipelines and also parallelise export formatting; output
        bytes are identical either way.
    spool_dir, resume, retries, faults:
        fault-tolerance controls for sharded mode, passed through to
        :class:`~repro.core.sharded.ShardedExecutor`: an explicit
        spool (preserved on failure), checkpoint resume from it,
        per-shard retry budget, and a deterministic fault plan (see
        docs/robustness.md).  ``resume=True`` implies sharded mode.

    Returns ``(graph, report, written)`` — the generated
    :class:`~repro.core.result.PropertyGraph` (a
    :class:`~repro.core.sharded.ShardedResult` in sharded mode), the
    :class:`~repro.scenarios.report.GradedReport` (or ``None``), and
    the list of written export paths.
    """
    import os

    from ..io import export_graph, make_sink

    if not isinstance(compiled, CompiledScenario):
        compiled = compile_scenario(compiled)
    spec = compiled.spec
    formats = list(formats or spec.export_formats or ["csv"])
    chunk_size = (
        spec.export_chunk_size if chunk_size is None else chunk_size
    )
    compress = (
        spec.export_compress if compress is None else compress
    )
    sharded = (shard_rows is not None or memory_budget is not None
               or resume)
    executor = None
    if sharded:
        from ..core.sharded import ShardedExecutor

        executor = ShardedExecutor(
            compiled.schema, compiled.scale, seed=compiled.seed,
            shard_rows=shard_rows, memory_budget=memory_budget,
            workers=workers, backend=backend, spool_dir=spool_dir,
            resume=resume, retries=retries, faults=faults,
        )
        # Export chunks must not exceed the shard size, or the sink
        # would pull whole-table slices back into memory.  Chunk size
        # never changes output bytes, so this keeps byte-identity.
        from ..io import DEFAULT_CHUNK_SIZE

        chunk_size = min(
            chunk_size or DEFAULT_CHUNK_SIZE, executor.shard_rows
        )
    plants = list(getattr(compiled, "plants", []) or [])
    written = []
    sink = None
    if out_dir is not None and not plants:
        # Plants append edges after the generated block, so planted
        # runs cannot stream the primary format mid-generation; they
        # export from the finished overlay graph below instead.
        primary_dir = (
            os.path.join(out_dir, formats[0])
            if len(formats) > 1 else out_dir
        )
        sink = make_sink(
            formats[0], primary_dir,
            chunk_size=chunk_size, compress=compress,
        )
    if sharded:
        graph = executor.run(sink=sink)
    else:
        graph = compiled.generator(workers=workers).generate(sink=sink)
    if plants:
        from ..planting import plan_plants, planted_graph

        plan = plan_plants(
            plants,
            graph.node_counts,
            {
                name: len(table)
                for name, table in graph.edge_tables.items()
            },
            compiled.seed,
        )
        graph = planted_graph(graph, plan)
        if out_dir is not None:
            import json

            os.makedirs(out_dir, exist_ok=True)
            gt_path = os.path.join(out_dir, "ground_truth.json")
            with open(gt_path, "w", encoding="utf-8") as handle:
                json.dump(plan.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            written.append(gt_path)
            extra_manifest = {"planting": plan.to_dict()}
            for index, fmt in enumerate(formats):
                fmt_dir = (
                    os.path.join(out_dir, fmt)
                    if len(formats) > 1 else out_dir
                )
                fmt_sink = make_sink(
                    fmt, fmt_dir,
                    chunk_size=chunk_size, compress=compress,
                )
                fmt_sink.extra_manifest = extra_manifest
                written.extend(export_graph(graph, fmt_sink))
    if sink is not None:
        written.extend(sink.written)
        for extra in formats[1:]:
            extra_sink = make_sink(
                extra, os.path.join(out_dir, extra),
                chunk_size=chunk_size, compress=compress,
            )
            written.extend(export_graph(graph, extra_sink))
    report = None
    if validate:
        # The audit computes whole-table statistics (joints, degree
        # histograms), so it needs in-memory tables.
        target = (
            graph.materialize() if sharded or plants else graph
        )
        report = run_graded(
            target, compiled.graded_checks,
            scenario=compiled.name, seed=compiled.seed,
            scale=compiled.scale,
        )
    return graph, report, written
