"""The scenario zoo: named, built-in workload recipes.

Recipes live as ``*.yaml`` files next to this module (``zoo/``); each
is a complete declarative workload — schema, scale, export defaults,
validation thresholds — runnable end-to-end with::

    repro scenario run social_network --workers 2 --out out/

>>> names = zoo_names()
>>> "social_network" in names and len(names) >= 8
True
>>> spec = load_zoo("social_network")
>>> spec.name
'social_network'
"""

from __future__ import annotations

import os

from .spec import ScenarioError, load_recipe

__all__ = ["load_zoo", "zoo_dir", "zoo_names", "zoo_specs"]


def zoo_dir():
    """Directory holding the built-in recipe files."""
    return os.path.join(os.path.dirname(__file__), "zoo")


def zoo_names():
    """Sorted names of the built-in scenarios."""
    names = []
    for entry in os.listdir(zoo_dir()):
        base, ext = os.path.splitext(entry)
        if ext in (".yaml", ".yml", ".json"):
            names.append(base)
    return sorted(names)


def _zoo_path(name):
    for ext in (".yaml", ".yml", ".json"):
        path = os.path.join(zoo_dir(), name + ext)
        if os.path.exists(path):
            return path
    raise ScenarioError(
        f"unknown scenario {name!r}; "
        f"built-in: {', '.join(zoo_names())} "
        "(or pass a recipe file path)"
    )


def load_zoo(name):
    """Load a built-in recipe by name (``ScenarioSpec``)."""
    return load_recipe(_zoo_path(name))


def zoo_specs():
    """All built-in recipes, as ``(name, ScenarioSpec)`` pairs."""
    return [(name, load_zoo(name)) for name in zoo_names()]
