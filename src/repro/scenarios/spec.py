"""Scenario recipe documents: parsing, validation, and the key registry.

A *scenario recipe* is a declarative YAML (or JSON) document describing
a complete workload: node/edge types with bound generators, scale
anchors, export settings, and graded validation thresholds.  This
module is deliberately **stdlib-only** — recipes parse with no
third-party dependency:

* :func:`parse_recipe_text` — a small indentation-based parser for the
  YAML subset recipes use (nested mappings, block and inline lists,
  inline mappings, scalars, comments).  JSON documents parse too (the
  text is tried as JSON first).
* :data:`RECIPE_FIELDS` — the registry of every recipe key the
  compiler accepts: path, type, default, and documentation.  It is the
  **single source of truth**: recipe validation, ``repro scenario
  describe`` and the reference table in ``docs/scenarios.md`` are all
  generated from it (``tests/test_scenarios.py`` asserts the doc is in
  sync).
* :func:`validate_recipe` / :func:`load_recipe` — structural
  validation with precise error paths (``edges.knows: unknown key
  'struct'``), returning a :class:`ScenarioSpec`.

Values needing live Python objects (degree distributions, joint
matrices, embedded datasets) are written as single-key ``$constructor``
mappings — ``{$zipf: {exponent: 1.3, max: 30}}`` — resolved later by
:mod:`repro.scenarios.compile`; the parser treats them as plain
mappings.

Examples
--------
>>> recipe = parse_recipe_text('''
... scenario: tiny
... nodes:
...   Person:
...     properties:
...       age: {dtype: long, generator: uniform_int,
...             params: {low: 18, high: 80}}
... scale: {Person: 100}
... ''')
>>> recipe["scenario"]
'tiny'
>>> recipe["nodes"]["Person"]["properties"]["age"]["params"]["high"]
80
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field

__all__ = [
    "Field",
    "RECIPE_FIELDS",
    "ScenarioError",
    "ScenarioSpec",
    "load_recipe",
    "parse_recipe_text",
    "recipe_reference_markdown",
    "recipe_reference_rows",
    "validate_recipe",
]


class ScenarioError(ValueError):
    """Raised for unparsable or invalid scenario recipes."""


# ---------------------------------------------------------------------------
# YAML-subset parser
# ---------------------------------------------------------------------------

def _strip_comment(line):
    """Remove a ``#`` comment, respecting quotes.

    As in YAML, ``#`` only starts a comment at the beginning of the
    line or after whitespace — ``a#b`` is a plain scalar.
    """
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#" and (i == 0 or line[i - 1] in " \t"):
            return line[:i]
    return line


def _split_top(text, sep=","):
    """Split ``text`` on ``sep`` at bracket/quote depth zero."""
    parts, depth, quote, start = [], 0, None, 0
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _find_colon(text):
    """Index of the first ``:`` key separator at depth zero (or -1).

    A colon only separates a key when it ends the text or is followed
    by whitespace — so plain scalars like ``"*..*"`` or URLs survive.
    """
    depth, quote = 0, None
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 == len(text) or text[i + 1] in " \t":
                return i
    return -1


def _parse_scalar(text):
    text = text.strip()
    if not text:
        return None
    if text[0] in "'\"":
        if len(text) < 2 or text[-1] != text[0]:
            raise ScenarioError(f"unterminated string: {text!r}")
        return text[1:-1]
    low = text.lower()
    if low in ("null", "~", "none"):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_inline(text):
    """Parse an inline value: list, mapping, or scalar."""
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ScenarioError(f"unterminated list: {text!r}")
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_inline(part) for part in _split_top(inner)]
    if text.startswith("{"):
        if not text.endswith("}"):
            raise ScenarioError(f"unterminated mapping: {text!r}")
        inner = text[1:-1].strip()
        if not inner:
            return {}
        result = {}
        for part in _split_top(inner):
            colon = _find_colon(part.strip())
            if colon < 0:
                raise ScenarioError(
                    f"inline mapping entry needs 'key: value': {part!r}"
                )
            key = _parse_scalar(part.strip()[:colon])
            if key in result:
                raise ScenarioError(
                    f"duplicate key {key!r} in inline mapping "
                    f"{text!r}"
                )
            result[key] = _parse_inline(part.strip()[colon + 1:])
        return result
    return _parse_scalar(text)


@dataclass
class _Line:
    number: int
    indent: int
    content: str


def _bracket_depth(text):
    """Unclosed ``[``/``{`` depth of ``text`` (quotes respected)."""
    depth, quote = 0, None
    for ch in text:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
    return depth


def _logical_lines(text):
    """Comment-stripped, non-blank lines; inline values whose brackets
    stay open continue onto the following physical lines."""
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ScenarioError(
                f"line {number}: tabs are not allowed in indentation"
            )
        indent = len(stripped) - len(stripped.lstrip())
        content = stripped.strip()
        if lines and _bracket_depth(lines[-1].content) > 0:
            lines[-1] = _Line(
                lines[-1].number, lines[-1].indent,
                lines[-1].content + " " + content,
            )
            continue
        lines.append(_Line(number, indent, content))
    if lines and _bracket_depth(lines[-1].content) > 0:
        raise ScenarioError(
            f"line {lines[-1].number}: unclosed bracket at end of "
            "document"
        )
    return lines


def _parse_block(lines, pos, indent):
    """Parse the block starting at ``lines[pos]`` with ``indent``."""
    if lines[pos].content.startswith("- ") or lines[pos].content == "-":
        return _parse_list_block(lines, pos, indent)
    return _parse_map_block(lines, pos, indent)


def _parse_list_block(lines, pos, indent):
    items = []
    while pos < len(lines) and lines[pos].indent == indent:
        line = lines[pos]
        if not (line.content.startswith("- ") or line.content == "-"):
            raise ScenarioError(
                f"line {line.number}: expected a '- ' list item"
            )
        rest = line.content[1:].strip()
        pos += 1
        if rest:
            colon = _find_colon(rest)
            if colon >= 0:
                # "- key: value" single-pair mapping item (optionally
                # continued by a deeper block).
                value, pos = _parse_map_entry_value(
                    rest, colon, lines, pos, indent + 2
                )
                item = {_parse_scalar(rest[:colon]): value}
                while pos < len(lines) and lines[pos].indent > indent:
                    extra = lines[pos]
                    ecolon = _find_colon(extra.content)
                    if ecolon < 0:
                        raise ScenarioError(
                            f"line {extra.number}: expected 'key: value'"
                        )
                    value, pos = _parse_map_entry_value(
                        extra.content, ecolon, lines, pos + 1,
                        extra.indent,
                    )
                    item[_parse_scalar(extra.content[:ecolon])] = value
                items.append(item)
            else:
                items.append(_parse_inline(rest))
        else:
            if pos >= len(lines) or lines[pos].indent <= indent:
                items.append(None)
            else:
                item, pos = _parse_block(lines, pos, lines[pos].indent)
                items.append(item)
    if pos < len(lines) and lines[pos].indent > indent:
        raise ScenarioError(
            f"line {lines[pos].number}: unexpected indentation"
        )
    return items, pos


def _parse_map_entry_value(content, colon, lines, pos, indent):
    """Value of ``key: ...`` — inline, or the following deeper block."""
    inline = content[colon + 1:].strip()
    if inline:
        return _parse_inline(inline), pos
    if pos < len(lines) and lines[pos].indent > indent:
        return _parse_block(lines, pos, lines[pos].indent)
    return None, pos


def _parse_map_block(lines, pos, indent):
    mapping = {}
    while pos < len(lines) and lines[pos].indent == indent:
        line = lines[pos]
        colon = _find_colon(line.content)
        if colon < 0:
            raise ScenarioError(
                f"line {line.number}: expected 'key: value', "
                f"got {line.content!r}"
            )
        key = _parse_scalar(line.content[:colon])
        if key in mapping:
            raise ScenarioError(
                f"line {line.number}: duplicate key {key!r}"
            )
        value, pos = _parse_map_entry_value(
            line.content, colon, lines, pos + 1, indent
        )
        mapping[key] = value
    if pos < len(lines) and lines[pos].indent > indent:
        raise ScenarioError(
            f"line {lines[pos].number}: unexpected indentation"
        )
    return mapping, pos


def parse_recipe_text(text):
    """Parse a recipe document (YAML subset or JSON) into plain dicts.

    The YAML subset: indentation-nested mappings, ``- item`` list
    blocks, inline ``[a, b]`` lists and ``{k: v}`` mappings, scalars
    (int, float, bool, null, quoted/unquoted strings), ``#`` comments.
    No anchors, no multi-document streams, no block scalars.

    >>> parse_recipe_text("a: 1\\nb: [x, y]")
    {'a': 1, 'b': ['x', 'y']}
    >>> parse_recipe_text('{"a": 1}')
    {'a': 1}
    """
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            pass  # fall through to the YAML-subset parser
    lines = _logical_lines(text)
    if not lines:
        raise ScenarioError("empty recipe document")
    root_indent = lines[0].indent
    value, pos = _parse_block(lines, 0, root_indent)
    if pos != len(lines):
        raise ScenarioError(
            f"line {lines[pos].number}: content outside the root block"
        )
    return value


# ---------------------------------------------------------------------------
# Recipe key registry (single source of truth for validation + docs)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Field:
    """One recipe key: dotted path (``<x>`` marks user-named segments),
    accepted type(s), default, and documentation."""

    path: str
    type: str
    default: object = None
    required: bool = False
    description: str = ""
    choices: tuple = ()

    def segments(self):
        return tuple(self.path.split("."))


RECIPE_FIELDS = (
    Field("scenario", "str", required=True,
          description="Scenario name (identifier; names output files "
                      "and reports)."),
    Field("description", "str", default="",
          description="One-line human description, shown by "
                      "`scenario list` / `describe`."),
    Field("seed", "int", default=0,
          description="Default root seed; `--seed` overrides."),
    Field("tags", "list[str]", default=[],
          description="Free-form labels, shown by `scenario list`."),
    Field("nodes", "map", required=True,
          description="Node types: maps each type name to its spec."),
    Field("nodes.<type>", "map", required=True,
          description="One node type."),
    Field("nodes.<type>.properties", "map", default={},
          description="Properties of the node type, by name."),
    Field("nodes.<type>.properties.<prop>", "map", required=True,
          description="One property definition."),
    Field("nodes.<type>.properties.<prop>.dtype", "str",
          default="string",
          choices=("string", "long", "double", "date", "bool"),
          description="Logical value type."),
    Field("nodes.<type>.properties.<prop>.generator", "str",
          required=True,
          description="Property-generator name from "
                      "`repro.properties.registry` (e.g. categorical, "
                      "uniform_int, date_range, template)."),
    Field("nodes.<type>.properties.<prop>.params", "map", default={},
          description="Generator parameters; values may use "
                      "$constructors ($zipf, $dataset, ...)."),
    Field("nodes.<type>.properties.<prop>.depends_on", "list[str]",
          default=[],
          description="Sibling properties fed to the generator "
                      "(conditional distributions)."),
    Field("edges", "map", default={},
          description="Edge types: maps each edge name to its spec."),
    Field("edges.<edge>", "map", required=True,
          description="One edge type."),
    Field("edges.<edge>.tail", "str", required=True,
          description="Tail node type (must be declared under "
                      "`nodes`)."),
    Field("edges.<edge>.head", "str", required=True,
          description="Head node type (must be declared under "
                      "`nodes`)."),
    Field("edges.<edge>.cardinality", "str", default="*..*",
          choices=("1..1", "1..*", "*..*"),
          description="Edge cardinality class."),
    Field("edges.<edge>.directed", "bool", default=False,
          description="Directed edge type (affects exports only)."),
    Field("edges.<edge>.structure", "map", required=True,
          description="Structure-generator binding."),
    Field("edges.<edge>.structure.generator", "str", required=True,
          description="SG name from `repro.structure.registry` (e.g. "
                      "lfr, rmat, bter, one_to_many, "
                      "bipartite_configuration, cascade_forest)."),
    Field("edges.<edge>.structure.params", "map", default={},
          description="SG parameters; values may use $constructors."),
    Field("edges.<edge>.correlation", "map", default=None,
          description="Optional property–structure correlation "
                      "(drives SBM-Part matching)."),
    Field("edges.<edge>.correlation.property", "str", required=True,
          description="Tail-type property whose joint must be "
                      "reproduced."),
    Field("edges.<edge>.correlation.head_property", "str",
          default=None,
          description="Head-type property (bipartite edges only)."),
    Field("edges.<edge>.correlation.joint", "map", required=True,
          description="Target joint: {$homophily: {affinity: A}}, "
                      "{$affinity: {affinity: A}} (bipartite) or "
                      "{$matrix: [[...], ...]}."),
    Field("edges.<edge>.correlation.values", "list", default=None,
          description="Explicit category order; defaults to the "
                      "categorical generator's `values`."),
    Field("edges.<edge>.properties", "map", default={},
          description="Edge properties (same shape as node "
                      "properties; `depends_on` may use tail.<prop> / "
                      "head.<prop>)."),
    Field("plants", "map", default={},
          description="Ground-truth pattern plants: maps each plant "
                      "name to its spec (see docs/planting.md)."),
    Field("plants.<plant>", "map", required=True,
          description="One plant: a template injected into the "
                      "generated world with a recorded node map."),
    Field("plants.<plant>.edge", "str", required=True,
          description="Target edge type the template edges are "
                      "appended to (must be monopartite)."),
    Field("plants.<plant>.template", "map", required=True,
          description="Template spec: a grown motif or an explicit "
                      "edge list."),
    Field("plants.<plant>.template.kind", "str", required=True,
          choices=("ring", "star", "clique", "path", "tree", "edges"),
          description="Template shape; `tree` grows a seeded random "
                      "recursive tree, `edges` takes an explicit "
                      "list."),
    Field("plants.<plant>.template.size", "int", default=None,
          description="Node count of a grown motif (not valid with "
                      "kind `edges`)."),
    Field("plants.<plant>.template.edges", "list", default=None,
          description="Explicit [tail, head] pairs over dense local "
                      "ids 0..k-1 (kind `edges` only)."),
    Field("plants.<plant>.count", "int", default=1,
          description="Number of disjoint copies to inject."),
    Field("plants.<plant>.attributes", "map", default={},
          description="Forced node-property values on every plant "
                      "node (candidate-narrowing labels)."),
    Field("plants.<plant>.noise", "map", default={},
          description="Seeded noise rates applied per injected copy."),
    Field("plants.<plant>.noise.delete", "float", default=0.0,
          description="Probability a template edge is dropped."),
    Field("plants.<plant>.noise.rewire", "float", default=0.0,
          description="Probability a surviving edge's head is "
                      "redirected to a random world node."),
    Field("plants.<plant>.noise.corrupt", "float", default=0.0,
          description="Probability a forced attribute is withheld on "
                      "a plant node."),
    Field("scale", "map", required=True,
          description="Scale anchors: node type → count and/or edge "
                      "type → edge count; `--scale` overrides."),
    Field("export", "map", default={},
          description="Default export settings for `scenario run`."),
    Field("export.formats", "list[str]", default=["csv"],
          description="Export formats, first is primary (csv, jsonl, "
                      "edgelist, graphml)."),
    Field("export.chunk_size", "int", default=65536,
          description="Rows per streamed export chunk."),
    Field("export.compress", "bool", default=False,
          description="Gzip the exported files."),
    Field("validation", "map", default={},
          description="Graded-validation thresholds (see "
                      "docs/scenarios.md §Validation)."),
    Field("validation.joint_ks", "map", default={},
          description="KS thresholds for correlated edges: "
                      "{warn: W, fail: F}."),
    Field("validation.joint_ks.warn", "float", default=0.35,
          description="Joint KS above this grades WARN."),
    Field("validation.joint_ks.fail", "float", default=0.6,
          description="Joint KS above this grades FAIL."),
    Field("validation.marginal_tv", "map", default={},
          description="Total-variation thresholds for categorical "
                      "marginals: {warn: W, fail: F}."),
    Field("validation.marginal_tv.warn", "float", default=0.05,
          description="Marginal TV above this grades WARN."),
    Field("validation.marginal_tv.fail", "float", default=0.12,
          description="Marginal TV above this grades FAIL."),
    Field("validation.degrees", "map", default={},
          description="Per-edge degree bands: maps edge name to "
                      "bounds."),
    Field("validation.degrees.<edge>", "map", required=True,
          description="Degree bounds of one edge type."),
    Field("validation.degrees.<edge>.min_mean", "float", default=None,
          description="Mean degree below this grades FAIL."),
    Field("validation.degrees.<edge>.max_mean", "float", default=None,
          description="Mean degree above this grades FAIL."),
    Field("validation.degrees.<edge>.max_degree", "int", default=None,
          description="Peak degree above this grades FAIL."),
    Field("validation.degrees.<edge>.warn_min_mean", "float",
          default=None,
          description="Mean degree below this grades WARN."),
    Field("validation.degrees.<edge>.warn_max_mean", "float",
          default=None,
          description="Mean degree above this grades WARN."),
    Field("validation.unique", "list[str]", default=[],
          description="Type.property columns that must hold unique "
                      "values."),
)

_TYPE_CHECKS = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "map": lambda v: isinstance(v, dict),
    "list": lambda v: isinstance(v, list),
    "list[str]": lambda v: isinstance(v, list)
    and all(isinstance(x, str) for x in v),
}


def _field_index():
    """Map of path-tuple -> Field, and of parent -> child key names."""
    by_path = {}
    children = {}
    for field in RECIPE_FIELDS:
        segs = field.segments()
        by_path[segs] = field
        children.setdefault(segs[:-1], set()).add(segs[-1])
    return by_path, children


_BY_PATH, _CHILDREN = _field_index()


def _match_segment(declared, actual):
    return declared == actual or declared.startswith("<")


def _lookup(segs):
    """Resolve a concrete path against the registry (wildcards)."""
    candidates = [()]
    for actual in segs:
        nxt = []
        for cand in candidates:
            for declared in _CHILDREN.get(cand, ()):
                if _match_segment(declared, actual):
                    nxt.append(cand + (declared,))
        candidates = nxt
        if not candidates:
            return None
    for cand in candidates:
        if cand in _BY_PATH:
            return _BY_PATH[cand]
    return None


def _declared_children(segs):
    """Declared child key names at a concrete path (for errors)."""
    candidates = [()]
    for actual in segs:
        nxt = []
        for cand in candidates:
            for declared in _CHILDREN.get(cand, ()):
                if _match_segment(declared, actual):
                    nxt.append(cand + (declared,))
        candidates = nxt
    names = set()
    for cand in candidates:
        names.update(_CHILDREN.get(cand, ()))
    return names


def _validate_node(value, segs, errors):
    path = ".".join(segs) or "<root>"
    field = _lookup(segs) if segs else None
    if field is not None:
        if value is None and not field.required:
            return
        check = _TYPE_CHECKS.get(field.type)
        if check is not None and not check(value):
            errors.append(
                f"{path}: expected {field.type}, "
                f"got {type(value).__name__}"
            )
            return
        if field.choices and value not in field.choices:
            errors.append(
                f"{path}: {value!r} is not one of "
                f"{list(field.choices)}"
            )
    if not isinstance(value, dict):
        return
    declared = _declared_children(segs)
    if not declared:
        return  # free-form mapping (params, scale, ...)
    wildcard = any(name.startswith("<") for name in declared)
    for key, sub in value.items():
        if not wildcard and key not in declared:
            errors.append(
                f"{path}: unknown key {key!r}; "
                f"valid: {sorted(declared)}"
            )
            continue
        _validate_node(sub, segs + (str(key),), errors)
    if not wildcard:
        for name in declared:
            child = _lookup(segs + (name,))
            if child is not None and child.required \
                    and name not in value:
                errors.append(f"{path}: missing required key {name!r}")


def validate_recipe(recipe):
    """Validate a parsed recipe dict against :data:`RECIPE_FIELDS`.

    Raises :class:`ScenarioError` listing *every* problem found, each
    prefixed with its dotted key path.

    >>> validate_recipe({"scenario": "x"})
    ... # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    ScenarioError: invalid recipe: <root>: missing required key 'nodes'
    """
    if not isinstance(recipe, dict):
        raise ScenarioError(
            f"recipe must be a mapping, got {type(recipe).__name__}"
        )
    errors = []
    _validate_node(recipe, (), errors)
    # Cross-references the registry cannot express.
    nodes = recipe.get("nodes")
    node_names = set(nodes) if isinstance(nodes, dict) else set()
    edges = recipe.get("edges")
    if isinstance(edges, dict):
        for name, edge in edges.items():
            if not isinstance(edge, dict):
                continue
            for side in ("tail", "head"):
                ref = edge.get(side)
                if isinstance(ref, str) and ref not in node_names:
                    errors.append(
                        f"edges.{name}.{side}: {ref!r} is not a "
                        f"declared node type "
                        f"(declared: {sorted(node_names)})"
                    )
    plants = recipe.get("plants")
    if isinstance(plants, dict) and isinstance(edges, dict):
        for name, plant in plants.items():
            if not isinstance(plant, dict):
                continue
            ref = plant.get("edge")
            if isinstance(ref, str) and ref not in edges:
                errors.append(
                    f"plants.{name}.edge: {ref!r} is not a declared "
                    f"edge type (declared: {sorted(edges)})"
                )
    scale = recipe.get("scale")
    if isinstance(scale, dict):
        known = node_names | (
            set(edges) if isinstance(edges, dict) else set()
        )
        for key, count in scale.items():
            if key not in known:
                errors.append(
                    f"scale: {key!r} names no node or edge type"
                )
            elif not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                errors.append(
                    f"scale.{key}: expected a positive int, "
                    f"got {count!r}"
                )
    if errors:
        raise ScenarioError(
            "invalid recipe: " + "; ".join(errors)
        )
    return recipe


def _get(recipe, path, default):
    node = recipe
    for seg in path.split("."):
        if not isinstance(node, dict) or seg not in node:
            return default
        node = node[seg]
    return node if node is not None else default


@dataclass
class ScenarioSpec:
    """A validated recipe, with defaults applied.

    ``raw`` keeps the parsed document verbatim; the typed attributes
    cover everything the compiler and CLI need.

    >>> spec = ScenarioSpec.from_text(
    ...     "scenario: t\\n"
    ...     "nodes:\\n"
    ...     "  N:\\n"
    ...     "    properties:\\n"
    ...     "      v: {generator: uniform_int,"
    ...     " params: {low: 0, high: 2}}\\n"
    ...     "scale: {N: 10}\\n")
    >>> spec.name, spec.seed, spec.export_formats
    ('t', 0, ['csv'])
    """

    raw: dict
    name: str = ""
    description: str = ""
    seed: int = 0
    tags: list = dataclass_field(default_factory=list)
    nodes: dict = dataclass_field(default_factory=dict)
    edges: dict = dataclass_field(default_factory=dict)
    scale: dict = dataclass_field(default_factory=dict)
    export_formats: list = dataclass_field(default_factory=list)
    export_chunk_size: int = 65536
    export_compress: bool = False
    validation: dict = dataclass_field(default_factory=dict)
    plants: dict = dataclass_field(default_factory=dict)

    @classmethod
    def from_dict(cls, recipe):
        validate_recipe(recipe)
        return cls(
            raw=recipe,
            name=recipe["scenario"],
            description=_get(recipe, "description", ""),
            seed=int(_get(recipe, "seed", 0)),
            tags=list(_get(recipe, "tags", [])),
            nodes=dict(recipe["nodes"]),
            edges=dict(_get(recipe, "edges", {})),
            scale=dict(_get(recipe, "scale", {})),
            export_formats=list(
                _get(recipe, "export.formats", ["csv"])
            ),
            export_chunk_size=int(
                _get(recipe, "export.chunk_size", 65536)
            ),
            export_compress=bool(
                _get(recipe, "export.compress", False)
            ),
            validation=dict(_get(recipe, "validation", {})),
            plants=dict(_get(recipe, "plants", {})),
        )

    @classmethod
    def from_text(cls, text):
        return cls.from_dict(parse_recipe_text(text))

    def threshold(self, group, level):
        """A validation threshold with registry defaults applied.

        >>> ScenarioSpec.from_text(
        ...     "scenario: t\\nnodes: {N: {}}\\nscale: {N: 1}"
        ... ).threshold("joint_ks", "fail")
        0.6
        """
        override = _get(
            self.validation, f"{group}.{level}", None
        )
        if override is not None:
            return float(override)
        field = _lookup(("validation", group, level))
        return float(field.default)


def load_recipe(path):
    """Read, parse and validate a recipe file.

    Accepts ``.yaml`` / ``.yml`` / ``.json``; the format is detected
    from the content, not the suffix.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        return ScenarioSpec.from_text(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None


def recipe_reference_rows():
    """Rows of the recipe-key reference table, in declaration order.

    Each row is ``(path, type, required, default, description)`` —
    this is what ``docs/scenarios.md`` embeds and
    ``repro scenario describe`` prints.

    >>> rows = recipe_reference_rows()
    >>> rows[0][:3]
    ('scenario', 'str', 'yes')
    """
    rows = []
    for field in RECIPE_FIELDS:
        if field.required:
            default = ""
        elif field.default in (None, [], {}):
            default = "—" if field.default is None else repr(
                field.default
            )
        else:
            default = repr(field.default)
        description = field.description
        if field.choices:
            description += (
                " One of: " + ", ".join(
                    f"`{c}`" for c in field.choices
                ) + "."
            )
        rows.append((
            field.path,
            field.type,
            "yes" if field.required else "",
            default,
            description,
        ))
    return rows


def recipe_reference_markdown():
    """The recipe-key reference as a GitHub-flavoured markdown table.

    ``docs/scenarios.md`` embeds this table verbatim;
    ``tests/test_scenarios.py::TestDocSync`` asserts it stays in sync.
    Regenerate with::

        PYTHONPATH=src python -m repro.scenarios.spec
    """
    lines = [
        "| Key | Type | Required | Default | Description |",
        "| --- | --- | --- | --- | --- |",
    ]
    for path, type_, required, default, description in \
            recipe_reference_rows():
        cells = (
            f"`{path}`", type_, required,
            f"`{default}`" if default and default != "—" else default,
            description.replace("\n", " "),
        )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


if __name__ == "__main__":  # pragma: no cover - docs regeneration
    print(recipe_reference_markdown(), end="")
