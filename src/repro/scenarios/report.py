"""Graded validation reports: pass/warn/fail per check, one grade overall.

Scenario fidelity should be *comparable* — across recipes, across
seeds, across PRs — which a bare boolean cannot express.  Following the
evidence-grading framing of GRASP (Khalifa et al., 2019), every check
result here carries a grade:

* ``PASS`` — the contract holds within the strict threshold;
* ``WARN`` — the contract holds within the lenient (fail) threshold
  but not the strict (warn) one: acceptable, degraded;
* ``FAIL`` — the contract is violated.

A :class:`GradedCheck` wraps two :class:`~repro.validation.Check`
instances — one built at the *fail* threshold, one at the *warn*
threshold — so the existing check classes are reused unchanged.  The
aggregated :class:`GradedReport` maps the grade counts onto an overall
letter grade and renders as text or JSON (the artifact CI uploads).

Examples
--------
>>> report = GradedReport("demo", seed=0, scale={"N": 10})
>>> report.add(GradedResult("a", Grade.PASS, "ok"))
>>> report.add(GradedResult("b", Grade.WARN, "close", metric=0.4))
>>> report.overall_grade
'B'
>>> report.passed
True
>>> print(report)          # doctest: +ELLIPSIS
scenario 'demo' (seed 0, scale N=10)
  [pass] a (ok)
  [WARN] b (close)
...
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Grade",
    "GradedCheck",
    "GradedReport",
    "GradedResult",
    "run_graded",
]


class Grade(Enum):
    """Per-check grade, ordered from best to worst."""

    PASS = "pass"
    WARN = "warn"
    FAIL = "fail"

    def __str__(self):
        return self.value


@dataclass
class GradedResult:
    """Outcome of one graded check."""

    name: str
    grade: Grade
    detail: str = ""
    metric: float | None = None

    def __str__(self):
        label = (
            "pass" if self.grade is Grade.PASS
            else self.grade.value.upper()
        )
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{label}] {self.name}{suffix}"

    def to_dict(self):
        """JSON-ready dict (metric rounded for stable goldens).

        >>> GradedResult("x", Grade.FAIL, "bad", 0.5).to_dict()
        {'name': 'x', 'grade': 'fail', 'detail': 'bad', 'metric': 0.5}
        """
        metric = self.metric
        if metric is not None:
            metric = round(float(metric), 6)
        return {
            "name": self.name,
            "grade": self.grade.value,
            "detail": self.detail,
            "metric": metric,
        }


class GradedCheck:
    """A check graded against a strict and a lenient threshold.

    Parameters
    ----------
    fail_check:
        a :class:`~repro.validation.Check` built with the *lenient*
        threshold; failing it grades ``FAIL``.
    warn_check:
        optional stricter instance of the same check; passing
        ``fail_check`` but failing this grades ``WARN``.  Omit it for
        binary contracts (cardinalities, orderings, uniqueness).

    >>> from repro.validation import UniquenessCheck
    >>> graded = GradedCheck(UniquenessCheck("Person", "handle"))
    >>> graded.name
    'unique[Person.handle]'
    """

    def __init__(self, fail_check, warn_check=None):
        self.fail_check = fail_check
        self.warn_check = warn_check
        self.name = fail_check.name

    def run(self, graph):
        """Grade ``graph``; returns a :class:`GradedResult`."""
        result = self.fail_check.run(graph)
        if not result.passed:
            return GradedResult(
                self.name, Grade.FAIL, result.detail, result.metric
            )
        if self.warn_check is not None:
            strict = self.warn_check.run(graph)
            if not strict.passed:
                return GradedResult(
                    self.name, Grade.WARN, strict.detail,
                    strict.metric if strict.metric is not None
                    else result.metric,
                )
        return GradedResult(
            self.name, Grade.PASS, result.detail, result.metric
        )


@dataclass
class GradedReport:
    """Aggregated graded results for one scenario run.

    The overall letter grade summarises the counts:

    * ``A`` — every check passed;
    * ``B`` — no failures, at most a quarter of the checks warned;
    * ``C`` — no failures, but more than a quarter warned;
    * ``F`` — at least one failure.

    ``passed`` is True for any grade except ``F`` — warnings degrade
    the grade but do not fail the run.
    """

    scenario: str
    seed: int = 0
    scale: dict = field(default_factory=dict)
    results: list = field(default_factory=list)

    def add(self, result):
        self.results.append(result)

    def count(self, grade):
        """Number of results with ``grade``.

        >>> r = GradedReport("s")
        >>> r.add(GradedResult("a", Grade.PASS))
        >>> r.count(Grade.PASS), r.count(Grade.FAIL)
        (1, 0)
        """
        return sum(1 for r in self.results if r.grade is grade)

    @property
    def overall_grade(self):
        if self.count(Grade.FAIL):
            return "F"
        warns = self.count(Grade.WARN)
        if not warns:
            return "A"
        if warns <= max(1, len(self.results) // 4):
            return "B"
        return "C"

    @property
    def passed(self):
        return self.overall_grade != "F"

    def __str__(self):
        scale = ", ".join(
            f"{k}={v}" for k, v in sorted(self.scale.items())
        )
        lines = [
            f"scenario {self.scenario!r} (seed {self.seed}"
            + (f", scale {scale}" if scale else "") + ")"
        ]
        lines += [f"  {result}" for result in self.results]
        lines.append(
            f"grade {self.overall_grade}: "
            f"{self.count(Grade.PASS)} pass, "
            f"{self.count(Grade.WARN)} warn, "
            f"{self.count(Grade.FAIL)} fail"
        )
        return "\n".join(lines)

    def to_dict(self):
        """JSON-ready dict — the schema of the uploaded CI artifact."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "scale": {k: int(v) for k, v in self.scale.items()},
            "grade": self.overall_grade,
            "passed": self.passed,
            "counts": {
                "pass": self.count(Grade.PASS),
                "warn": self.count(Grade.WARN),
                "fail": self.count(Grade.FAIL),
            },
            "checks": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent=2):
        """Serialise :meth:`to_dict` (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False) + "\n"


def run_graded(graph, graded_checks, scenario="", seed=None,
               scale=None):
    """Run graded checks against ``graph``; returns the report."""
    report = GradedReport(
        scenario=scenario,
        seed=graph.seed if seed is None else seed,
        scale=dict(scale or {}),
    )
    for check in graded_checks:
        report.add(check.run(graph))
    return report
