"""Ready-made schemas, including the paper's running example (Figure 1).

:func:`social_network_schema` reproduces the complete running example:

* ``Person`` with name, country, interest, sex, creationDate —
  country follows a real-life-like skew, name follows
  ``P(name | country, sex)``;
* ``Message`` with topic and text;
* ``knows`` (Person *..* Person) with a power-law-ish degree
  distribution and a country homophily joint ("the Countries of pairs
  of connected Persons ... follow P'_country(X, Y)"), plus a
  creationDate greater than both endpoints' creationDates;
* ``creates`` (Person 1..* Message) with a power-law out-degree
  distribution ``D_creates`` and its own creationDate.
"""

from __future__ import annotations

import numpy as np

from ..core.schema import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from ..stats import JointDistribution, Zipf, homophily_joint
from .countries import country_names, country_weights
from .names import conditional_name_table
from .words import INTERESTS, TOPICS, VOCABULARY

__all__ = ["social_network_schema", "country_joint"]

_EPOCH_2010 = 1_262_304_000  # 2010-01-01
_EPOCH_2017 = 1_483_228_800  # 2017-01-01


def country_joint(affinity=0.8, countries=None, weights=None):
    """The running example's ``P'_country(X, Y)`` homophily joint.

    ``affinity`` interpolates between independent country pairs (0) and
    everyone-knows-compatriots (1); 0.8 gives the pronounced diagonal
    the paper describes ("Persons from the same country are more likely
    to know each other").

    Returns the joint *and* the country order its categories refer to.
    """
    names = list(countries) if countries is not None else country_names()
    w = np.asarray(
        weights if weights is not None else country_weights(),
        dtype=np.float64,
    )
    marginal = w / w.sum()
    return homophily_joint(marginal, affinity), names


def social_network_schema(
    affinity=0.8,
    avg_know_degree=20,
    max_know_degree=50,
    structure="lfr",
    num_countries=None,
):
    """Build the Figure 1 schema.

    Parameters
    ----------
    affinity:
        country homophily strength for the ``knows`` joint.
    avg_know_degree, max_know_degree:
        degree knobs of the ``knows`` structure generator.
    structure:
        SG name for ``knows``: "lfr" (default), "bter", "darwini", ...
    num_countries:
        truncate the country dictionary (keeps the most populous ones);
        useful at small scale factors so every country actually occurs.
    """
    names = country_names()
    weights = country_weights()
    if num_countries is not None:
        names = names[:num_countries]
        weights = weights[:num_countries]

    person = NodeType(
        "Person",
        properties=[
            PropertyDef(
                "country",
                "string",
                GeneratorSpec(
                    "categorical",
                    {"values": names, "weights": weights},
                ),
            ),
            PropertyDef(
                "sex",
                "string",
                GeneratorSpec(
                    "categorical",
                    {"values": ["female", "male"], "weights": [0.5, 0.5]},
                ),
            ),
            PropertyDef(
                "name",
                "string",
                GeneratorSpec(
                    "conditional",
                    {
                        "table": conditional_name_table(),
                        "default": (["Alex", "Sam", "Charlie"], None),
                    },
                ),
                depends_on=("country", "sex"),
            ),
            PropertyDef(
                "interest",
                "string",
                GeneratorSpec(
                    "weighted_dict",
                    {"values": INTERESTS, "exponent": 1.0},
                ),
            ),
            PropertyDef(
                "creationDate",
                "date",
                GeneratorSpec(
                    "date_range",
                    {
                        "start": _EPOCH_2010,
                        "end": _EPOCH_2017,
                        "granularity": "day",
                    },
                ),
            ),
        ],
    )

    message = NodeType(
        "Message",
        properties=[
            PropertyDef(
                "topic",
                "string",
                GeneratorSpec(
                    "weighted_dict",
                    {"values": TOPICS, "exponent": 1.0},
                ),
            ),
            PropertyDef(
                "text",
                "string",
                GeneratorSpec(
                    "text",
                    {
                        "vocabulary": VOCABULARY,
                        "min_words": 3,
                        "max_words": 12,
                    },
                ),
            ),
        ],
    )

    joint, joint_values = country_joint(
        affinity, countries=names, weights=weights
    )
    structure_params = {
        "lfr": {
            "avg_degree": avg_know_degree,
            "max_degree": max_know_degree,
            "min_community": 10,
            "max_community": 50,
            "mu": 0.1,
        },
        "bter": {
            "avg_degree": avg_know_degree,
            "max_degree": max_know_degree,
        },
        "darwini": {
            "avg_degree": avg_know_degree,
            "max_degree": max_know_degree,
        },
    }.get(structure, {})

    knows = EdgeType(
        "knows",
        tail_type="Person",
        head_type="Person",
        cardinality=Cardinality.MANY_TO_MANY,
        structure=GeneratorSpec(structure, structure_params),
        correlation=CorrelationSpec(
            tail_property="country",
            joint=joint,
            values=tuple(joint_values),
        ),
        properties=[
            PropertyDef(
                "creationDate",
                "date",
                GeneratorSpec(
                    "after_dependency",
                    {"min_gap": 1, "max_gap": 180 * 86_400},
                ),
                depends_on=("tail.creationDate", "head.creationDate"),
            ),
        ],
    )

    creates = EdgeType(
        "creates",
        tail_type="Person",
        head_type="Message",
        cardinality=Cardinality.ONE_TO_MANY,
        structure=GeneratorSpec(
            "one_to_many",
            {
                # D_creates: power-law-ish message counts per person.
                "degree_distribution": Zipf(1.2, 40),
                "degree_offset": 0,
            },
        ),
        directed=True,
        properties=[
            PropertyDef(
                "creationDate",
                "date",
                GeneratorSpec(
                    "after_dependency",
                    {"min_gap": 1, "max_gap": 180 * 86_400},
                ),
                depends_on=("tail.creationDate",),
            ),
        ],
    )

    return Schema(
        node_types=[person, message], edge_types=[knows, creates]
    )
