"""Embedded dictionaries and ready-made schemas."""

from .countries import COUNTRIES, country_names, country_weights
from .names import (
    NAMES_BY_REGION_SEX,
    REGION_OF_COUNTRY,
    conditional_name_table,
)
from .schemas import country_joint, social_network_schema
from .words import INTERESTS, TOPICS, VOCABULARY

__all__ = [
    "COUNTRIES",
    "INTERESTS",
    "NAMES_BY_REGION_SEX",
    "REGION_OF_COUNTRY",
    "TOPICS",
    "VOCABULARY",
    "conditional_name_table",
    "country_joint",
    "country_names",
    "country_weights",
    "social_network_schema",
]
