"""Country dictionary with population-proportional weights.

The running example requires "Person's country follows a P_country(X)
distribution similar to that found in real life".  We embed a compact
list of countries with approximate population weights (millions,
order-of-magnitude accurate is all that matters for benchmarking skew).
"""

from __future__ import annotations

__all__ = ["COUNTRIES", "COUNTRY_WEIGHTS", "country_names", "country_weights"]

#: (name, approximate population in millions)
COUNTRIES = [
    ("China", 1412),
    ("India", 1408),
    ("United States", 332),
    ("Indonesia", 274),
    ("Pakistan", 231),
    ("Brazil", 214),
    ("Nigeria", 213),
    ("Bangladesh", 169),
    ("Russia", 143),
    ("Mexico", 127),
    ("Japan", 126),
    ("Philippines", 114),
    ("Egypt", 109),
    ("Vietnam", 98),
    ("Germany", 83),
    ("Turkey", 85),
    ("France", 68),
    ("United Kingdom", 67),
    ("Italy", 59),
    ("South Africa", 60),
    ("South Korea", 52),
    ("Spain", 47),
    ("Argentina", 46),
    ("Poland", 38),
    ("Canada", 38),
    ("Australia", 26),
    ("Netherlands", 18),
    ("Chile", 19),
    ("Sweden", 10),
    ("Portugal", 10),
    ("Greece", 11),
    ("Switzerland", 9),
]

COUNTRY_WEIGHTS = {name: weight for name, weight in COUNTRIES}


def country_names():
    """Country names in embedded order (descending population)."""
    return [name for name, _weight in COUNTRIES]


def country_weights():
    """Population weights aligned with :func:`country_names`."""
    return [float(weight) for _name, weight in COUNTRIES]
