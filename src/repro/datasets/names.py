"""Given-name dictionaries conditioned on (country region, sex).

The running example's ``P_name(X | country, sex)``: names correlate with
both the sex and the country of a Person.  We embed name lists per
(region, sex) and a country -> region mapping; the conditional table
builder produces the exact structure
:class:`~repro.properties.ConditionalGenerator` consumes.
"""

from __future__ import annotations

__all__ = [
    "REGION_OF_COUNTRY",
    "NAMES_BY_REGION_SEX",
    "conditional_name_table",
]

REGION_OF_COUNTRY = {
    "China": "east_asia",
    "Japan": "east_asia",
    "South Korea": "east_asia",
    "Vietnam": "east_asia",
    "Indonesia": "south_asia",
    "India": "south_asia",
    "Pakistan": "south_asia",
    "Bangladesh": "south_asia",
    "Philippines": "south_asia",
    "United States": "anglo",
    "United Kingdom": "anglo",
    "Canada": "anglo",
    "Australia": "anglo",
    "South Africa": "anglo",
    "Nigeria": "africa",
    "Egypt": "mena",
    "Turkey": "mena",
    "Russia": "slavic",
    "Poland": "slavic",
    "Germany": "germanic",
    "Netherlands": "germanic",
    "Sweden": "germanic",
    "Switzerland": "germanic",
    "France": "romance",
    "Italy": "romance",
    "Spain": "romance",
    "Portugal": "romance",
    "Greece": "romance",
    "Brazil": "latam",
    "Mexico": "latam",
    "Argentina": "latam",
    "Chile": "latam",
}

NAMES_BY_REGION_SEX = {
    ("east_asia", "female"): ["Mei", "Yuki", "Jin", "Sakura", "Li", "Hana"],
    ("east_asia", "male"): ["Wei", "Hiroshi", "Min-jun", "Chen", "Kenji",
                            "Takeshi"],
    ("south_asia", "female"): ["Priya", "Ananya", "Fatima", "Dewi", "Aisha",
                               "Lakshmi"],
    ("south_asia", "male"): ["Arjun", "Rahul", "Muhammad", "Budi", "Ravi",
                             "Imran"],
    ("anglo", "female"): ["Emma", "Olivia", "Charlotte", "Amelia", "Grace",
                          "Chloe"],
    ("anglo", "male"): ["James", "Oliver", "William", "Jack", "Henry",
                        "Thomas"],
    ("africa", "female"): ["Amara", "Chioma", "Zainab", "Ngozi", "Adaeze",
                           "Folake"],
    ("africa", "male"): ["Chinedu", "Emeka", "Oluwaseun", "Ibrahim", "Kofi",
                         "Tunde"],
    ("mena", "female"): ["Layla", "Yasmin", "Elif", "Zeynep", "Nour",
                         "Amira"],
    ("mena", "male"): ["Omar", "Ahmet", "Mehmet", "Youssef", "Mustafa",
                       "Karim"],
    ("slavic", "female"): ["Anastasia", "Olga", "Katarzyna", "Irina",
                           "Natalia", "Svetlana"],
    ("slavic", "male"): ["Dmitri", "Ivan", "Piotr", "Andrzej", "Sergei",
                         "Mikhail"],
    ("germanic", "female"): ["Anna", "Lena", "Emma", "Freja", "Greta",
                             "Ingrid"],
    ("germanic", "male"): ["Lukas", "Finn", "Maximilian", "Lars", "Jonas",
                           "Stefan"],
    ("romance", "female"): ["Sofia", "Giulia", "Camille", "Lucia", "Ines",
                            "Elena"],
    ("romance", "male"): ["Luca", "Hugo", "Marco", "Pablo", "Joao",
                          "Alessandro"],
    ("latam", "female"): ["Valentina", "Camila", "Isabella", "Mariana",
                          "Gabriela", "Fernanda"],
    ("latam", "male"): ["Santiago", "Mateo", "Diego", "Thiago", "Felipe",
                        "Andres"],
}

#: Rank weights within each name list (first names more common).
_RANK_WEIGHTS = [8.0, 5.0, 3.0, 2.0, 1.5, 1.0]


def conditional_name_table():
    """Build the ``(country, sex) -> (names, weights)`` table.

    The result plugs straight into
    :class:`~repro.properties.ConditionalGenerator` as its ``table``
    parameter; a default entry covers countries missing from the region
    map.
    """
    table = {}
    for country, region in REGION_OF_COUNTRY.items():
        for sex in ("female", "male"):
            names = NAMES_BY_REGION_SEX[(region, sex)]
            table[(country, sex)] = (names, _RANK_WEIGHTS[:len(names)])
    return table
