"""Topic and vocabulary word lists for message-style content."""

from __future__ import annotations

__all__ = ["TOPICS", "INTERESTS", "VOCABULARY"]

#: Message topics, ordered by expected popularity (Zipf-weighted use).
TOPICS = [
    "sports", "music", "politics", "movies", "technology", "travel",
    "food", "gaming", "fashion", "science", "photography", "books",
    "fitness", "art", "history", "nature", "finance", "education",
    "health", "cars",
]

#: Personal interests (same shape, used for the Person.interest property).
INTERESTS = [
    "football", "cooking", "reading", "hiking", "chess", "painting",
    "running", "gardening", "cycling", "yoga", "dancing", "singing",
    "swimming", "climbing", "writing", "skiing", "surfing", "knitting",
    "astronomy", "birdwatching",
]

#: Small vocabulary for synthetic message text.
VOCABULARY = [
    "the", "a", "to", "and", "of", "in", "is", "it", "you", "that",
    "was", "for", "on", "are", "with", "as", "his", "they", "be", "at",
    "one", "have", "this", "from", "or", "had", "by", "not", "word",
    "but", "what", "some", "we", "can", "out", "other", "were", "all",
    "there", "when", "up", "use", "your", "how", "said", "an", "each",
    "she", "which", "do", "their", "time", "if", "will", "way", "about",
    "many", "then", "them", "write", "would", "like", "so", "these",
    "her", "long", "make", "thing", "see", "him", "two", "has", "look",
    "more", "day", "could", "go", "come", "did", "number", "sound",
    "no", "most", "people", "my", "over", "know", "water", "than",
    "call", "first", "who", "may", "down", "side", "been", "now",
    "find", "any", "new", "work", "part", "take", "get", "place",
]
