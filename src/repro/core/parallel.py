"""Simulated shared-nothing execution: chunked in-place generation.

The paper targets a distributed, shared-nothing environment; the
load-bearing mechanism is the in-place PG contract — any worker can
generate the PT rows of its id range independently, because each value
is a pure function of (seed, id, dependency values).  This module
*simulates* that deployment for a single property table: it splits the
table's id space into shards, generates each shard with a fresh
generator instance (as a remote worker would), and the tests assert the
concatenation is bit-identical to whole-table generation.

(The substitution is recorded in DESIGN.md: we demonstrate the exact
property that makes the distributed claim true, without a cluster.
:mod:`repro.core.executor` generalises this mechanism to the full task
DAG, running shards in an actual process pool.)
"""

from __future__ import annotations

import numpy as np

from ..tables import PropertyTable
from .tasks import property_shard_values

__all__ = ["generate_property_sharded", "shard_ranges"]


def shard_ranges(count, num_shards):
    """Split ``range(count)`` into ``num_shards`` contiguous ranges.

    Returns a list of ``(start, stop)``; shards differ in size by at
    most one.  Empty shards are allowed when ``num_shards > count``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base = count // num_shards
    extra = count % num_shards
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def generate_property_sharded(
    spec, qualified_name, count, seed, num_shards, dependency_columns=(),
):
    """Generate a PT in independent shards (the distributed simulation).

    Parameters
    ----------
    spec:
        :class:`~repro.core.schema.GeneratorSpec` of the PG.
    qualified_name:
        ``"Type.prop"`` — determines the stream, exactly as the engine
        derives it.
    count:
        number of instances.
    seed:
        the engine's root seed.
    num_shards:
        how many independent workers to simulate.
    dependency_columns:
        full-length dependency arrays (each worker slices its range —
        in a real deployment it would regenerate them in place, which
        tests verify separately).

    Returns
    -------
    PropertyTable
        concatenated from the shard outputs, bit-identical to the
        engine's single-shot output for the same seed — including the
        value dtype when ``count == 0``, where the generator's own
        empty output (not a hardcoded ``object`` array) is used.
    """
    task_id = f"property:{qualified_name}"
    columns = [np.asarray(col) for col in dependency_columns]
    shards = []
    for start, stop in shard_ranges(count, num_shards):
        # Each shard call instantiates a fresh generator and stream —
        # no shared state, exactly as a remote worker would.
        shards.append(
            property_shard_values(
                spec, task_id, seed, start, stop,
                [col[start:stop] for col in columns],
            )
        )
    non_empty = [s for s in shards if len(s)]
    if non_empty:
        values = np.concatenate(non_empty)
    else:
        # All shards empty (count == 0): ask the generator for its
        # empty output so the dtype matches single-shot generation.
        values = property_shard_values(
            spec, task_id, seed, 0, 0, [col[:0] for col in columns]
        )
    return PropertyTable(qualified_name, values)
