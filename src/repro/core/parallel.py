"""Simulated shared-nothing execution: chunked in-place generation.

The paper targets a distributed, shared-nothing environment; the
load-bearing mechanism is the in-place PG contract — any worker can
generate the PT rows of its id range independently, because each value
is a pure function of (seed, id, dependency values).  This module
*simulates* that deployment: it splits a property table's id space into
shards, generates each shard with a fresh generator instance (as a
remote worker would), and the tests assert the concatenation is
bit-identical to whole-table generation.

(The substitution is recorded in DESIGN.md: we demonstrate the exact
property that makes the distributed claim true, without a cluster.)
"""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream, derive_seed
from ..properties.registry import create_property_generator
from ..tables import PropertyTable

__all__ = ["generate_property_sharded", "shard_ranges"]


def shard_ranges(count, num_shards):
    """Split ``range(count)`` into ``num_shards`` contiguous ranges.

    Returns a list of ``(start, stop)``; shards differ in size by at
    most one.  Empty shards are allowed when ``num_shards > count``.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    base = count // num_shards
    extra = count % num_shards
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def generate_property_sharded(
    spec, qualified_name, count, seed, num_shards, dependency_columns=(),
):
    """Generate a PT in independent shards (the distributed simulation).

    Parameters
    ----------
    spec:
        :class:`~repro.core.schema.GeneratorSpec` of the PG.
    qualified_name:
        ``"Type.prop"`` — determines the stream, exactly as the engine
        derives it.
    count:
        number of instances.
    seed:
        the engine's root seed.
    num_shards:
        how many independent workers to simulate.
    dependency_columns:
        full-length dependency arrays (each worker slices its range —
        in a real deployment it would regenerate them in place, which
        tests verify separately).

    Returns
    -------
    PropertyTable
        concatenated from the shard outputs, bit-identical to the
        engine's single-shot output for the same seed.
    """
    task_id = f"property:{qualified_name}"
    stream_seed = derive_seed(seed, task_id)
    shards = []
    for start, stop in shard_ranges(count, num_shards):
        # A fresh generator and stream per shard: no shared state.
        generator = create_property_generator(spec.name, **spec.params)
        stream = RandomStream(stream_seed)
        ids = np.arange(start, stop, dtype=np.int64)
        deps = [np.asarray(col)[start:stop] for col in dependency_columns]
        shards.append(generator.run_many(ids, stream, *deps))
    if shards:
        non_empty = [s for s in shards if len(s)]
        values = (
            np.concatenate(non_empty) if non_empty
            else np.empty(0, dtype=object)
        )
    else:
        values = np.empty(0, dtype=object)
    return PropertyTable(qualified_name, values)
