"""Checkpoint ledger for resumable sharded runs.

Every sharded stage is a pure function of ``(schema, scale, seed,
shard_rows)``, so a spool part that was fully written and acked is
provably identical to what a re-run would produce.  The ledger makes
that observation operational: :class:`ShardedExecutor` appends an ack
(rows + per-file size/CRC32) to ``checkpoint.json`` inside the spool
as each shard lands, and a ``--resume`` run

1. validates the *run fingerprint* — a SHA-256 over the canonicalised
   schema, the scale mapping, the seed, ``shard_rows`` and the sink
   format — refusing to mix spools across configurations,
2. re-verifies every acked part file on disk (size + CRC), truncating
   each table's usable prefix at the first mismatch (acks are recorded
   in shard order, so the verified prefix is exactly the resumable
   work), and
3. lets the executor skip the verified prefix and re-emit sinks from
   the spool, making the final export byte-identical to an
   uninterrupted run.

The ledger is JSON, rewritten atomically (tmp + rename) on every ack;
a crash between acks loses at most the in-flight shard.  Counts are
never checkpointed — they are recomputed on resume (cheap, and the
recomputation cross-checks the fingerprint's purity argument).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..io.spool import verify_digest

__all__ = [
    "CHECKPOINT_NAME",
    "CheckpointError",
    "CheckpointLedger",
    "run_fingerprint",
    "schema_fingerprint",
]

CHECKPOINT_NAME = "checkpoint.json"

LEDGER_VERSION = 1


class CheckpointError(RuntimeError):
    """A resume request that cannot be honoured (corrupt ledger or a
    fingerprint mismatch — the spool belongs to a different run)."""


# -- fingerprinting -----------------------------------------------------------


def _canonical(value):
    """JSON-stable canonical form of schema/scale values.

    Handles the vocabulary that appears in schemas: dataclasses,
    enums, numpy scalars/arrays, mappings, sequences, and plain
    objects with a ``__dict__`` (e.g. joint distributions).  The goal
    is a deterministic identity, not a reversible serialisation.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.dtype.str,
                "data": value.tolist()}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(
            value.items(), key=lambda item: str(item[0])
        )}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_canonical(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "__dict__"):
        return {"__object__": type(value).__name__,
                **_canonical(vars(value))}
    return {"__opaque__": type(value).__name__}


def schema_fingerprint(schema):
    """Hex SHA-256 of the canonicalised schema."""
    payload = json.dumps(_canonical(schema), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_fingerprint(schema, scale, seed, shard_rows, sink_format):
    """Hex SHA-256 identifying one resumable run configuration.

    Everything the spool bytes are a function of — plus the sink
    format, because resume re-emits the export and a half-written CSV
    must not be resumed as JSONL.
    """
    payload = json.dumps({
        "schema": _canonical(schema),
        "scale": _canonical(dict(scale)),
        "seed": int(seed),
        "shard_rows": int(shard_rows),
        "format": str(sink_format),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- the ledger ---------------------------------------------------------------


class CheckpointLedger:
    """Per-spool append-style record of completed shard work.

    Tables hold ordered shard-ack lists plus a ``done`` seal with the
    table's finishing metadata; structures hold the topology metadata
    (node counts, directedness) needed to resolve derived counts
    without re-generating a completed edge's structure.
    """

    def __init__(self, directory, fingerprint):
        self.directory = Path(directory)
        self.path = self.directory / CHECKPOINT_NAME
        self.fingerprint = fingerprint
        self._tables = {}
        self._structures = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def fresh(cls, directory, fingerprint):
        """A new empty ledger (any stale checkpoint is overwritten)."""
        ledger = cls(directory, fingerprint)
        ledger.save()
        return ledger

    @classmethod
    def load(cls, directory, fingerprint):
        """Load and validate an existing ledger for a resume.

        A missing checkpoint file degrades to a fresh ledger (the run
        crashed before its first ack); a present-but-unreadable file
        or a fingerprint mismatch raises :class:`CheckpointError`.
        """
        directory = Path(directory)
        path = directory / CHECKPOINT_NAME
        if not path.exists():
            return cls.fresh(directory, fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint ledger at {path}: {exc}"
            ) from exc
        if payload.get("version") != LEDGER_VERSION:
            raise CheckpointError(
                f"checkpoint ledger version {payload.get('version')!r} "
                f"is not supported (expected {LEDGER_VERSION})"
            )
        recorded = payload.get("fingerprint")
        if recorded != fingerprint:
            raise CheckpointError(
                "checkpoint fingerprint mismatch: the spool at "
                f"{directory} was written by a different run "
                "configuration (schema/scale/seed/shard_rows/format); "
                "refusing to resume"
            )
        ledger = cls(directory, fingerprint)
        ledger._tables = payload.get("tables", {})
        ledger._structures = payload.get("structures", {})
        return ledger

    # -- persistence -------------------------------------------------------

    def save(self):
        payload = {
            "version": LEDGER_VERSION,
            "fingerprint": self.fingerprint,
            "tables": self._tables,
            "structures": self._structures,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)

    # -- recording ---------------------------------------------------------

    def _entry(self, key, kind, role=None):
        entry = self._tables.setdefault(
            key, {"kind": kind, "role": role, "shards": [],
                  "done": False, "meta": None}
        )
        return entry

    def ack_shard(self, key, kind, index, meta, role=None):
        """Record one completed shard (must arrive in shard order)."""
        entry = self._entry(key, kind, role)
        if index < len(entry["shards"]):
            # A re-run over a verified prefix re-acks identical work.
            return
        if index != len(entry["shards"]):
            raise CheckpointError(
                f"table {key!r}: ack for shard {index} out of order "
                f"(expected {len(entry['shards'])})"
            )
        entry["shards"].append(dict(meta))
        self.save()

    def finish_table(self, key, kind, meta=None, role=None):
        """Seal a table as complete, with its finishing metadata."""
        entry = self._entry(key, kind, role)
        entry["done"] = True
        if meta is not None:
            entry["meta"] = dict(meta)
        self.save()

    def record_structure(self, name, meta):
        """Record a generated structure's topology metadata so derived
        counts resolve on resume without re-generating it."""
        self._structures[name] = dict(meta)
        self.save()

    def reset_table(self, key):
        """Drop a table's acks (all-or-nothing stages redo from zero)."""
        if key in self._tables:
            del self._tables[key]
            self.save()

    # -- querying ----------------------------------------------------------

    def table(self, key):
        return self._tables.get(key)

    def table_done(self, key):
        entry = self._tables.get(key)
        return bool(entry and entry["done"])

    def structure_meta(self, name):
        return self._structures.get(name)

    def verified_shards(self, key):
        """The usable prefix of a table's acked shards.

        Walks the acks in shard order re-checking each part file's
        size and CRC against the spool; stops at the first miss (a
        torn write from the crash) and truncates the ledger to the
        verified prefix, so the executor resumes exactly there.
        """
        entry = self._tables.get(key)
        if entry is None:
            return []
        shards = entry["shards"]
        verified = 0
        for meta in shards:
            files = meta.get("files") or []
            if not files:
                break
            if not all(verify_digest(self.directory, f) for f in files):
                break
            verified += 1
        if verified != len(shards):
            entry["shards"] = shards[:verified]
            entry["done"] = False
            self.save()
        return entry["shards"]
