"""Sharded executor: memory-bounded, out-of-core generation.

The serial engine and the :class:`~repro.core.executor.ParallelExecutor`
both materialise every table in RAM, so graph size is capped by memory
even though export already streams.  This module runs the *same* task
DAG with every table spooled to disk in id-range shards
(:class:`~repro.io.spool.TableSpool`): the full pipeline — structure
chunk → match → properties → sink — touches at most a few
``shard_rows``-sized arrays at a time, which is what unlocks
billion-edge generation on commodity boxes (ROADMAP item 1).

Byte-identity.  Outputs are bit-identical to the in-memory path for
any shard size and worker count, by construction rather than by luck:

* property kernels are already range-pure (PR 1), so per-shard
  generation equals slices of single-shot generation;
* chunkable structure generators (R-MAT raw, ER, SBM, 1→*) emit their
  ``run()`` output in chunks via the first-class
  :class:`~repro.structure.base.EdgeChunkStream` protocol;
* permutation matchings relabel chunk-by-chunk with the exact mappings
  the serial :func:`~repro.core.tasks.match_edge` derives;
* genuinely global stages — sequential structure generators,
  correlated (SBM-Part) matching — materialise transiently, spill
  their result to the spool and free it;
* sinks consume the spooled tables through the unchanged
  ``begin``/``on_table``/``finish`` protocol in serial plan order, so
  every format (gzip included) produces identical bytes.

Concurrency.  Every per-shard unit — property kernel, structure chunk
emission + relabel, export-chunk formatting — goes through one
:class:`~repro.core.procpool.ShardPool` with a bounded in-flight
window (no lock-step waves).  ``backend="thread"`` shares memory but
is GIL-capped; ``backend="process"`` forks a persistent worker pool
that writes part files straight into the spool and acks metadata, the
parent recording shards and streaming export chunks in serial plan
order — so the output is byte-identical for any backend/worker/shard
combination, again by construction.  A worker killed mid-shard raises
:class:`~repro.core.procpool.ShardedError` and the owned spool is
removed.

Peak traced allocation is bounded by ``C · shard_rows`` plus the
documented O(nodes) matching-permutation term — pinned by
``tests/test_sharded_memory.py`` and tracked in ``BENCH_scale.json``.
"""

from __future__ import annotations

import re
import tempfile
from pathlib import Path

import numpy as np

from ..io.spool import TableSpool
from ..prng import RandomStream, derive_seed
from ..structure.registry import create_generator
from ..tables import PropertyTable
from . import faults as _faults
from .checkpoint import CheckpointLedger, run_fingerprint
from .dependency import DependencyError, build_task_graph
from .matching import random_match
from .procpool import BACKENDS, ShardPool, ShardedError
from .result import PropertyGraph
from .schema import Cardinality, SchemaError
from .tasks import (
    export_task_output,
    match_edge,
    property_shard_values,
    resolve_count,
    structure_inputs,
)

__all__ = [
    "BYTES_PER_SHARD_ROW",
    "DEFAULT_SHARD_ROWS",
    "ShardedError",
    "ShardedExecutor",
    "ShardedResult",
    "execute_sharded",
    "parse_memory_budget",
    "shard_rows_for_budget",
]

#: Default id-range shard size (rows) — matches the parallel executor's
#: property shard size, so the two pipelines chunk work identically.
DEFAULT_SHARD_ROWS = 65_536

#: Conservative working-set estimate per shard row (bytes), covering a
#: handful of concurrently-live columns (values + dependency slices +
#: formatting buffers).  ``--memory-budget`` divides by this to pick
#: ``shard_rows``; see docs/scaling.md for the derivation.
BYTES_PER_SHARD_ROW = 512

#: Floor for derived shard sizes — below this, per-shard overhead
#: dominates and the budget estimate is meaningless anyway.
MIN_SHARD_ROWS = 1_024

_BUDGET_RE = re.compile(
    r"^\s*(?P<number>\d+(?:\.\d+)?|\.\d+)\s*(?P<unit>[kmgt]i?b?|b)?\s*$",
    re.IGNORECASE,
)

_BUDGET_UNITS = {
    "b": 1,
    "k": 1 << 10,
    "m": 1 << 20,
    "g": 1 << 30,
    "t": 1 << 40,
}

#: Spelled out once so every parse error can list them (the CLI
#: surfaces this message verbatim for ``--memory-budget``).
_BUDGET_FORMS = (
    "an integer byte count (e.g. 1048576) or a number — fractions "
    "like '1.5' or '.5' included — with a binary-multiple suffix "
    "KB/MB/GB/TB, K/M/G/T or KiB/MiB/GiB/TiB (e.g. '512MB', '1.5GB', "
    "'0.5GiB')"
)


def parse_memory_budget(value):
    """Parse a memory budget into bytes.

    Accepts a plain integer (bytes) or a string with a binary-multiple
    suffix: ``"512MB"``, ``"1G"``, ``"64KiB"`` — ``KB``/``KiB``/``K``
    are all ``2**10`` here.  Fractional sizes work with any suffix
    (``"1.5GB"``, ``".5GiB"``); a fractional *byte* count is rejected
    rather than silently truncated.
    """
    if isinstance(value, (int, np.integer)):
        budget = int(value)
    else:
        match = _BUDGET_RE.match(str(value))
        if match is None:
            raise ValueError(
                f"cannot parse memory budget {value!r}; expected "
                f"{_BUDGET_FORMS}"
            )
        number = float(match.group("number"))
        unit = (match.group("unit") or "b").lower()
        if unit == "b" and number != int(number):
            raise ValueError(
                f"memory budget {value!r} is a fractional byte "
                f"count; add a unit suffix (expected {_BUDGET_FORMS})"
            )
        budget = int(number * _BUDGET_UNITS[unit[0]])
    if budget <= 0:
        raise ValueError(
            f"memory budget must be positive, got {value!r}"
        )
    return budget


def shard_rows_for_budget(budget_bytes):
    """Shard size (rows) for a byte budget, via the documented
    :data:`BYTES_PER_SHARD_ROW` working-set estimate."""
    return max(MIN_SHARD_ROWS, int(budget_bytes) // BYTES_PER_SHARD_ROW)


# -- per-shard jobs (module-level: picklable for the process backend) ---------


def _dep_slice(dep, start, stop):
    """Resolve one dependency descriptor to its shard-range slice.

    Descriptors replace the closures the thread-only executor used:
    ``("range", table)`` slices rows, ``("tail"/"head", pt, edges)``
    gathers endpoint properties.  Spooled tables pickle as paths, so
    the same descriptors work in worker processes.
    """
    kind = dep[0]
    if kind == "range":
        return dep[1].read_range(start, stop)
    edges = dep[2]
    ids = (
        edges.tails_range(start, stop)
        if kind == "tail" else edges.heads_range(start, stop)
    )
    return dep[1].gather(ids)


def _property_shard_part(spool, key, index, spec, task_id, seed, bound,
                         deps):
    """One property shard: kernel to spool part file (any worker)."""
    _faults.fire("property", index)
    _faults.fire("shard", index)
    start, stop = bound
    values = property_shard_values(
        spec, task_id, seed, start, stop,
        [_dep_slice(dep, start, stop) for dep in deps],
    )
    return spool.save_property_part(index, key, values)


def _relabel_shard_part(spool, key, index, handle, lo, hi, tail_map,
                        head_map):
    """One edge shard: chunk emission + relabel to spool (any worker)."""
    _faults.fire("match", index)
    _faults.fire("shard", index)
    tails, heads = handle.read_chunk(lo, hi)
    if tail_map is not None:
        tails = tail_map[tails]
    if head_map is not None:
        heads = head_map[heads]
    return spool.save_edge_part(index, key, tails, heads)


# -- structure handles ---------------------------------------------------------


class _StructureHandle:
    """Metadata + chunk access for a pre-matching structure.

    Quacks like an :class:`~repro.tables.EdgeTable` for the metadata
    consumers (``resolve_count``, ``random_match``) without holding the
    edge columns in memory.
    """

    def __init__(self, name, num_edges, num_tail_nodes, num_head_nodes,
                 directed):
        self.name = name
        self.num_edges = int(num_edges)
        self.num_tail_nodes = int(num_tail_nodes)
        self.num_head_nodes = int(num_head_nodes)
        self.directed = bool(directed)

    def __len__(self):
        return self.num_edges

    @property
    def is_bipartite(self):
        return self.num_tail_nodes != self.num_head_nodes

    @property
    def num_nodes(self):
        if self.is_bipartite:
            raise ValueError(
                f"structure {self.name!r} is bipartite; use "
                "num_tail_nodes / num_head_nodes"
            )
        return self.num_tail_nodes

    def read_chunk(self, lo, hi):
        raise NotImplementedError

    def chunks(self):
        raise NotImplementedError

    def load(self):
        raise NotImplementedError


class _ChunkedStructure(_StructureHandle):
    """Chunkable generator: edges re-emitted on demand, never resident.

    Picklable (the chunk streams carry counter-based streams and spill
    views, no closures), so worker processes re-emit chunks in place.
    """

    def __init__(self, stream):
        super().__init__(
            stream.name, stream.num_edges, stream.num_tail_nodes,
            stream.num_head_nodes, stream.directed,
        )
        self._stream = stream

    def read_chunk(self, lo, hi):
        return self._stream.emit(lo, hi)

    def chunks(self):
        return self._stream.chunks()

    def load(self):
        return self._stream.to_edge_table()


class _SpooledStructure(_StructureHandle):
    """Sequential generator: edges spilled to scratch, memory-mapped."""

    def __init__(self, spool, prefix, table):
        super().__init__(
            table.name, len(table), table.num_tail_nodes,
            table.num_head_nodes, table.directed,
        )
        spill = spool.spiller(prefix)
        self._tails = spill("tails", table.tails)
        self._heads = spill("heads", table.heads)
        self._chunk_edges = spool.shard_rows

    def read_chunk(self, lo, hi):
        return (
            np.asarray(self._tails[lo:hi]),
            np.asarray(self._heads[lo:hi]),
        )

    def chunks(self):
        for lo in range(0, self.num_edges, self._chunk_edges):
            hi = min(lo + self._chunk_edges, self.num_edges)
            yield (lo, *self.read_chunk(lo, hi))

    def load(self):
        from ..tables import EdgeTable

        return EdgeTable(
            self.name,
            np.asarray(self._tails),
            np.asarray(self._heads),
            num_tail_nodes=self.num_tail_nodes,
            num_head_nodes=self.num_head_nodes,
            directed=self.directed,
        )


# -- result -------------------------------------------------------------------


class ShardedResult(PropertyGraph):
    """A :class:`PropertyGraph` whose tables live in a disk spool.

    Tables are :class:`~repro.io.spool.SpooledPropertyTable` /
    :class:`~repro.io.spool.SpooledEdgeTable` — same streaming
    interface, bounded memory.  :meth:`materialize` loads everything
    into a plain :class:`PropertyGraph` for global consumers
    (validation, joint diagnostics); :meth:`cleanup` removes the spool
    directory once the result is no longer needed.
    """

    def __init__(self, schema, seed, spool):
        super().__init__(schema, seed)
        self.spool = spool

    def materialize(self):
        graph = PropertyGraph(self.schema, self.seed)
        graph.node_counts.update(self.node_counts)
        for key, table in self.node_properties.items():
            graph.node_properties[key] = table.to_property_table()
        for key, table in self.edge_tables.items():
            graph.edge_tables[key] = table.to_edge_table()
        for key, table in self.edge_properties.items():
            graph.edge_properties[key] = table.to_property_table()
        graph.match_results.update(self.match_results)
        return graph

    def cleanup(self):
        """Delete the spool directory (invalidates the tables)."""
        self.spool.cleanup()


# -- executor ------------------------------------------------------------------


class ShardedExecutor:
    """Run the generation DAG per id-range shard, memory-bounded.

    Parameters
    ----------
    schema, scale, seed:
        as for the serial engine.
    shard_rows:
        rows per shard — the pipeline's memory unit.
    memory_budget:
        alternative to ``shard_rows``: bytes (int or ``"512MB"``-style
        string) divided by :data:`BYTES_PER_SHARD_ROW`.
    workers:
        per-shard concurrency; the pool keeps a bounded in-flight
        window of ``workers + 1`` shards, so peak memory scales with
        ``workers × shard_rows``.  Output is identical for any worker
        count.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads share the
        parent's memory but the GIL caps kernel concurrency; the
        process backend forks a persistent worker pool that writes
        shard part files straight into the spool (and formats export
        chunks), which is what actually scales past one core.
    spool_dir:
        spool location (a temporary directory by default).  Resumable
        runs must name one explicitly: an owned temporary spool is
        removed when a stage fails, an explicit one is preserved for
        inspection and ``resume``.
    retries:
        per-shard retry budget.  Shard jobs are pure functions of
        their arguments, so a failed shard (worker exception or a
        worker killed mid-shard) is re-run — respawning the process
        pool when it broke — with exponential backoff; ``0`` keeps the
        fail-fast behaviour.
    resume:
        continue a previous run from its ``checkpoint.json`` ledger in
        ``spool_dir``: the run fingerprint is validated, acked shard
        parts are re-verified (size + CRC) and skipped, and the sink
        re-emits every table from the spool so the export is
        byte-identical to an uninterrupted run.
    faults:
        a :class:`~repro.core.faults.FaultPlan` (or spec string) to
        consult at stage boundaries; ``None`` falls back to the
        ``REPRO_FAULTS`` environment variable.  Test/chaos harness
        hook — production runs leave it unset.
    """

    def __init__(self, schema, scale, seed=0, shard_rows=None,
                 memory_budget=None, workers=1, backend="thread",
                 spool_dir=None, retries=0, backoff=0.1, resume=False,
                 faults=None):
        self.schema = schema.validate()
        self.scale = dict(scale)
        self.seed = int(seed)
        if shard_rows is None and memory_budget is not None:
            shard_rows = shard_rows_for_budget(
                parse_memory_budget(memory_budget)
            )
        self.shard_rows = int(shard_rows or DEFAULT_SHARD_ROWS)
        if self.shard_rows < 1:
            raise ValueError("shard_rows must be >= 1")
        self.workers = max(1, int(workers))
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.spool_dir = spool_dir
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.resume = bool(resume)
        if self.resume and spool_dir is None:
            raise ValueError(
                "resume requires an explicit spool_dir (an owned "
                "temporary spool is removed on failure, so there is "
                "nothing to resume from)"
            )
        self.faults = faults
        self._ledger = None
        self._stage_counters = None

    def run(self, sink=None):
        """Execute all tasks; returns a :class:`ShardedResult`.

        ``sink`` streams the graph to disk during generation exactly as
        with the in-memory engines: same serial plan order, same chunk
        geometry, byte-identical files.
        """
        order = build_task_graph(
            self.schema, self.scale
        ).topological_order()
        spool_dir = self.spool_dir
        owns_spool = spool_dir is None
        if owns_spool:
            spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
        spool = TableSpool(Path(spool_dir), self.shard_rows)
        result = ShardedResult(self.schema, self.seed, spool)
        structures = {}
        fingerprint = run_fingerprint(
            self.schema, self.scale, self.seed, self.shard_rows,
            self._sink_format(sink),
        )
        if self.resume:
            self._ledger = CheckpointLedger.load(
                spool.directory, fingerprint
            )
        else:
            self._ledger = CheckpointLedger.fresh(
                spool.directory, fingerprint
            )
        self._stage_counters = {"count": 0, "structure": 0}
        pool = ShardPool(self.backend, self.workers,
                         retries=self.retries, backoff=self.backoff)
        plan = _faults.as_plan(self.faults)
        previous_plan = _faults.install_plan(plan)
        pmap_attached = False
        try:
            try:
                if sink is not None:
                    sink.begin(result)
                    if self.backend == "process" and hasattr(sink, "pmap"):
                        pmap_attached = True
                        # Export formatting dominates wall time; route
                        # the sinks' per-chunk formatting through the
                        # same pool (results re-assembled in order, so
                        # bytes are unchanged).
                        sink.pmap = pool.ordered_map
                for task in order:
                    self._apply(task, result, structures, spool, pool)
                    export_task_output(task, sink)
                if sink is not None:
                    sink.finish()
                spool.write_manifests()
            except BaseException:
                # A stage raised mid-run: the spool holds half-written
                # shards nobody can consume.  Remove it — unless the
                # caller chose the directory, in which case it is
                # theirs to inspect, resume, and clean up.
                if owns_spool:
                    spool.cleanup()
                raise
        finally:
            pool.close()
            if pmap_attached:
                sink.pmap = None
            _faults.install_plan(previous_plan)
            if plan is not None and plan is not self.faults:
                # as_plan() compiled this plan (string or env spec) and
                # with it a private fired-state tempdir; a caller-built
                # FaultPlan stays the caller's to clean up.
                plan.cleanup()
            self._ledger = None
            self._stage_counters = None
        return result

    @staticmethod
    def _sink_format(sink):
        """Sink identity for the run fingerprint: a half-written CSV
        spool must not be resumed into a JSONL export."""
        if sink is None:
            return "none"
        return getattr(sink, "format_name", None) or type(sink).__name__

    # -- task dispatch -----------------------------------------------------

    def _apply(self, task, result, structures, spool, pool):
        if task.kind == "count":
            # Counts are never checkpointed: recomputing them on
            # resume is cheap and cross-checks the purity argument.
            index = self._stage_counters["count"]
            self._stage_counters["count"] = index + 1
            _faults.fire("count", index)
            result.node_counts[task.subject] = resolve_count(
                self.schema, self.scale, task, structures
            )
        elif task.kind == "property":
            self._apply_node_property(task, result, spool, pool)
        elif task.kind == "structure":
            self._apply_structure(task, result, structures, spool)
        elif task.kind == "match_prepare":
            # The CSR/arrival precomputation is a whole-structure
            # object; skipping it keeps this path bounded, and
            # match_edge re-derives the arrival order bit-identically
            # when prep is None.
            pass
        elif task.kind == "match":
            self._apply_match(task, result, structures, spool, pool)
        elif task.kind == "edge_property":
            self._apply_edge_property(task, result, spool, pool)
        else:  # pragma: no cover - guarded by build_task_graph
            raise DependencyError(f"unknown task kind {task.kind!r}")

    # -- properties --------------------------------------------------------

    def _run_property_shards(self, task, spec, count, deps, spool, pool,
                             role):
        """Generate one property table shard-by-shard into the spool.

        Shards flow through the pool's bounded in-flight window:
        workers run the range-pure kernel and save part files, the
        parent records the acked metadata in shard order — the kernels
        are pure, so scheduling cannot change the output.

        Each acked shard is checkpointed; on resume the ledger's
        verified prefix is adopted from the spool instead of re-run.
        """
        key = task.subject
        ledger = self._ledger
        bounds = spool.shard_bounds(count)
        acked = ledger.verified_shards(key)
        skip = min(len(acked), len(bounds))
        for index in range(skip):
            spool.record_property_shard(key, index, acked[index],
                                        role=role)
        jobs = (
            (spool, key, index, spec, task.task_id, self.seed,
             bounds[index], deps)
            for index in range(skip, len(bounds))
        )
        for offset, meta in enumerate(
            pool.ordered_map(_property_shard_part, jobs)
        ):
            index = skip + offset
            spool.record_property_shard(key, index, meta, role=role)
            ledger.ack_shard(key, "property", index, meta, role=role)
        ledger.finish_table(key, "property", role=role)

    def _apply_node_property(self, task, result, spool, pool):
        type_name, prop_name = task.subject.split(".", 1)
        prop = self.schema.node_type(type_name).property_named(prop_name)
        if prop.generator is None:
            raise SchemaError(
                f"{task.subject}: no property generator declared"
            )
        count = result.node_counts[type_name]
        deps = [
            ("range", result.node_properties[f"{type_name}.{dep}"])
            for dep in prop.depends_on
        ]
        self._run_property_shards(
            task, prop.generator, count, deps, spool, pool,
            role="node_property",
        )
        result.node_properties[task.subject] = spool.finish_property(
            task.subject
        )

    def _apply_edge_property(self, task, result, spool, pool):
        edge_name, prop_name = task.subject.split(".", 1)
        edge = self.schema.edge_type(edge_name)
        prop = edge.property_named(prop_name)
        if prop.generator is None:
            raise SchemaError(
                f"{task.subject}: no property generator declared"
            )
        table = result.edge_tables[edge_name]
        deps = []
        for dep in prop.depends_on:
            if dep.startswith("tail."):
                deps.append((
                    "tail",
                    result.node_properties[
                        f"{edge.tail_type}.{dep[len('tail.'):]}"
                    ],
                    table,
                ))
            elif dep.startswith("head."):
                deps.append((
                    "head",
                    result.node_properties[
                        f"{edge.head_type}.{dep[len('head.'):]}"
                    ],
                    table,
                ))
            else:
                deps.append((
                    "range",
                    result.edge_properties[f"{edge_name}.{dep}"],
                ))
        self._run_property_shards(
            task, prop.generator, len(table), deps, spool, pool,
            role="edge_property",
        )
        result.edge_properties[task.subject] = spool.finish_property(
            task.subject
        )

    # -- structure and matching --------------------------------------------

    def _edge_restorable(self, edge_name):
        """True when a completed edge table can be adopted from the
        spool: its acks are sealed, every part file still verifies,
        and the structure metadata needed by ``resolve_count`` was
        recorded.  Verification happens *here*, at the structure task,
        because a torn part discovered later would need the structure
        this decision skips."""
        ledger = self._ledger
        if not ledger.table_done(edge_name):
            return False
        ledger.verified_shards(edge_name)  # truncates (and unseals) on a torn part
        return (ledger.table_done(edge_name)
                and ledger.structure_meta(edge_name) is not None)

    def _apply_structure(self, task, result, structures, spool):
        index = self._stage_counters["structure"]
        self._stage_counters["structure"] = index + 1
        if self._edge_restorable(task.subject):
            # The matched edge table will be adopted whole from the
            # spool; a metadata-only handle keeps derived counts
            # resolvable without re-generating the structure.
            meta = self._ledger.structure_meta(task.subject)
            structures[task.subject] = _StructureHandle(
                meta["name"], meta["num_edges"], meta["num_tail_nodes"],
                meta["num_head_nodes"], meta["directed"],
            )
            return
        _faults.fire("structure", index)
        spec, sg_seed, n = structure_inputs(
            self.schema, self.scale, self.seed, task, result.node_counts
        )
        generator = create_generator(
            spec.name, seed=sg_seed, **spec.params
        )
        prefix = f"structure.{task.subject}"
        if generator.chunkable(n):
            stream = generator.run_chunked(
                n, spool.shard_rows, spill=spool.spiller(prefix)
            )
            structures[task.subject] = _ChunkedStructure(stream)
        else:
            # Sequential generators are a documented global stage:
            # materialise once, spill to scratch, free.
            table = generator.run(n)
            structures[task.subject] = _SpooledStructure(
                spool, prefix, table
            )
            del table
        handle = structures[task.subject]
        self._ledger.record_structure(task.subject, {
            "name": handle.name,
            "num_edges": handle.num_edges,
            "num_tail_nodes": handle.num_tail_nodes,
            "num_head_nodes": handle.num_head_nodes,
            "directed": handle.directed,
        })

    def _restore_match(self, edge, result, spool):
        """Adopt a completed edge table from the spool (resume path):
        re-record the verified acks, seal, and skip matching.  The
        match-result diagnostic is not reconstructed — it describes
        the matching *work*, which did not run."""
        ledger = self._ledger
        entry = ledger.table(edge.name)
        for index, meta in enumerate(entry["shards"]):
            spool.record_edge_shard(edge.name, index, meta)
        meta = entry["meta"]
        result.edge_tables[edge.name] = spool.finish_edge(
            edge.name, meta["num_tail_nodes"], meta["num_head_nodes"],
            meta["directed"], name=meta["name"],
        )
        result.match_results[edge.name] = None

    def _apply_match(self, task, result, structures, spool, pool):
        edge = self.schema.edge_type(task.subject)
        if self._ledger.table_done(edge.name):
            # Verified by _edge_restorable at the structure task.
            self._restore_match(edge, result, spool)
            return
        handle = structures[edge.name]
        tail_count = result.node_counts[edge.tail_type]
        head_count = result.node_counts[edge.head_type]
        corr = edge.correlation
        strict = edge.cardinality in (
            Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
        )
        correlated = (
            corr is not None
            and not strict
            and (edge.is_monopartite or corr.head_property is not None)
        )
        if correlated:
            # SBM-Part matching walks the whole structure — the other
            # documented global stage.  Materialise, match with the
            # exact serial kernel, spill the final table, free.  As a
            # global stage it checkpoints all-or-nothing: a partial
            # ack prefix from a crashed run is discarded, not resumed.
            self._ledger.reset_table(edge.name)
            structure = handle.load()
            tail_key = f"{edge.tail_type}.{corr.tail_property}"
            tail_pt = result.node_properties[
                tail_key
            ].to_property_table()
            head_pt = None
            if corr.head_property is not None:
                head_pt = result.node_properties[
                    f"{edge.head_type}.{corr.head_property}"
                ].to_property_table()
            table, match = match_edge(
                edge, self.seed, task.task_id, structure,
                tail_count, head_count, tail_pt, head_pt, prep=None,
            )
            del structure, tail_pt, head_pt
            for index, (_, tails, heads) in enumerate(
                table.iter_chunks(spool.shard_rows)
            ):
                shard_meta = spool.write_edge_shard(
                    edge.name, index, tails, heads
                )
                self._ledger.ack_shard(edge.name, "edge", index,
                                       shard_meta)
            meta = (
                table.num_tail_nodes, table.num_head_nodes,
                table.directed,
            )
            table_name = table.name
            del table
        else:
            meta = self._match_streaming(
                task, edge, handle, tail_count, head_count, spool,
                strict, pool,
            )
            match = None
            table_name = handle.name
        spool.drop_scratch(f"structure.{edge.name}")
        spool.drop_scratch(f"match.{edge.name}")
        # relabeled() preserves the structure table's name, so the
        # spooled table carries it too — EdgeTable.__eq__ compares it.
        result.edge_tables[edge.name] = spool.finish_edge(
            edge.name, *meta, name=table_name
        )
        result.match_results[edge.name] = match
        self._ledger.finish_table(edge.name, "edge", meta={
            "num_tail_nodes": meta[0],
            "num_head_nodes": meta[1],
            "directed": meta[2],
            "name": table_name,
        })

    def _match_streaming(self, task, edge, handle, tail_count,
                         head_count, spool, strict, pool):
        """Permutation matchings applied chunk-by-chunk.

        Derives the exact mappings the serial ``match_edge`` builds —
        same streams, same slices — then relabels each structure chunk
        as it is re-emitted.  The mappings are the O(nodes) term of the
        memory bound.  On the process backend the mappings are spilled
        once and shipped to workers as paths, so relabelling runs in
        the pool with the chunks re-emitted worker-side.
        """
        stream = RandomStream(derive_seed(self.seed, task.task_id))
        if strict:
            if handle.num_tail_nodes > tail_count:
                raise SchemaError(
                    f"edge {edge.name!r}: structure has more tails than "
                    f"{edge.tail_type!r} instances"
                )
            tail_map = stream.substream("tails").permutation(
                tail_count
            )[:handle.num_tail_nodes]
            head_map = None  # identity: heads define the instances
            n_tail = len(tail_map)
            n_head = handle.num_head_nodes
        elif not edge.is_monopartite:
            tail_map = stream.substream("tails").permutation(
                tail_count
            )[:handle.num_tail_nodes]
            head_map = stream.substream("heads").permutation(
                head_count
            )[:handle.num_head_nodes]
            n_tail, n_head = len(tail_map), len(head_map)
        else:
            if handle.num_nodes > tail_count:
                raise SchemaError(
                    f"edge {edge.name!r}: structure has "
                    f"{handle.num_nodes} nodes but {edge.tail_type!r} "
                    f"has {tail_count} instances"
                )
            pt_ids = PropertyTable(
                edge.name, np.arange(tail_count, dtype=np.int64)
            )
            mapping = random_match(
                pt_ids, handle, seed=derive_seed(self.seed, task.task_id)
            )
            tail_map = head_map = mapping
            n_tail = n_head = len(mapping)
        if self.backend == "process" and handle.num_edges:
            # Ship the O(nodes) mappings once, as spool paths.
            spill = spool.spiller(f"match.{edge.name}")
            shared = head_map is tail_map
            tail_map = spill("tail_map", tail_map)
            if shared:
                head_map = tail_map
            elif head_map is not None:
                head_map = spill("head_map", head_map)
        ledger = self._ledger
        acked = ledger.verified_shards(edge.name)
        total = -(-handle.num_edges // spool.shard_rows)
        skip = min(len(acked), total)
        for index in range(skip):
            spool.record_edge_shard(edge.name, index, acked[index])
        jobs = (
            (spool, edge.name, index, handle,
             index * spool.shard_rows,
             min((index + 1) * spool.shard_rows, handle.num_edges),
             tail_map, head_map)
            for index in range(skip, total)
        )
        for offset, meta in enumerate(
            pool.ordered_map(_relabel_shard_part, jobs)
        ):
            index = skip + offset
            spool.record_edge_shard(edge.name, index, meta)
            ledger.ack_shard(edge.name, "edge", index, meta)
        return n_tail, n_head, handle.directed


def execute_sharded(schema, scale, seed=0, sink=None, **kwargs):
    """One-call convenience mirroring ``execute_parallel``."""
    return ShardedExecutor(schema, scale, seed, **kwargs).run(sink=sink)
