"""Deterministic fault injection for the sharded pipelines.

The fault-tolerance layer (checkpoint/resume, shard retry, serving
drain) is only trustworthy if its failure paths are exercised the same
way every run.  This module provides that substrate: a
:class:`FaultPlan` compiled from a compact spec string (the
``REPRO_FAULTS`` environment variable or the ``--inject-faults`` CLI
flag) that the executor and its workers consult at stage boundaries.

Spec grammar (comma- or whitespace-separated entries)::

    SITE:INDEX:ACTION[=VALUE][:xTIMES]

    shard:3:crash          raise InjectedFault in pool shard 3
    shard:5:slow=2.0       sleep 2 s in pool shard 5
    shard:1:kill           SIGKILL the worker running pool shard 1
    export:2:ioerror       raise OSError on the 3rd export file write
    property:0:crash:x2    crash property shard 0 on its first 2 runs

Sites map to pipeline stages: ``count`` / ``property`` / ``structure``
/ ``match`` / ``export`` fire at the matching stage (index = per-stage
occurrence counter: shard index for worker stages, write counter for
export), and the generic ``shard`` site fires for *any* pool-executed
shard job by its submission index.

Every fault fires a bounded number of times (default once) and the
fired-state lives in small append-only files under a state directory,
not in memory — so a fault that kills a worker stays fired across the
pool respawn and across a ``--resume`` of the same plan, which is what
makes retry/resume tests deterministic.  Plans pickle as (spec text,
state dir) and the executor installs the active plan in a module
global before the worker pool forks, so forked workers inherit it.
"""

from __future__ import annotations

import os
import re
import shutil
import signal
import tempfile
import time

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "fire",
    "install_plan",
    "parse_faults",
    "plan_from_env",
    "wrap_export_handle",
]

#: Stage boundaries that consult the plan.  ``shard`` is the generic
#: site: it matches any pool-executed shard job by submission index.
FAULT_SITES = ("count", "property", "structure", "match", "export", "shard")

FAULT_ACTIONS = ("crash", "kill", "slow", "ioerror")

ENV_FAULTS = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

_SPEC_RE = re.compile(
    r"^(?P<site>[a-z]+):(?P<index>\d+):(?P<action>[a-z]+)"
    r"(?:=(?P<value>[0-9.]+))?(?::x(?P<times>\d+))?$"
)


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault — a stand-in for an arbitrary
    worker/stage exception in tests and chaos runs."""


class FaultSpec:
    """One parsed fault: fire ``action`` at ``site`` occurrence
    ``index``, at most ``times`` times."""

    __slots__ = ("site", "index", "action", "value", "times")

    def __init__(self, site, index, action, value=0.0, times=1):
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; expected one of {FAULT_SITES}"
            )
        if action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if action == "slow" and value <= 0:
            raise ValueError("slow faults need a positive =SECONDS value")
        self.site = site
        self.index = int(index)
        self.action = action
        self.value = float(value)
        self.times = int(times)
        if self.times < 1:
            raise ValueError("fault times must be >= 1")

    @property
    def tag(self):
        """Stable filename-safe identity used for fired-state files."""
        return f"{self.site}.{self.index}.{self.action}"

    def text(self):
        """Round-trip back to spec-grammar text."""
        out = f"{self.site}:{self.index}:{self.action}"
        if self.action == "slow":
            out += f"={self.value:g}"
        if self.times != 1:
            out += f":x{self.times}"
        return out

    def __repr__(self):  # pragma: no cover - debug aid
        return f"FaultSpec({self.text()!r})"


def parse_faults(text):
    """Parse a spec string into a tuple of :class:`FaultSpec`.

    >>> [s.text() for s in parse_faults("shard:3:crash, export:2:ioerror")]
    ['shard:3:crash', 'export:2:ioerror']
    >>> parse_faults("shard:5:slow=2.0")[0].value
    2.0
    """
    specs = []
    for token in re.split(r"[,\s]+", (text or "").strip()):
        if not token:
            continue
        match = _SPEC_RE.match(token)
        if match is None:
            raise ValueError(
                f"bad fault spec {token!r}; expected "
                "SITE:INDEX:ACTION[=VALUE][:xTIMES] "
                "like 'shard:3:crash' or 'shard:5:slow=2.0'"
            )
        specs.append(FaultSpec(
            match.group("site"),
            int(match.group("index")),
            match.group("action"),
            float(match.group("value") or 0.0),
            int(match.group("times") or 1),
        ))
    return tuple(specs)


class FaultPlan:
    """A compiled set of faults plus their cross-process fired-state.

    The fired counter for each fault is the *size in bytes* of an
    append-only file under ``state_dir`` — appends of one byte are
    atomic, so concurrent workers and respawned pools agree on how
    many times a fault has fired without any locking.
    """

    def __init__(self, specs, state_dir=None):
        if isinstance(specs, str):
            specs = parse_faults(specs)
        self.specs = tuple(specs)
        self._owns_state = False
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
            self._owns_state = True
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self._sites = frozenset(spec.site for spec in self.specs)

    @property
    def text(self):
        return ",".join(spec.text() for spec in self.specs)

    def has_site(self, site):
        return site in self._sites

    # -- fired-state ------------------------------------------------------

    def _claim(self, spec):
        """Record one firing; True while the fault still has shots."""
        path = os.path.join(self.state_dir, spec.tag + ".fired")
        with open(path, "ab") as handle:
            handle.write(b"x")
            handle.flush()
            fired = handle.tell()
        return fired <= spec.times

    def fired_count(self, spec):
        path = os.path.join(self.state_dir, spec.tag + ".fired")
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def reset(self):
        """Forget all fired-state (a fresh chaos round)."""
        for name in os.listdir(self.state_dir):
            if name.endswith(".fired"):
                os.unlink(os.path.join(self.state_dir, name))

    def cleanup(self):
        if self._owns_state:
            shutil.rmtree(self.state_dir, ignore_errors=True)

    # -- firing -----------------------------------------------------------

    def fire(self, site, index):
        """Trigger any matching fault for occurrence ``index`` of
        ``site``.  Crash/ioerror faults raise; kill SIGKILLs the
        current process; slow sleeps."""
        if site not in self._sites:
            return
        index = int(index)
        for spec in self.specs:
            if spec.site != site or spec.index != index:
                continue
            if not self._claim(spec):
                continue
            if spec.action == "crash":
                raise InjectedFault(
                    f"injected fault {spec.text()!r} at {site}:{index}"
                )
            if spec.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if spec.action == "ioerror":
                raise OSError(
                    f"injected I/O fault {spec.text()!r} at {site}:{index}"
                )
            if spec.action == "slow":
                time.sleep(spec.value)

    # -- pickling (workers get (text, state_dir), never owning state) -----

    def __getstate__(self):
        return {"text": self.text, "state_dir": self.state_dir}

    def __setstate__(self, state):
        self.specs = parse_faults(state["text"])
        self.state_dir = state["state_dir"]
        self._owns_state = False
        self._sites = frozenset(spec.site for spec in self.specs)


def plan_from_env(environ=None):
    """Compile a plan from ``REPRO_FAULTS`` (state dir from
    ``REPRO_FAULTS_STATE`` if set); None when the variable is unset
    or empty."""
    environ = os.environ if environ is None else environ
    text = environ.get(ENV_FAULTS, "").strip()
    if not text:
        return None
    return FaultPlan(text, state_dir=environ.get(ENV_STATE) or None)


def as_plan(faults):
    """Coerce a spec string / FaultPlan / None; None falls back to the
    environment so chaos harnesses can inject into any entry point."""
    if faults is None:
        return plan_from_env()
    if isinstance(faults, FaultPlan):
        return faults
    return FaultPlan(faults)


# -- the active plan ----------------------------------------------------------
#
# Installed by the executor for the duration of a run.  A module global
# (not an argument threaded through every stage) because forked pool
# workers must inherit it and the fast path — no plan installed — must
# cost one attribute load.

_ACTIVE = None


def install_plan(plan):
    """Install ``plan`` as the active plan; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def active_plan():
    return _ACTIVE


def fire(site, index):
    """Stage-boundary hook: no-op unless a plan is active and matches."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site, index)


class _ExportHandle:
    """Write-path wrapper firing the ``export`` site once per write
    call (the occurrence counter is plan-global, so ``export:N``
    addresses the N-th formatted chunk written this run)."""

    def __init__(self, handle, plan):
        self._handle = handle
        self._plan = plan

    def write(self, text):
        self._plan.fire("export", _next_export_index(self._plan))
        return self._handle.write(text)

    def __enter__(self):
        self._handle.__enter__()
        return self

    def __exit__(self, *exc_info):
        return self._handle.__exit__(*exc_info)

    def __getattr__(self, name):
        return getattr(self._handle, name)


def _next_export_index(plan):
    """Per-plan export write counter, persisted like fired-state so it
    survives a resume of the same plan only within one process run."""
    counter = getattr(plan, "_export_counter", None)
    if counter is None:
        counter = [0]
        plan._export_counter = counter
    index = counter[0]
    counter[0] += 1
    return index


def wrap_export_handle(handle):
    """Wrap a text write handle with the export fault site; the
    identity function when no active plan targets ``export``."""
    plan = _ACTIVE
    if plan is None or not plan.has_site("export"):
        return handle
    return _ExportHandle(handle, plan)
