"""Persistent worker pools behind the sharded executor.

The sharded executor schedules every per-shard unit of work — property
kernels, chunked structure emission + relabel, export formatting —
through one :class:`ShardPool`.  The pool abstracts the two backends:

``thread``
    a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap, shares
    the parent's memory, but the GIL caps the numpy-light portions of
    the kernels at roughly one core.

``process``
    a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
    (forked where the platform allows, so runtime-registered
    generators are inherited).  Workers receive small picklable
    descriptors — spool paths, shard bounds, seeds — write their
    results straight into the spool directory, and ack metadata back;
    the spool files are the IPC channel, the result queue carries only
    dicts.

Scheduling is a *bounded in-flight window*, not lock-step waves:
:meth:`ShardPool.ordered_map` keeps at most ``window`` jobs submitted
ahead of the consumer and yields results in submission order, so a
skewed shard no longer idles the other workers while peak memory stays
at the documented ``workers x shard_rows``.

A worker killed mid-shard surfaces as :class:`ShardedError`; the
executor translates that into spool cleanup, so a crash never leaks a
spool directory.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = ["BACKENDS", "ShardPool", "ShardedError"]

BACKENDS = ("thread", "process")


class ShardedError(RuntimeError):
    """A sharded worker failed irrecoverably (e.g. killed mid-shard)."""


class ShardPool:
    """Bounded-window ordered scheduler over a thread/process pool.

    The pool is created lazily on first use and persists across tasks
    (one fork per run, not per shard).  ``workers == 1`` on the thread
    backend short-circuits to inline execution — the reference serial
    path every other configuration must byte-match.
    """

    def __init__(self, backend="thread", workers=1):
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.workers = max(int(workers), 1)
        self._pool = None

    def _executor(self):
        if self._pool is None:
            if self.backend == "process":
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def ordered_map(self, fn, jobs, window=None):
        """Yield ``fn(*args)`` per arg-tuple, in submission order.

        At most ``window`` (default ``workers + 1``) jobs are in
        flight; submission advances as the consumer drains results, so
        shard-cost skew cannot idle workers the way lock-step waves
        did, and the parent never holds more than a window of results.
        """
        jobs = iter(jobs)
        if self.workers == 1 and self.backend == "thread":
            for args in jobs:
                yield fn(*args)
            return
        window = max(int(window if window else self.workers + 1), 1)
        pool = self._executor()
        pending = deque()
        try:
            for args in jobs:
                pending.append(pool.submit(fn, *args))
                if len(pending) >= window:
                    yield self._result(pending.popleft())
            while pending:
                yield self._result(pending.popleft())
        finally:
            for future in pending:
                future.cancel()

    @staticmethod
    def _result(future):
        try:
            return future.result()
        except BrokenProcessPool as exc:
            raise ShardedError(
                "sharded worker process died mid-shard; the run was "
                "aborted and its spool output discarded"
            ) from exc

    def close(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
