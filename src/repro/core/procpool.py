"""Persistent worker pools behind the sharded executor.

The sharded executor schedules every per-shard unit of work — property
kernels, chunked structure emission + relabel, export formatting —
through one :class:`ShardPool`.  The pool abstracts the two backends:

``thread``
    a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap, shares
    the parent's memory, but the GIL caps the numpy-light portions of
    the kernels at roughly one core.

``process``
    a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
    (forked where the platform allows, so runtime-registered
    generators are inherited).  Workers receive small picklable
    descriptors — spool paths, shard bounds, seeds — write their
    results straight into the spool directory, and ack metadata back;
    the spool files are the IPC channel, the result queue carries only
    dicts.

Scheduling is a *bounded in-flight window*, not lock-step waves:
:meth:`ShardPool.ordered_map` keeps at most ``window`` jobs submitted
ahead of the consumer and yields results in submission order, so a
skewed shard no longer idles the other workers while peak memory stays
at the documented ``workers x shard_rows``.

Shard jobs are pure functions of their argument tuples, so a failed
shard is safe to re-run: with ``retries=N`` the pool respawns after a
:class:`~concurrent.futures.process.BrokenProcessPool` (a worker
killed mid-shard) and re-submits the window, or re-submits just the
failed shard after an ordinary worker exception, backing off
exponentially between attempts.  Exhausted retries surface as
:class:`ShardedError` carrying the failing shard id and — when the
exception crossed the process boundary intact — the formatted
worker-side traceback; the executor translates that into spool
cleanup, so a crash never leaks a spool directory.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

__all__ = ["BACKENDS", "ShardPool", "ShardedError"]

BACKENDS = ("thread", "process")


class ShardedError(RuntimeError):
    """A sharded worker failed irrecoverably (retries exhausted).

    Attributes
    ----------
    shard:
        submission index of the failing shard job (None when unknown).
    worker_traceback:
        the formatted traceback from the worker side, when one crossed
        the process boundary; None for a worker killed outright (the
        kernel leaves no Python traceback to forward).
    """

    def __init__(self, message, shard=None, worker_traceback=None):
        super().__init__(message)
        self.shard = shard
        self.worker_traceback = worker_traceback


def _remote_traceback(exc):
    """Formatted worker-side traceback for a pool exception.

    ``ProcessPoolExecutor`` chains a ``_RemoteTraceback`` (the string
    form of the worker's traceback) as ``__cause__`` when it re-raises
    a picklable worker exception in the parent; fall back to the local
    format for thread-backend exceptions, whose traceback objects are
    shared directly.
    """
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return str(cause)
    formatted = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return formatted or None


class ShardPool:
    """Bounded-window ordered scheduler over a thread/process pool.

    The pool is created lazily on first use and persists across tasks
    (one fork per run, not per shard).  ``workers == 1`` on the thread
    backend short-circuits to inline execution — the reference serial
    path every other configuration must byte-match; failures there
    propagate raw, exactly as a serial run would raise them.

    ``retries`` bounds re-runs *per shard*; ``backoff`` is the base
    delay of the exponential backoff (``backoff * 2**(attempt-1)``,
    capped at :data:`BACKOFF_CAP` seconds) slept before each re-run.
    """

    BACKOFF_CAP = 2.0

    def __init__(self, backend="thread", workers=1, retries=0, backoff=0.1):
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.backend = backend
        self.workers = max(int(workers), 1)
        self.retries = max(int(retries), 0)
        self.backoff = max(float(backoff), 0.0)
        self._pool = None

    def _executor(self):
        if self._pool is None:
            if self.backend == "process":
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def ordered_map(self, fn, jobs, window=None):
        """Yield ``fn(*args)`` per arg-tuple, in submission order.

        At most ``window`` (default ``workers + 1``) jobs are in
        flight; submission advances as the consumer drains results, so
        shard-cost skew cannot idle workers the way lock-step waves
        did, and the parent never holds more than a window of results.
        """
        jobs = iter(jobs)
        if self.workers == 1 and self.backend == "thread":
            for args in jobs:
                yield fn(*args)
            return
        window = max(int(window if window else self.workers + 1), 1)
        # Pending items are [shard_index, args, future, attempts]; args
        # are retained while in flight so a failed shard can be re-run.
        pending = deque()
        index = 0
        try:
            for args in jobs:
                item = [index, args, None, 0]
                self._submit(fn, pending, item)
                pending.append(item)
                index += 1
                if len(pending) >= window:
                    yield self._next_result(fn, pending)
            while pending:
                yield self._next_result(fn, pending)
        finally:
            for item in pending:
                item[2].cancel()

    def _submit(self, fn, pending, item):
        """Submit ``item``'s job, absorbing a pool that broke under us.

        A worker SIGKILL can surface on the *submit* side — the pool
        breaks while the window is still filling — so submission runs
        through the same retry accounting as result collection: the
        head in-flight shard (the probable victim) is charged an
        attempt, the pool respawned, the window resubmitted, and then
        this item submitted onto the fresh pool.
        """
        while True:
            try:
                item[2] = self._executor().submit(fn, *item[1])
                return
            except BrokenProcessPool as exc:
                victim = pending[0] if pending else item
                self._retry(fn, pending, victim, exc, pool_broken=True)

    def _next_result(self, fn, pending):
        """Resolve the head-of-queue shard, retrying up to the budget."""
        while True:
            item = pending[0]
            try:
                result = item[2].result()
            except BrokenProcessPool as exc:
                self._retry(fn, pending, item, exc, pool_broken=True)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                self._retry(fn, pending, item, exc, pool_broken=False)
            else:
                pending.popleft()
                return result

    def _retry(self, fn, pending, item, exc, pool_broken):
        item[3] += 1
        if item[3] > self.retries:
            raise self._failure(item[0], item[3], exc, pool_broken) from exc
        delay = min(self.backoff * (2 ** (item[3] - 1)), self.BACKOFF_CAP)
        if delay > 0:
            time.sleep(delay)
        if pool_broken:
            # The executor is unusable once broken: discard it, respawn
            # lazily, and resubmit the whole in-flight window (their
            # futures all died with the pool).  Only the head item's
            # attempt counter advances — the trailing shards were
            # collateral, not the (probable) culprit.
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            for entry in pending:
                entry[2] = self._executor().submit(fn, *entry[1])
        else:
            item[2] = self._executor().submit(fn, *item[1])

    def _failure(self, shard, attempts, exc, pool_broken):
        tried = f"after {attempts} attempt{'s' if attempts != 1 else ''}"
        if pool_broken:
            return ShardedError(
                f"sharded worker process died mid-shard (shard {shard}, "
                f"{tried}); the run was aborted and its spool output "
                "discarded",
                shard=shard,
                worker_traceback=None,
            )
        remote = _remote_traceback(exc)
        message = (
            f"sharded worker failed on shard {shard} {tried}: {exc!r}"
        )
        if remote:
            message += "\n--- worker traceback ---\n" + remote.rstrip("\n")
        return ShardedError(message, shard=shard, worker_traceback=remote)

    def close(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
