"""DataSynth core: schema, dependency analysis, matching, engine."""

from .checkpoint import (
    CheckpointError,
    CheckpointLedger,
    run_fingerprint,
    schema_fingerprint,
)
from .dependency import DependencyError, Task, TaskGraph, build_task_graph
from .engine import GraphGenerator
from .executor import ParallelExecutor, execute_parallel
from .faults import FaultPlan, InjectedFault, parse_faults
from .matching import (
    BipartiteMatchResult,
    SbmPartResult,
    bipartite_sbm_part_match,
    edge_count_target,
    greedy_label_match,
    ldg_degree_match,
    random_match,
    sbm_part_assign,
    sbm_part_match,
)
from .result import PropertyGraph
from .sharded import (
    ShardedError,
    ShardedExecutor,
    ShardedResult,
    execute_sharded,
    parse_memory_budget,
)
from .schema import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
    SchemaError,
)

__all__ = [
    "BipartiteMatchResult",
    "Cardinality",
    "CheckpointError",
    "CheckpointLedger",
    "CorrelationSpec",
    "DependencyError",
    "EdgeType",
    "FaultPlan",
    "GeneratorSpec",
    "GraphGenerator",
    "InjectedFault",
    "NodeType",
    "ParallelExecutor",
    "PropertyDef",
    "PropertyGraph",
    "SbmPartResult",
    "Schema",
    "SchemaError",
    "ShardedError",
    "ShardedExecutor",
    "ShardedResult",
    "Task",
    "TaskGraph",
    "bipartite_sbm_part_match",
    "build_task_graph",
    "edge_count_target",
    "execute_parallel",
    "execute_sharded",
    "greedy_label_match",
    "ldg_degree_match",
    "parse_faults",
    "parse_memory_budget",
    "random_match",
    "run_fingerprint",
    "schema_fingerprint",
    "sbm_part_assign",
    "sbm_part_match",
]
