"""Generation result: the final property graph.

The engine's output bundles the paper's storage model — Property Tables
per ``<type, property>`` and Edge Tables per edge type — together with
the match diagnostics, so experiments can inspect how well each
requested joint distribution was realised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PropertyGraph"]


class PropertyGraph:
    """A generated property graph.

    Attributes
    ----------
    schema:
        the source :class:`~repro.core.schema.Schema`.
    node_counts:
        dict node type -> instance count.
    node_properties:
        dict ``"Type.prop"`` -> :class:`~repro.tables.PropertyTable`.
    edge_tables:
        dict edge type -> :class:`~repro.tables.EdgeTable` with *final*
        node ids (matching applied).
    edge_properties:
        dict ``"Edge.prop"`` -> :class:`~repro.tables.PropertyTable`
        over edge ids.
    match_results:
        dict edge type -> matcher result (or None for random matching).
    seed:
        the root seed the graph was generated from.
    """

    def __init__(self, schema, seed):
        self.schema = schema
        self.seed = seed
        self.node_counts = {}
        self.node_properties = {}
        self.edge_tables = {}
        self.edge_properties = {}
        self.match_results = {}

    # -- lookups -----------------------------------------------------------

    def node_property(self, type_name, prop_name):
        """PT of a node property."""
        key = f"{type_name}.{prop_name}"
        if key not in self.node_properties:
            raise KeyError(f"no node property table {key!r}")
        return self.node_properties[key]

    def edge_property(self, edge_name, prop_name):
        """PT of an edge property."""
        key = f"{edge_name}.{prop_name}"
        if key not in self.edge_properties:
            raise KeyError(f"no edge property table {key!r}")
        return self.edge_properties[key]

    def edges(self, edge_name):
        """Final ET of an edge type."""
        if edge_name not in self.edge_tables:
            raise KeyError(f"no edge table {edge_name!r}")
        return self.edge_tables[edge_name]

    def num_nodes(self, type_name):
        if type_name not in self.node_counts:
            raise KeyError(f"no node type {type_name!r}")
        return self.node_counts[type_name]

    def num_edges(self, edge_name):
        return len(self.edges(edge_name))

    # -- views -------------------------------------------------------------

    def node_records(self, type_name, limit=None):
        """Iterate node instances as dicts (id + properties)."""
        count = self.num_nodes(type_name)
        stop = count if limit is None else min(limit, count)
        prop_names = [
            p.name
            for p in self.schema.node_type(type_name).properties
        ]
        columns = {
            name: self.node_property(type_name, name).values
            for name in prop_names
        }
        for i in range(stop):
            record = {"id": i}
            for name in prop_names:
                record[name] = columns[name][i]
            yield record

    def edge_records(self, edge_name, limit=None):
        """Iterate edge instances as dicts (id, tail, head + properties)."""
        table = self.edges(edge_name)
        stop = len(table) if limit is None else min(limit, len(table))
        prop_names = [
            p.name for p in self.schema.edge_type(edge_name).properties
        ]
        columns = {
            name: self.edge_property(edge_name, name).values
            for name in prop_names
        }
        for i in range(stop):
            record = {
                "id": i,
                "tail": int(table.tails[i]),
                "head": int(table.heads[i]),
            }
            for name in prop_names:
                record[name] = columns[name][i]
            yield record

    def observed_joint(self, edge_name):
        """Empirical joint of the correlated property over this edge type.

        Only defined for edges declared with a (monopartite)
        correlation; returns a
        :class:`~repro.stats.JointDistribution` in the category order
        used by the matcher.
        """
        from ..stats import empirical_joint

        edge = self.schema.edge_type(edge_name)
        if edge.correlation is None or edge.correlation.head_property:
            raise ValueError(
                f"edge {edge_name!r} has no monopartite correlation"
            )
        table = self.edges(edge_name)
        pt = self.node_property(
            edge.tail_type, edge.correlation.tail_property
        )
        codes, _ = pt.codes()
        return empirical_joint(
            table.tails, table.heads, codes, k=int(codes.max()) + 1
        )

    def summary(self):
        """Counts per type — a quick shape check."""
        return {
            "nodes": dict(self.node_counts),
            "edges": {
                name: len(table)
                for name, table in self.edge_tables.items()
            },
        }

    def __repr__(self):
        nodes = ", ".join(
            f"{k}={v}" for k, v in sorted(self.node_counts.items())
        )
        edges = ", ".join(
            f"{k}={len(v)}" for k, v in sorted(self.edge_tables.items())
        )
        return f"PropertyGraph({nodes}; {edges})"
