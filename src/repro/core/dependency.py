"""Dependency analysis: schema -> task DAG (Figure 2, left box).

"The data generation process begins analyzing the schema described by
the user to reveal dependencies among the data to be generated. ...
from the dependencies analysis we get a dependency graph, which we
traverse to preserve the dependencies between the tasks."

The task graph is a plain string-keyed DAG.  Task ids follow the
conventions::

    count:<NodeType>              the instance count of a node type
    property:<Type>.<prop>        a node or edge property table
    structure:<EdgeType>          an edge table (pre-matching)
    match_prepare:<EdgeType>      stream-order precomputation for a
                                  correlated matching step (CSR, arrival
                                  order, later-neighbour tables)
    match:<EdgeType>              the matching step of an edge type

Cycles (e.g. a node type whose count depends on an edge whose size
depends on that node type, with no anchor given by the scale spec) are
reported as :class:`DependencyError` with the cycle spelled out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DependencyError", "Task", "TaskGraph", "build_task_graph"]


class DependencyError(ValueError):
    """Raised for unsatisfiable or cyclic task dependencies."""


@dataclass
class Task:
    """One unit of generation work.

    Attributes
    ----------
    task_id:
        unique string id (see module docstring conventions).
    kind:
        "count" | "property" | "structure" | "match" | "edge_property".
    subject:
        the schema object name the task concerns.
    depends_on:
        ids of tasks that must run first.
    """

    task_id: str
    kind: str
    subject: str
    depends_on: tuple = ()

    def __post_init__(self):
        self.depends_on = tuple(self.depends_on)


class TaskGraph:
    """A DAG of :class:`Task` with topological scheduling."""

    def __init__(self):
        self._tasks = {}

    def add(self, task):
        if task.task_id in self._tasks:
            raise DependencyError(f"duplicate task {task.task_id!r}")
        self._tasks[task.task_id] = task
        return task

    def __contains__(self, task_id):
        return task_id in self._tasks

    def __len__(self):
        return len(self._tasks)

    def task(self, task_id):
        if task_id not in self._tasks:
            raise DependencyError(f"unknown task {task_id!r}")
        return self._tasks[task_id]

    def tasks(self):
        return list(self._tasks.values())

    def validate_references(self):
        """Every dependency must name an existing task."""
        for task in self._tasks.values():
            for dep in task.depends_on:
                if dep not in self._tasks:
                    raise DependencyError(
                        f"task {task.task_id!r} depends on missing task "
                        f"{dep!r}"
                    )

    def scheduling_state(self):
        """Initial bookkeeping for an incremental scheduler.

        Returns
        -------
        (indegree, dependents):
            ``indegree`` maps task id -> number of unfinished
            dependencies; ``dependents`` maps task id -> the ids that
            wait on it.  A scheduler pops zero-indegree tasks, runs
            them (in any order, possibly concurrently), and decrements
            its dependents' counters on completion — the executor's
            dynamic counterpart of :meth:`topological_order`.
        """
        self.validate_references()
        indegree = {tid: 0 for tid in self._tasks}
        dependents = {tid: [] for tid in self._tasks}
        for task in self._tasks.values():
            for dep in task.depends_on:
                indegree[task.task_id] += 1
                dependents[dep].append(task.task_id)
        return indegree, dependents

    def topological_order(self):
        """Kahn's algorithm; raises :class:`DependencyError` on cycles,
        naming one cycle explicitly."""
        indegree, dependents = self.scheduling_state()
        ready = sorted(
            tid for tid, deg in indegree.items() if deg == 0
        )
        order = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in dependents[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    # Insert keeping deterministic (sorted) processing.
                    position = 0
                    while (
                        position < len(ready) and ready[position] < nxt
                    ):
                        position += 1
                    ready.insert(position, nxt)
        if len(order) != len(self._tasks):
            cycle = self._find_cycle()
            raise DependencyError(
                "task dependency cycle: " + " -> ".join(cycle)
            )
        return [self._tasks[tid] for tid in order]

    def _find_cycle(self):
        """Locate one cycle for the error message (DFS with colours)."""
        state = {}
        parent = {}

        def dfs(tid):
            state[tid] = 0
            for dep in self._tasks[tid].depends_on:
                if state.get(dep) == 0:
                    # Walk parents back to dep.
                    cycle = [dep, tid]
                    cursor = tid
                    while parent.get(cursor) is not None and cursor != dep:
                        cursor = parent[cursor]
                        cycle.append(cursor)
                    return cycle[::-1]
                if dep not in state:
                    parent[dep] = tid
                    found = dfs(dep)
                    if found:
                        return found
            state[tid] = 1
            return None

        for tid in self._tasks:
            if tid not in state:
                found = dfs(tid)
                if found:
                    return found
        return ["<unknown>"]


def build_task_graph(schema, scale):
    """Derive the task DAG from a schema and a scale specification.

    Parameters
    ----------
    schema:
        :class:`~repro.core.schema.Schema`.
    scale:
        dict mapping node type names to instance counts and/or edge type
        names to target edge counts.  Node counts not given must be
        inferable: the head type of a 1→* or 1→1 edge is sized by that
        edge's structure ("the number of edges creates ... determines
        the number of Messages").

    Returns
    -------
    TaskGraph
    """
    from .schema import Cardinality

    graph = TaskGraph()

    # Which node types get their count from the scale spec, and which
    # from an edge structure?
    count_source = {}
    for name in schema.node_types:
        if name in scale:
            count_source[name] = ("scale", None)
    for edge in schema.edge_types.values():
        if edge.cardinality in (
            Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
        ):
            head = edge.head_type
            if head not in count_source:
                count_source[head] = ("structure", edge.name)
    # An edge-count anchor sizes its tail type through get_num_nodes
    # ("use the result to size the graph structure and the number of
    # Persons").
    for edge in schema.edge_types.values():
        if edge.name in scale and edge.tail_type not in count_source:
            count_source[edge.tail_type] = ("structure", edge.name)
    missing = [
        name for name in schema.node_types if name not in count_source
    ]
    if missing:
        raise DependencyError(
            f"cannot infer instance counts for node types {missing}; "
            "add them to the scale spec or size them via a 1->* edge"
        )

    # Count tasks.
    for name, (source, edge_name) in count_source.items():
        deps = []
        if source == "structure":
            deps.append(f"structure:{edge_name}")
        graph.add(
            Task(f"count:{name}", "count", name, deps)
        )

    # Node property tasks.
    for node in schema.node_types.values():
        for prop in node.properties:
            deps = [f"count:{node.name}"]
            deps.extend(
                f"property:{node.name}.{dep}" for dep in prop.depends_on
            )
            graph.add(
                Task(
                    f"property:{node.name}.{prop.name}",
                    "property",
                    f"{node.name}.{prop.name}",
                    deps,
                )
            )

    # Structure tasks: need the tail type count unless the edge itself
    # is scaled by edge count.
    for edge in schema.edge_types.values():
        deps = []
        if edge.name not in scale:
            deps.append(f"count:{edge.tail_type}")
        graph.add(
            Task(f"structure:{edge.name}", "structure", edge.name, deps)
        )

    # Match-prepare tasks: the shardable half of a correlated
    # (streaming) matching step — CSR adjacency, the arrival
    # permutation and the kernel's later-neighbour tables are pure
    # functions of (seed, structure), so they run in a worker as soon
    # as the structure lands, overlapped with other structure and
    # property generation; the match task then streams over the
    # prebuilt state.
    streamed = {
        edge.name
        for edge in schema.edge_types.values()
        if edge.correlation is not None
        and edge.cardinality is Cardinality.MANY_TO_MANY
        and edge.is_monopartite
    }
    for name in streamed:
        graph.add(
            Task(
                f"match_prepare:{name}",
                "match_prepare",
                name,
                [f"structure:{name}"],
            )
        )

    # Match tasks: structure + the correlated property tables + head
    # count (to know the full id space being matched).
    for edge in schema.edge_types.values():
        deps = [f"structure:{edge.name}", f"count:{edge.tail_type}",
                f"count:{edge.head_type}"]
        if edge.name in streamed:
            deps.append(f"match_prepare:{edge.name}")
        if edge.correlation is not None:
            corr = edge.correlation
            deps.append(
                f"property:{edge.tail_type}.{corr.tail_property}"
            )
            if corr.head_property is not None:
                deps.append(
                    f"property:{edge.head_type}.{corr.head_property}"
                )
        graph.add(
            Task(
                f"match:{edge.name}",
                "match",
                edge.name,
                sorted(set(deps)),
            )
        )

    # Edge property tasks: run after matching (endpoint references are
    # resolved against final node ids) and after any referenced node
    # property or sibling edge property.
    for edge in schema.edge_types.values():
        for prop in edge.properties:
            deps = [f"match:{edge.name}"]
            for dep in prop.depends_on:
                if dep.startswith("tail."):
                    deps.append(
                        f"property:{edge.tail_type}.{dep[len('tail.'):]}"
                    )
                elif dep.startswith("head."):
                    deps.append(
                        f"property:{edge.head_type}.{dep[len('head.'):]}"
                    )
                else:
                    deps.append(f"property:{edge.name}.{dep}")
            graph.add(
                Task(
                    f"property:{edge.name}.{prop.name}",
                    "edge_property",
                    f"{edge.name}.{prop.name}",
                    sorted(set(deps)),
                )
            )

    graph.validate_references()
    return graph
