"""Shard-parallel execution of the task DAG (the distributed engine).

:mod:`repro.core.parallel` demonstrates the paper's shared-nothing
claim for a *single* property table; this module generalises it to the
whole Figure-2 pipeline.  The :class:`ParallelExecutor` walks the task
graph of :func:`~repro.core.dependency.build_task_graph` dynamically:
every task whose dependencies have finished is dispatched to a
``concurrent.futures`` pool, and large ``property`` / ``edge_property``
tasks are additionally split into contiguous id-range *shards* that
generate concurrently — the exact work decomposition a cluster
deployment would use, with the pool standing in for remote workers
(DESIGN.md records the substitution).

Bit-identity with the serial engine is structural, not incidental:

* kernels re-derive their stream from ``(root seed, task id)``, so a
  worker process computes exactly what the serial loop would;
* shard outputs are concatenated in id order, which equals single-shot
  generation because ``run_many`` is pure per id;
* the final :class:`~repro.core.result.PropertyGraph` is re-assembled
  in serial plan order, so even dict iteration order matches.

The coordinator keeps all integration (and the O(1) ``count`` tasks)
in-process; only kernel calls cross the pool boundary, with picklable
payloads (generator specs, numpy arrays, schema dataclasses).
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

import numpy as np

from ..properties.registry import create_property_generator
from .dependency import DependencyError, build_task_graph
from .parallel import shard_ranges
from .result import PropertyGraph
from .tasks import (
    apply_task,
    edge_property_inputs,
    export_task_output,
    generate_structure,
    match_edge,
    match_inputs,
    match_prepare,
    node_property_inputs,
    property_shard_values,
    resolve_count,
    store_task_output,
    structure_inputs,
)

__all__ = ["ParallelExecutor", "execute_parallel", "DEFAULT_SHARD_SIZE"]

#: Minimum rows per property shard; tables smaller than this run as a
#: single kernel call (sharding overhead would dominate).
DEFAULT_SHARD_SIZE = 65_536

_BACKENDS = ("process", "thread", "serial")


class ParallelExecutor:
    """Schedules the task DAG over a worker pool.

    Parameters
    ----------
    schema, scale, seed:
        as for :class:`~repro.core.engine.GraphGenerator`.
    workers:
        pool size; defaults to ``os.cpu_count()``.
    shard_size:
        target rows per property-table shard.  A table of ``n`` rows is
        split into ``min(workers, ceil(n / shard_size))`` shards.
    backend:
        ``"process"`` (default) uses a :class:`ProcessPoolExecutor` —
        real parallelism, requires picklable generator parameters.
        ``"thread"`` avoids pickling (useful for unpicklable schema
        environments or fork-restricted hosts); ``"serial"`` runs the
        shared task layer inline, for debugging schedulers.
    """

    def __init__(
        self,
        schema,
        scale,
        seed=0,
        workers=None,
        shard_size=DEFAULT_SHARD_SIZE,
        backend="process",
    ):
        self.schema = schema.validate()
        self.scale = dict(scale)
        self.seed = int(seed)
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.shard_size = int(shard_size)
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.backend = backend

    # -- public entry ---------------------------------------------------------

    def run(self, sink=None):
        """Execute all tasks; returns the :class:`PropertyGraph`.

        ``sink`` (a :class:`~repro.io.streaming.GraphSink`) streams
        completed tables to disk *during* execution: an export cursor
        walks the serial plan order and announces each task as soon as
        it and every plan-order predecessor have finished, so shard
        results flow straight into chunked files without waiting for
        the whole DAG — and the bytes equal a post-hoc export of the
        serial engine's graph, for any worker count.
        """
        graph = build_task_graph(self.schema, self.scale)
        order = graph.topological_order()  # validates + cycle check
        result = PropertyGraph(self.schema, self.seed)
        structures = {}
        if sink is not None:
            sink.begin(result)
        if self.backend == "serial" or self.workers == 1:
            for task in order:
                apply_task(
                    task, self.schema, self.scale, self.seed,
                    result, structures,
                )
                export_task_output(task, sink)
            if sink is not None:
                sink.finish()
            return result
        pool = self._make_pool()
        try:
            self._run_pooled(
                pool, graph, order, result, structures, sink
            )
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        if sink is not None:
            sink.finish()
        return self._reassemble(order, result)

    # -- scheduling -----------------------------------------------------------

    def _make_pool(self):
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(max_workers=self.workers)

    def _plan_shards(self, count):
        """Contiguous id ranges for one property task."""
        if count <= 0:
            return [(0, 0)]
        num_shards = min(
            self.workers, -(-count // self.shard_size)
        )
        return shard_ranges(count, max(1, num_shards))

    def _shard_buffer(self, spec, count):
        """Whole-table output buffer for a sharded property task.

        Only the thread backend shares memory with its workers, so
        only there can shards write ``out=`` slices of one
        preallocated array — the allocation-free assembly path (no
        per-shard arrays, no ``np.concatenate`` copy).  Process
        workers return pickled copies regardless, and the buffer's
        dtype comes from the generator's ``output_dtype``, which the
        empty-``run_many`` contract already requires to be accurate.
        """
        if self.backend != "thread":
            return None
        generator = create_property_generator(spec.name, **spec.params)
        if not getattr(generator, "supports_out", False):
            # Generators without the out= contract (third-party PGs,
            # formula) may return a dtype their output_dtype doesn't
            # declare; keep those on the concatenate path so the
            # assembled dtype matches single-shot generation.
            return None
        return np.empty(count, dtype=generator.output_dtype())

    def _run_pooled(self, pool, graph, order, result, structures,
                    sink=None):
        position = {task.task_id: i for i, task in enumerate(order)}
        indegree, dependents = graph.scheduling_state()
        unfinished = {task.task_id for task in order}
        ready = deque(
            sorted(
                (tid for tid, deg in indegree.items() if deg == 0),
                key=position.__getitem__,
            )
        )
        pending = {}  # future -> (task, shard_index | None)
        shard_parts = {}  # task_id -> list of shard outputs
        shard_missing = {}  # task_id -> outstanding shard count
        shard_buffers = {}  # task_id -> preallocated whole-table array
        export_cursor = 0  # next plan-order task to announce to sink

        def advance_exports():
            # Completion order is timing-dependent; the cursor restores
            # the serial plan order the sink protocol requires.
            nonlocal export_cursor
            if sink is None:
                return
            while export_cursor < len(order):
                task = order[export_cursor]
                if task.task_id in unfinished:
                    return
                export_task_output(task, sink)
                export_cursor += 1

        def complete(task, output):
            store_task_output(task, result, structures, output)
            unfinished.discard(task.task_id)
            advance_exports()
            released = []
            for dep_id in dependents[task.task_id]:
                indegree[dep_id] -= 1
                if indegree[dep_id] == 0:
                    released.append(dep_id)
            ready.extend(sorted(released, key=position.__getitem__))

        def launch(task):
            if task.kind == "count":
                # O(1); not worth a pool round-trip.
                complete(
                    task,
                    resolve_count(
                        self.schema, self.scale, task, structures
                    ),
                )
                return
            if task.kind in ("property", "edge_property"):
                inputs = (
                    node_property_inputs(self.schema, task, result)
                    if task.kind == "property"
                    else edge_property_inputs(self.schema, task, result)
                )
                spec, count, deps = inputs
                shards = self._plan_shards(count)
                buffer = None
                if len(shards) > 1:
                    shard_missing[task.task_id] = len(shards)
                    buffer = self._shard_buffer(spec, count)
                    if buffer is None:
                        shard_parts[task.task_id] = [None] * len(shards)
                    else:
                        shard_buffers[task.task_id] = buffer
                for index, (start, stop) in enumerate(shards):
                    slices = [col[start:stop] for col in deps]
                    future = pool.submit(
                        property_shard_values,
                        spec, task.task_id, self.seed,
                        start, stop, slices,
                        None if buffer is None else buffer[start:stop],
                    )
                    pending[future] = (
                        task, index if len(shards) > 1 else None
                    )
                return
            if task.kind == "structure":
                spec, sg_seed, n = structure_inputs(
                    self.schema, self.scale, self.seed, task,
                    result.node_counts,
                )
                future = pool.submit(generate_structure, spec, sg_seed, n)
                pending[future] = (task, None)
                return
            if task.kind == "match_prepare":
                # Pure function of (seed, edge, structure): runs in a
                # worker as soon as the structure lands, overlapping
                # stream precomputation (CSR, arrival permutation,
                # counts tables) with the rest of the DAG.
                future = pool.submit(
                    match_prepare,
                    self.seed, task.subject, structures[task.subject],
                )
                pending[future] = (task, None)
                return
            if task.kind == "match":
                future = pool.submit(
                    match_edge,
                    seed=self.seed,
                    task_id=task.task_id,
                    **match_inputs(self.schema, task, result, structures),
                )
                pending[future] = (task, None)
                return
            # pragma: no cover - guarded by build_task_graph
            raise DependencyError(f"unknown task kind {task.kind!r}")

        while unfinished:
            while ready:
                launch(graph.task(ready.popleft()))
            if not unfinished:
                break
            if not pending:  # pragma: no cover - cycles caught earlier
                stuck = sorted(unfinished)
                raise DependencyError(
                    f"executor stalled with unfinished tasks {stuck}"
                )
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task, shard_index = pending.pop(future)
                value = future.result()  # re-raises worker failures
                if shard_index is None:
                    complete(task, value)
                    continue
                shard_missing[task.task_id] -= 1
                if task.task_id in shard_buffers:
                    # Thread backend: the shard wrote its slice of the
                    # shared whole-table buffer; nothing to merge.
                    if shard_missing[task.task_id] == 0:
                        del shard_missing[task.task_id]
                        complete(task, shard_buffers.pop(task.task_id))
                    continue
                parts = shard_parts[task.task_id]
                parts[shard_index] = value
                if shard_missing[task.task_id] == 0:
                    del shard_missing[task.task_id]
                    del shard_parts[task.task_id]
                    complete(task, np.concatenate(parts))

    # -- assembly -------------------------------------------------------------

    def _reassemble(self, order, result):
        """Re-insert outputs in serial plan order.

        Completion order depends on worker timing, so the scratch
        result's dicts are populated out of order; the serial engine
        inserts in topological order.  Rebuilding makes even dict
        iteration order — and hence CSV/JSONL export order — identical
        to the serial path.
        """
        final = PropertyGraph(self.schema, self.seed)
        for task in order:
            if task.kind == "count":
                final.node_counts[task.subject] = (
                    result.node_counts[task.subject]
                )
            elif task.kind == "property":
                final.node_properties[task.subject] = (
                    result.node_properties[task.subject]
                )
            elif task.kind == "match":
                final.edge_tables[task.subject] = (
                    result.edge_tables[task.subject]
                )
                final.match_results[task.subject] = (
                    result.match_results[task.subject]
                )
            elif task.kind == "edge_property":
                final.edge_properties[task.subject] = (
                    result.edge_properties[task.subject]
                )
        return final


def execute_parallel(schema, scale, seed=0, sink=None, **kwargs):
    """One-call form: ``execute_parallel(schema, scale, seed, workers=4)``.

    Accepts the same keyword arguments as :class:`ParallelExecutor`
    (plus ``sink`` for streaming export) and returns the generated
    :class:`PropertyGraph`.
    """
    return ParallelExecutor(schema, scale, seed, **kwargs).run(sink=sink)
