"""Baseline matchers for the ablation benchmarks.

``ldg_degree_match`` is literally LDG: it places each arriving node with
the neighbour-count objective, i.e. it optimises *locality* (edge cut)
rather than the Frobenius distance to the target joint.  Comparing it
against SBM-Part isolates the contribution of the paper's objective —
LDG clusters connected nodes into the same group, which maximises the
diagonal of the observed joint regardless of the requested off-diagonal
structure.
"""

from __future__ import annotations

import numpy as np

from ...partitioning import ldg_partition, mixing_matrix
from .sbm_part import SbmPartResult, _mapping_from_assignment
from .targets import edge_count_target

__all__ = ["ldg_degree_match", "greedy_label_match"]


def ldg_degree_match(ptable, joint, table, order=None, tie_stream=None):
    """Match with plain LDG placement (neighbour-count objective).

    The group capacities still come from the PT value counts, so the
    *marginal* of the observed joint is respected; only the pairwise
    structure is left to locality.
    """
    codes, _ = ptable.codes()
    group_sizes = np.bincount(codes)
    if joint.k != group_sizes.size:
        raise ValueError(
            f"joint has {joint.k} categories but PT has "
            f"{group_sizes.size} distinct values"
        )
    assignment = ldg_partition(
        table, group_sizes, order=order, tie_stream=tie_stream
    )
    mapping = _mapping_from_assignment(assignment, codes)
    return SbmPartResult(
        assignment=assignment,
        mapping=mapping,
        target=edge_count_target(joint, table.num_edges),
        achieved=mixing_matrix(table, assignment, k=group_sizes.size),
    )


def greedy_label_match(ptable, joint, table, order=None):
    """Degenerate matcher: fill groups in node-id order.

    Nodes ``0..q_0-1`` get value 0, the next ``q_1`` get value 1, and so
    on.  On structures whose node ids carry locality (R-MAT quadrants,
    LFR assignment order) this can look deceptively good, which is
    exactly why the ablation includes it.
    """
    codes, _ = ptable.codes()
    group_sizes = np.bincount(codes)
    n = table.num_nodes
    if order is None:
        order = np.arange(n, dtype=np.int64)
    labels_sequence = np.repeat(
        np.arange(group_sizes.size, dtype=np.int64), group_sizes
    )[:n]
    assignment = np.empty(n, dtype=np.int64)
    assignment[np.asarray(order, dtype=np.int64)] = labels_sequence
    mapping = _mapping_from_assignment(assignment, codes)
    return SbmPartResult(
        assignment=assignment,
        mapping=mapping,
        target=edge_count_target(joint, table.num_edges),
        achieved=mixing_matrix(table, assignment, k=group_sizes.size),
    )
