"""Streaming-placement kernel: the shared engine behind the matchers.

SBM-Part, the bipartite matcher and LDG are all instances of one
streaming-placement problem: nodes arrive in an order, each node scores
the ``k`` groups from the counts of its already-placed neighbours plus
some incremental global state, and the winner (after capacity masking
and tie-breaking) receives the node.  The original implementations
(preserved in :mod:`repro.core.matching.legacy`) re-derived everything
from scratch per node — an O(k^2) ``diff = current - target`` plus a
dozen fresh allocations — so the Python interpreter, not the hardware,
set the throughput.  This module replaces that with a kernel that does
only incremental work per placement:

* ``diff = current - target`` is **maintained, not recomputed**: a
  placement touches one row and one column, so only those are
  refreshed (by the same elementwise subtraction the legacy code
  applied to the whole matrix — the touched entries are bitwise
  identical, and untouched entries are untouched).
* per-node candidate scores need one matvec ``diff @ counts`` over the
  placed-neighbour support instead of three k×k temporaries —
  O(k·deg) per node instead of O(k^2).
* neighbour counts come from a **streaming counts matrix** ``C`` of
  shape (n, k): when a node is placed into group ``g``, the rows of its
  *later-arriving* neighbours are bumped at column ``g``.  Each node
  then reads its counts as a contiguous row view — no per-node
  ``np.add.at``, no boolean filtering.  Counts are integer-valued
  floats, so any accumulation order is exact and the values are
  bitwise equal to the legacy ``np.add.at`` fold.  (For n·k beyond
  :data:`COUNTS_MATRIX_MAX_BYTES` the kernel falls back to a per-node
  ``np.bincount`` — still allocation-light, no quadratic state.)
* every buffer is preallocated; the per-step numpy calls all write
  into scratch via ``out=``.
* the **cold-start prefix** — the maximal leading run of the order in
  which every node's neighbours all arrive later — is placed in one
  batched pass: the tie-stream draws are vectorised upfront, the
  placement loop touches only O(k) state, and the counts-matrix
  propagation for the whole prefix is a single ``bincount`` fold
  (legal because cold nodes never read counts).

Tie handling
------------
Scores grow like m² (edge-count-scale ``diff`` entries times degree
counts), so the legacy *absolute* tie tolerance of ``1e-12`` degrades
into "bitwise equality only" once ``|score| > 1``: at score magnitude
``s`` the spacing between adjacent doubles is ``~2.2e-16·s``, which
exceeds ``1e-12`` as soon as ``s > 4.5e3``.  Mathematically tied groups
whose scores differ by accumulated rounding then silently stop tying.
The kernel therefore uses a **relative** band,
``best - 1e-12·max(1, |best|)`` (:func:`tie_threshold`): identical to
the legacy band for ``|best| <= 1`` and a ~4500-ulp band at every
scale, wide enough to absorb summation-order noise yet far below any
mathematically distinct score gap.

Exactness
---------
Group counts and the ``current`` matrix hold integer-valued doubles,
so every accumulation is exact and bitwise equal to the legacy fold;
``diff`` rows are refreshed with the same single subtraction the
legacy code used.  The only floating-point divergence from the legacy
loops is the summation *tree* inside the score reductions (BLAS matvec
vs numpy pairwise-sum), which perturbs scores by a few ulp; the
relative tie band absorbs that.  ``tests/golden/matching/`` freezes
the legacy assignments on fixed seeds and
``tests/test_matching_kernel.py`` asserts every kernel implementation
reproduces them byte-for-byte.

Implementations
---------------
``impl="numpy"`` is the portable path described above.  ``impl="c"``
runs the same algorithm as a single compiled C loop (see
:mod:`repro.core.matching._ckernel`) when a system C compiler is
available — the kernel compiles it on first use and caches the shared
object; there is nothing to install.  ``impl="auto"`` (every caller's
default) picks C when available, else numpy; the compiled path covers
the monopartite streams (SBM-Part, LDG) while
:func:`bipartite_stream` always runs the numpy kernel.  Set
``REPRO_MATCH_IMPL=numpy|c`` to force a path, or ``REPRO_NO_CKERNEL=1``
to disable compilation entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "COUNTS_MATRIX_MAX_BYTES",
    "REL_TIE_TOL",
    "MatchPrep",
    "available_impls",
    "bipartite_stream",
    "cold_prefix_length",
    "ldg_stream",
    "later_tables",
    "place_cold_stream",
    "prepare_match_stream",
    "resolve_impl",
    "sbm_part_stream",
    "tie_threshold",
]

#: Relative tie tolerance: candidates within ``REL_TIE_TOL * max(1,
#: |best|)`` of the best score tie.  See the module docstring.
REL_TIE_TOL = 1e-12

#: Ceiling on the streaming counts-matrix footprint (float64 entries);
#: beyond this the kernel computes per-node counts with ``bincount``.
COUNTS_MATRIX_MAX_BYTES = 256 * 1024 * 1024

_NEG_INF = float("-inf")


def tie_threshold(best):
    """Tie-band threshold for a best score: relative, scale-stable.

    For ``|best| <= 1`` this equals the historical absolute band
    ``best - 1e-12``; beyond that the band scales with the score, so
    at ``best = 1e9`` two scores within ``1e-3`` of each other still
    tie — where the absolute band would already be narrower than one
    ulp and only bitwise-equal scores could tie.
    """
    return best - REL_TIE_TOL * max(1.0, abs(best))


def available_impls():
    """Implementations usable in this environment ("numpy" always)."""
    from ._ckernel import load_ckernel

    impls = ["numpy"]
    if load_ckernel() is not None:
        impls.insert(0, "c")
    return impls


def resolve_impl(impl):
    """Resolve an ``impl`` argument to "numpy" or "c"."""
    if impl in (None, "auto"):
        impl = os.environ.get("REPRO_MATCH_IMPL", "auto")
    if impl == "auto":
        from ._ckernel import load_ckernel

        return "c" if load_ckernel() is not None else "numpy"
    if impl not in ("numpy", "c"):
        raise ValueError(
            f"unknown impl {impl!r}; expected 'auto', 'numpy' or 'c'"
        )
    if impl == "c":
        from ._ckernel import load_ckernel

        if load_ckernel() is None:
            raise RuntimeError(
                "impl='c' requested but no C kernel is available "
                "(no compiler, or REPRO_NO_CKERNEL=1)"
            )
    return impl


# -- stream preparation -------------------------------------------------------


@dataclass
class MatchPrep:
    """Order-dependent precomputation for one monopartite stream.

    Everything here is a plain numpy array, so a :class:`MatchPrep` can
    be built in a worker process (the executor's ``match_prepare``
    task) and shipped to wherever the stream runs.

    Attributes
    ----------
    indptr, neighbors:
        undirected CSR adjacency of the structure.
    order:
        arrival order (node ids).
    positions:
        inverse of ``order``: ``positions[order[i]] = i``.
    cold_prefix:
        length of the maximal leading run of ``order`` in which every
        node's neighbours all arrive strictly later (such nodes are
        cold by construction).
    lat_indptr, lat_cols, lat_mult:
        deduplicated later-neighbour table: for node ``v`` the slice
        ``[lat_indptr[v], lat_indptr[v+1])`` lists the distinct
        neighbours of ``v`` arriving after it (``lat_cols``) with edge
        multiplicities (``lat_mult``).  ``None`` unless built with
        ``counts_tables=True`` (only the numpy path reads them).
    """

    indptr: np.ndarray
    neighbors: np.ndarray
    order: np.ndarray
    positions: np.ndarray
    cold_prefix: int
    lat_indptr: np.ndarray | None = None
    lat_cols: np.ndarray | None = None
    lat_mult: np.ndarray | None = None

    @property
    def num_nodes(self):
        return self.order.size

    def ensure_counts_tables(self):
        """Build the later-neighbour table if it is missing."""
        if self.lat_indptr is None:
            n = self.num_nodes
            src = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self.indptr)
            )
            self.lat_indptr, self.lat_cols, self.lat_mult = later_tables(
                src, self.neighbors,
                self.positions, self.positions, n,
            )
        return self


def prepare_match_stream(table, order=None, counts_tables=False):
    """Precompute the stream-order structures for ``table``.

    This is the shardable "prepare" half of the matching stage: it is a
    pure function of ``(table, order)`` and returns picklable arrays,
    so the parallel executor can run it in a worker pool, overlapped
    with structure generation of other edge types.
    """
    n = table.num_nodes
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != n:
            raise ValueError("order must enumerate all n nodes")
    indptr, neighbors, _ = table.adjacency_csr()
    positions = np.empty(n, dtype=np.int64)
    positions[order] = np.arange(n, dtype=np.int64)
    prefix = cold_prefix_length(indptr, neighbors, order, positions)
    prep = MatchPrep(
        indptr=indptr,
        neighbors=neighbors,
        order=order,
        positions=positions,
        cold_prefix=prefix,
    )
    if counts_tables:
        prep.ensure_counts_tables()
    return prep


def cold_prefix_length(indptr, neighbors, order, positions):
    """Length of the leading all-cold run of ``order``.

    A node is *cold* when none of its neighbours has been placed.  The
    maximal prefix in which every node's earliest-arriving neighbour
    still lies ahead of it is cold by construction and can be placed in
    one batched pass.  (Self-loops make a node look warm here; the main
    loop's own counts check handles them — the prefix is merely the
    batched fast path, never a semantic boundary.)
    """
    n = order.size
    if n == 0:
        return 0
    lengths = np.diff(indptr)
    min_nbr_pos = np.full(n, n, dtype=np.int64)
    nonempty = lengths > 0
    if nonempty.any():
        starts = indptr[:-1][nonempty]
        mins = np.minimum.reduceat(positions[neighbors], starts)
        min_nbr_pos[nonempty] = mins
    cold_at = min_nbr_pos[order] > np.arange(n, dtype=np.int64)
    warm = np.flatnonzero(~cold_at)
    return int(n if warm.size == 0 else warm[0])


def later_tables(src, dst, pos_src, pos_dst, num_src):
    """Deduplicated (src -> later dst) adjacency with multiplicities.

    Keeps the pairs where ``dst`` arrives strictly after ``src`` (by the
    two position arrays), merges parallel edges into one entry with an
    integer multiplicity, and groups by ``src``.

    Returns ``(indptr, cols, mult)`` with ``indptr`` of length
    ``num_src + 1``.
    """
    keep = pos_dst[dst] > pos_src[src]
    s = src[keep]
    d = dst[keep]
    if d.size:
        span = int(d.max()) + 1
        key = s * span + d
        unique_key, mult = np.unique(key, return_counts=True)
        s = unique_key // span
        d = unique_key % span
    else:
        mult = np.zeros(0, dtype=np.int64)
    indptr = np.zeros(num_src + 1, dtype=np.int64)
    np.cumsum(np.bincount(s, minlength=num_src), out=indptr[1:])
    return indptr, d.astype(np.int64), mult.astype(np.float64)


# -- cold-start placement -----------------------------------------------------


def place_cold_stream(caps, loads, uniforms, cold_start):
    """Place a run of cold nodes; mutates ``loads``; returns choices.

    Replays exactly the per-step draws of the legacy cold branch:
    ``remaining = max(caps - loads, 0)``, a capacity-proportional CDF
    draw from the pre-drawn ``uniforms`` (mode "proportional") or the
    most-remaining-capacity group (mode "greedy"), with the
    capacities-exhausted ``RuntimeError`` raised at the same step the
    step-by-step code would raise it.  The draws themselves are the
    batched, vectorised part — ``uniforms`` is one
    ``tie_stream.uniform(arange)`` call — and each placement then only
    touches O(k) state.
    """
    if cold_start not in ("proportional", "greedy"):
        raise ValueError(f"unknown cold_start {cold_start!r}")
    k = caps.size
    count = len(uniforms)
    choices = np.empty(count, dtype=np.int64)
    rem = np.empty(k, dtype=np.float64)
    cdf = np.empty(k, dtype=np.float64)
    proportional = cold_start == "proportional"
    for i in range(count):
        np.subtract(caps, loads, out=rem)
        np.maximum(rem, 0.0, out=rem)
        total = float(rem.sum())
        if total <= 0:
            raise RuntimeError("group capacities exhausted mid-stream")
        if proportional:
            np.divide(rem, total, out=rem)
            np.cumsum(rem, out=cdf)
            choice = int(np.searchsorted(cdf, uniforms[i], side="right"))
            if choice >= k:
                # cdf[-1] rounded one ulp below 1.0 and the uniform
                # fell beyond it: last group with remaining capacity
                # (the C kernel clamps identically).
                choice = int(np.flatnonzero(rem > 0)[-1])
        else:
            choice = int(np.argmax(rem))
        choices[i] = choice
        loads[choice] += 1
    return choices


def _draw_uniforms(tie_stream, n):
    """Vectorised pre-draw of the per-step tie/cold uniforms."""
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    return tie_stream.uniform(np.arange(n, dtype=np.int64))


# -- counts providers ---------------------------------------------------------


class _CountsMatrix:
    """Streaming (n, k) placed-neighbour counts with row-view reads.

    ``warm[v]`` flips to True the moment any neighbour of ``v`` is
    placed, so the stream loop's cold test is one scalar read instead
    of an ``any()`` reduction per node.
    """

    def __init__(self, prep, k):
        prep.ensure_counts_tables()
        n = prep.num_nodes
        self.k = k
        self.C = np.zeros((n, k), dtype=np.float64)
        self.flat = self.C.ravel()
        self.lat_indptr = prep.lat_indptr.tolist()
        self.lat_cols = prep.lat_cols
        self.lat_base = prep.lat_cols * k
        self.lat_mult = prep.lat_mult
        self.warm = np.zeros(n, dtype=bool)

    def counts(self, v):
        return self.C[v]

    def place(self, v, choice):
        lo = self.lat_indptr[v]
        hi = self.lat_indptr[v + 1]
        if hi > lo:
            idx = self.lat_base[lo:hi] + choice
            vals = self.flat.take(idx)
            np.add(vals, self.lat_mult[lo:hi], out=vals)
            self.flat.put(idx, vals)
            self.warm[self.lat_cols[lo:hi]] = True

    def place_batch(self, nodes, choices):
        """Fold a whole batch of placements in one bincount pass.

        Only legal when none of the *other* nodes placed in the batch
        read counts in between — i.e. for the cold prefix.
        """
        starts = np.asarray(
            [self.lat_indptr[v] for v in nodes], dtype=np.int64
        )
        stops = np.asarray(
            [self.lat_indptr[v + 1] for v in nodes], dtype=np.int64
        )
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return
        offsets = np.zeros(len(nodes), dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        flat_pos = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, lengths
        )
        idx = self.lat_base.take(flat_pos) + np.repeat(
            np.asarray(choices, dtype=np.int64), lengths
        )
        fold = np.bincount(
            idx, weights=self.lat_mult.take(flat_pos),
            minlength=self.flat.size,
        )
        np.add(self.flat, fold, out=self.flat)
        self.warm[self.lat_cols.take(flat_pos)] = True


class _CountsBincount:
    """Per-node ``bincount`` counts for very large n·k."""

    def __init__(self, prep, k):
        self.k = k
        self.indptr = prep.indptr.tolist()
        self.neighbors = prep.neighbors
        # assignment + 1, so bucket 0 collects unplaced neighbours.
        self.asg1 = np.zeros(prep.num_nodes, dtype=np.int64)
        self._row = np.zeros(k, dtype=np.float64)

    def counts(self, v):
        nbrs = self.neighbors[self.indptr[v]:self.indptr[v + 1]]
        if nbrs.size == 0:
            row = self._row
            row[:] = 0.0
            return row
        folded = np.bincount(
            self.asg1.take(nbrs), minlength=self.k + 1
        )
        return folded[1:].astype(np.float64)

    def place(self, v, choice):
        self.asg1[v] = choice + 1

    def place_batch(self, nodes, choices):
        self.asg1[np.asarray(nodes, dtype=np.int64)] = (
            np.asarray(choices, dtype=np.int64) + 1
        )


def _make_counts(prep, k):
    n = prep.num_nodes
    if n * k * 8 <= COUNTS_MATRIX_MAX_BYTES:
        return _CountsMatrix(prep, k)
    return _CountsBincount(prep, k)


# -- SBM-Part (monopartite) ---------------------------------------------------


def sbm_part_stream(
    table,
    group_sizes,
    target,
    order=None,
    capacity_weighting=True,
    tie_stream=None,
    cold_start="proportional",
    negative_gain="divide",
    impl="auto",
    prep=None,
):
    """Streaming SBM-Part assignment (kernel entry point).

    Same contract as the legacy ``sbm_part_assign`` loop; see
    :func:`repro.core.matching.sbm_part_assign` for parameter
    documentation.  ``prep`` may carry a precomputed
    :class:`MatchPrep` for this ``(table, order)`` pair.
    """
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.ndim != 1 or group_sizes.size == 0:
        raise ValueError("group_sizes must be a non-empty 1-D array")
    if (group_sizes < 0).any():
        raise ValueError("group sizes must be nonnegative")
    n = table.num_nodes
    if int(group_sizes.sum()) < n:
        raise ValueError(
            f"group sizes sum to {int(group_sizes.sum())} < n = {n}"
        )
    k = group_sizes.size
    target = np.ascontiguousarray(target, dtype=np.float64)
    if target.shape != (k, k):
        raise ValueError(
            f"target must be ({k}, {k}), got {target.shape}"
        )
    if cold_start not in ("proportional", "greedy"):
        raise ValueError(f"unknown cold_start {cold_start!r}")
    if negative_gain not in ("divide", "multiply"):
        raise ValueError(f"unknown negative_gain {negative_gain!r}")
    if tie_stream is None:
        from ...prng import RandomStream

        tie_stream = RandomStream(0, "sbm-part.coldstart")

    impl = resolve_impl(impl)
    if prep is None:
        prep = prepare_match_stream(
            table, order, counts_tables=False
        )
    elif order is not None and not np.array_equal(
        np.asarray(order, dtype=np.int64), prep.order
    ):
        raise ValueError(
            "prep was built for a different arrival order; pass "
            "either a matching order or no order at all"
        )
    uniforms = _draw_uniforms(tie_stream, n)

    if impl == "c":
        from ._ckernel import load_ckernel

        return load_ckernel().sbm_part_stream(
            prep, group_sizes, target, uniforms,
            capacity_weighting, cold_start, negative_gain,
        )
    return _sbm_stream_numpy(
        prep, group_sizes, target, uniforms,
        capacity_weighting, cold_start, negative_gain,
    )


def _sbm_stream_numpy(
    prep, group_sizes, target, uniforms,
    capacity_weighting, cold_start, negative_gain,
):
    n = prep.num_nodes
    k = group_sizes.size
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return assignment
    order = prep.order
    caps = group_sizes.astype(np.float64)
    loads = np.zeros(k, dtype=np.int64)
    current = np.zeros((k, k), dtype=np.float64)
    diff = current - target
    counts = _make_counts(prep, k)

    # Incrementally-maintained score state.
    neg_divide = negative_gain == "divide"
    proportional = cold_start == "proportional"
    with np.errstate(divide="ignore", invalid="ignore"):
        weight = np.where(caps > 0, 1.0 - loads / caps, 0.0)
    wclip = np.maximum(weight, 1e-9)
    twod = 2.0 * diff.ravel()[:: k + 1].copy()
    dcol_views = [diff[:, j] for j in range(k)]
    ccol_views = [current[:, j] for j in range(k)]
    tcol_views = [np.ascontiguousarray(target[:, j]) for j in range(k)]

    full_list = [int(j) for j in np.flatnonzero(group_sizes == 0)]
    full_idx = np.asarray(full_list, dtype=np.int64)

    # Scratch buffers (every per-step numpy op writes into these).
    rd = np.empty(k, dtype=np.float64)
    tb = np.empty(k, dtype=np.float64)
    s_pos = np.empty(k, dtype=np.float64)
    score = np.empty(k, dtype=np.float64)
    bb = np.empty(k, dtype=bool)
    rem = np.empty(k, dtype=np.float64)
    cdf = np.empty(k, dtype=np.float64)

    order_l = order.tolist()
    uni_l = uniforms.tolist()
    gs_l = group_sizes.tolist()
    caps_l = caps.tolist()

    # Batched cold prefix.
    start = 0
    prefix = prep.cold_prefix
    if prefix:
        choices = place_cold_stream(
            caps, loads, uni_l[:prefix], cold_start
        )
        prefix_nodes = order_l[:prefix]
        assignment[order[:prefix]] = choices
        counts.place_batch(prefix_nodes, choices)
        with np.errstate(divide="ignore", invalid="ignore"):
            weight = np.where(caps > 0, 1.0 - loads / caps, 0.0)
        np.maximum(weight, 1e-9, out=wclip)
        full_list = [
            int(j) for j in np.flatnonzero(loads >= group_sizes)
        ]
        full_idx = np.asarray(full_list, dtype=np.int64)
        start = prefix

    nfull = len(full_list)
    tie_tol = REL_TIE_TOL

    # Hot-loop locals: matrix-mode counts propagation is inlined below
    # (one Python call per node adds measurable overhead at n=100k).
    matrix_mode = isinstance(counts, _CountsMatrix)
    if matrix_mode:
        C = counts.C
        Cflat = counts.flat
        lat_indptr_l = counts.lat_indptr
        lat_base = counts.lat_base
        lat_cols = counts.lat_cols
        lat_mult = counts.lat_mult
        warm = counts.warm

    for step in range(start, n):
        v = order_l[step]
        if matrix_mode:
            cold = not warm[v]
            c = C[v]
        else:
            c = counts.counts(v)
            cold = not c.any()
        if cold:
            # Cold: capacity-proportional (or greedy) placement.
            np.subtract(caps, loads, out=rem)
            np.maximum(rem, 0.0, out=rem)
            total = float(rem.sum())
            if total <= 0:
                raise RuntimeError(
                    "group capacities exhausted mid-stream"
                )
            if proportional:
                np.divide(rem, total, out=rem)
                np.cumsum(rem, out=cdf)
                choice = int(
                    np.searchsorted(cdf, uni_l[step], side="right")
                )
                if choice >= k:
                    # See place_cold_stream: one-ulp cdf shortfall.
                    choice = int(np.flatnonzero(rem > 0)[-1])
            else:
                choice = int(np.argmax(rem))
        else:
            # gain_t = c_t(2*diff_tt + c_t) - 4*(diff @ c)_t - 2*S2
            # (the negated legacy Frobenius delta, reassociated; the
            # relative tie band absorbs the ulp-level difference).
            np.dot(diff, c, out=rd)
            s2 = float(np.dot(c, c))
            np.multiply(rd, 4.0, out=rd)
            np.add(twod, c, out=tb)
            np.multiply(tb, c, out=tb)
            np.subtract(tb, rd, out=tb)
            np.subtract(tb, s2 + s2, out=tb)
            if capacity_weighting:
                if neg_divide:
                    np.greater_equal(tb, 0.0, out=bb)
                    np.multiply(tb, weight, out=s_pos)
                    np.divide(tb, wclip, out=score)
                    np.copyto(score, s_pos, where=bb)
                else:
                    np.multiply(tb, weight, out=score)
            else:
                np.copyto(score, tb)
            if nfull:
                score[full_idx] = _NEG_INF
            am = int(score.argmax())
            best = float(score[am])
            if best == _NEG_INF:
                raise RuntimeError(
                    "group capacities exhausted mid-stream"
                )
            thresh = best - tie_tol * max(1.0, abs(best))
            np.greater_equal(score, thresh, out=bb)
            if int(np.count_nonzero(bb)) == 1:
                choice = am
            else:
                candidates = np.flatnonzero(bb)
                remaining = caps[candidates] - loads[candidates]
                top = candidates[remaining == remaining.max()]
                if top.size > 1:
                    pick = int(uni_l[step] * top.size)
                    choice = int(top[pick])
                else:
                    choice = int(top[0])
            # Incremental state update: only row/column `choice`.
            crow = current[choice]
            np.add(crow, c, out=crow)
            ccol = ccol_views[choice]
            np.add(ccol, c, out=ccol)
            cc = c[choice]
            if cc:
                current[choice, choice] -= cc
            np.subtract(crow, target[choice], out=diff[choice])
            np.subtract(ccol, tcol_views[choice], out=dcol_views[choice])
            twod[choice] = 2.0 * diff[choice, choice]

        assignment[v] = choice
        loads[choice] += 1
        load_c = int(loads[choice])
        weight[choice] = w_c = 1.0 - load_c / caps_l[choice]
        wclip[choice] = w_c if w_c > 1e-9 else 1e-9
        if load_c >= gs_l[choice]:
            full_list.append(choice)
            full_idx = np.asarray(full_list, dtype=np.int64)
            nfull += 1
        if matrix_mode:
            lo = lat_indptr_l[v]
            hi = lat_indptr_l[v + 1]
            if hi > lo:
                idx = lat_base[lo:hi] + choice
                vals = Cflat.take(idx)
                np.add(vals, lat_mult[lo:hi], out=vals)
                Cflat.put(idx, vals)
                warm[lat_cols[lo:hi]] = True
        else:
            counts.place(v, choice)
    return assignment


# -- LDG ----------------------------------------------------------------------


def ldg_stream(
    table, capacities, order=None, tie_stream=None, impl="auto",
    prep=None,
):
    """Streaming LDG partitioning (kernel entry point)."""
    capacities = np.asarray(capacities, dtype=np.int64)
    if capacities.ndim != 1 or capacities.size == 0:
        raise ValueError("capacities must be a non-empty 1-D array")
    if (capacities < 0).any():
        raise ValueError("capacities must be nonnegative")
    n = table.num_nodes
    if int(capacities.sum()) < n:
        raise ValueError(
            f"capacities sum to {int(capacities.sum())} < n = {n}"
        )
    impl = resolve_impl(impl)
    if prep is None:
        prep = prepare_match_stream(table, order, counts_tables=False)
    elif order is not None and not np.array_equal(
        np.asarray(order, dtype=np.int64), prep.order
    ):
        raise ValueError(
            "prep was built for a different arrival order; pass "
            "either a matching order or no order at all"
        )
    uniforms = (
        None if tie_stream is None else _draw_uniforms(tie_stream, n)
    )
    if impl == "c":
        from ._ckernel import load_ckernel

        return load_ckernel().ldg_stream(prep, capacities, uniforms)
    return _ldg_stream_numpy(prep, capacities, uniforms)


def _ldg_stream_numpy(prep, capacities, uniforms):
    n = prep.num_nodes
    k = capacities.size
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return assignment
    caps = capacities.astype(np.float64)
    loads = np.zeros(k, dtype=np.int64)
    counts = _make_counts(prep, k)
    has_ties = uniforms is not None

    with np.errstate(divide="ignore", invalid="ignore"):
        weight = np.where(caps > 0, 1.0 - loads / caps, _NEG_INF)
    full_list = [int(j) for j in np.flatnonzero(capacities == 0)]
    full_idx = np.asarray(full_list, dtype=np.int64)
    nfull = len(full_list)

    score = np.empty(k, dtype=np.float64)
    bb = np.empty(k, dtype=bool)
    order_l = prep.order.tolist()
    uni_l = uniforms.tolist() if has_ties else None
    caps_l = caps.tolist()
    cap_int = capacities.tolist()

    # 0 * (-inf) = nan for zero-capacity groups; they are masked to
    # -inf right after, exactly as the legacy loop masked them.
    matrix_mode = isinstance(counts, _CountsMatrix)
    if matrix_mode:
        C = counts.C
        Cflat = counts.flat
        lat_indptr_l = counts.lat_indptr
        lat_base = counts.lat_base
        lat_mult = counts.lat_mult

    err_state = np.seterr(invalid="ignore")
    try:
        for step in range(n):
            v = order_l[step]
            c = C[v] if matrix_mode else counts.counts(v)
            np.multiply(c, weight, out=score)
            if nfull:
                score[full_idx] = _NEG_INF
            am = int(score.argmax())
            best = float(score[am])
            if best == _NEG_INF:
                raise RuntimeError(
                    "no partition with remaining capacity"
                )
            np.equal(score, best, out=bb)
            if int(np.count_nonzero(bb)) == 1:
                choice = am
            else:
                candidates = np.flatnonzero(bb)
                if has_ties:
                    pick = int(uni_l[step] * candidates.size)
                    choice = int(candidates[pick])
                else:
                    choice = int(
                        candidates[np.argmin(loads[candidates])]
                    )
            assignment[v] = choice
            loads[choice] += 1
            load_c = int(loads[choice])
            weight[choice] = 1.0 - load_c / caps_l[choice]
            if load_c >= cap_int[choice]:
                full_list.append(choice)
                full_idx = np.asarray(full_list, dtype=np.int64)
                nfull += 1
            if matrix_mode:
                lo = lat_indptr_l[v]
                hi = lat_indptr_l[v + 1]
                if hi > lo:
                    idx = lat_base[lo:hi] + choice
                    vals = Cflat.take(idx)
                    np.add(vals, lat_mult[lo:hi], out=vals)
                    Cflat.put(idx, vals)
            else:
                counts.place(v, choice)
    finally:
        np.seterr(**err_state)
    return assignment


# -- bipartite SBM-Part -------------------------------------------------------


def bipartite_stream(
    table, tail_sizes, head_sizes, target, order=None,
    capacity_weighting=True,
):
    """Streaming bipartite SBM-Part (kernel entry point).

    Returns ``(tail_assignment, head_assignment)``.  The two sides
    stream interleaved; a tail placement touches one row of
    ``diff = current - target`` and a head placement one column, so the
    per-node cost is one (k_tail × k_head) matvec over the node's
    placed-neighbour counts.
    """
    nt, nh = table.num_tail_nodes, table.num_head_nodes
    tail_sizes = np.asarray(tail_sizes, dtype=np.int64)
    head_sizes = np.asarray(head_sizes, dtype=np.int64)
    kt, kh = tail_sizes.size, head_sizes.size
    target = np.ascontiguousarray(target, dtype=np.float64)

    if order is None:
        order = np.arange(nt + nh, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != nt + nh:
            raise ValueError("order must enumerate all tail+head nodes")

    n_all = nt + nh
    positions = np.empty(n_all, dtype=np.int64)
    positions[order] = np.arange(n_all, dtype=np.int64)

    # Later-neighbour tables, one per direction.  A tail placement
    # bumps the counts rows of its later heads (columns indexed by
    # tail groups) and vice versa.
    tails = table.tails
    heads = table.heads
    th_indptr, th_cols, th_mult = later_tables(
        tails, heads, positions[:nt], positions[nt:], nt
    )
    ht_indptr, ht_cols, ht_mult = later_tables(
        heads, tails, positions[nt:], positions[:nt], nh
    )
    th_base = th_cols * kt   # head-row base into C_head.flat
    ht_base = ht_cols * kh   # tail-row base into C_tail.flat

    C_tail = np.zeros((nt, kh), dtype=np.float64)
    C_head = np.zeros((nh, kt), dtype=np.float64)
    Ct_flat = C_tail.ravel()
    Ch_flat = C_head.ravel()

    tail_assign = np.full(nt, -1, dtype=np.int64)
    head_assign = np.full(nh, -1, dtype=np.int64)
    tail_loads = np.zeros(kt, dtype=np.int64)
    head_loads = np.zeros(kh, dtype=np.int64)
    current = np.zeros((kt, kh), dtype=np.float64)
    diff = current - target

    with np.errstate(divide="ignore", invalid="ignore"):
        w_tail = np.where(
            tail_sizes > 0, 1.0 - tail_loads / tail_sizes, 0.0
        )
        w_head = np.where(
            head_sizes > 0, 1.0 - head_loads / head_sizes, 0.0
        )
    full_tail = [int(j) for j in np.flatnonzero(tail_sizes == 0)]
    full_head = [int(j) for j in np.flatnonzero(head_sizes == 0)]
    fti = np.asarray(full_tail, dtype=np.int64)
    fhi = np.asarray(full_head, dtype=np.int64)

    score_t = np.empty(kt, dtype=np.float64)
    score_h = np.empty(kh, dtype=np.float64)
    bb_t = np.empty(kt, dtype=bool)
    bb_h = np.empty(kh, dtype=bool)
    ccol_views = [current[:, j] for j in range(kh)]
    dcol_views = [diff[:, j] for j in range(kh)]
    tcol_views = [np.ascontiguousarray(target[:, j]) for j in range(kh)]

    th_indptr_l = th_indptr.tolist()
    ht_indptr_l = ht_indptr.tolist()
    order_l = order.tolist()
    weighting = bool(capacity_weighting)

    for combined in order_l:
        if combined < nt:
            v = combined
            c = C_tail[v]
            # delta = 2*(diff @ c) + S2 per candidate tail group.
            np.dot(diff, c, out=score_t)
            s2 = float(np.dot(c, c))
            np.multiply(score_t, 2.0, out=score_t)
            np.add(score_t, s2, out=score_t)
            np.negative(score_t, out=score_t)
            if weighting:
                np.multiply(score_t, w_tail, out=score_t)
            if fti.size:
                score_t[fti] = _NEG_INF
            am = int(np.argmax(score_t))
            best = float(score_t[am])
            if best == _NEG_INF:
                raise RuntimeError("tail group capacities exhausted")
            thresh = best - REL_TIE_TOL * max(1.0, abs(best))
            np.greater_equal(score_t, thresh, out=bb_t)
            if int(np.count_nonzero(bb_t)) == 1:
                choice = am
            else:
                ties = np.flatnonzero(bb_t)
                remaining = (tail_sizes - tail_loads)[ties]
                choice = int(ties[np.argmax(remaining)])
            tail_assign[v] = choice
            tail_loads[choice] += 1
            if weighting:
                w_tail[choice] = (
                    1.0 - tail_loads[choice] / tail_sizes[choice]
                )
            if tail_loads[choice] >= tail_sizes[choice]:
                full_tail.append(choice)
                fti = np.asarray(full_tail, dtype=np.int64)
            crow = current[choice]
            np.add(crow, c, out=crow)
            np.subtract(crow, target[choice], out=diff[choice])
            lo = th_indptr_l[v]
            hi = th_indptr_l[v + 1]
            if hi > lo:
                idx = th_base[lo:hi] + choice
                vals = Ch_flat.take(idx)
                np.add(vals, th_mult[lo:hi], out=vals)
                Ch_flat.put(idx, vals)
        else:
            v = combined - nt
            c = C_head[v]
            np.dot(c, diff, out=score_h)
            s2 = float(np.dot(c, c))
            np.multiply(score_h, 2.0, out=score_h)
            np.add(score_h, s2, out=score_h)
            np.negative(score_h, out=score_h)
            if weighting:
                np.multiply(score_h, w_head, out=score_h)
            if fhi.size:
                score_h[fhi] = _NEG_INF
            am = int(np.argmax(score_h))
            best = float(score_h[am])
            if best == _NEG_INF:
                raise RuntimeError("head group capacities exhausted")
            thresh = best - REL_TIE_TOL * max(1.0, abs(best))
            np.greater_equal(score_h, thresh, out=bb_h)
            if int(np.count_nonzero(bb_h)) == 1:
                choice = am
            else:
                ties = np.flatnonzero(bb_h)
                remaining = (head_sizes - head_loads)[ties]
                choice = int(ties[np.argmax(remaining)])
            head_assign[v] = choice
            head_loads[choice] += 1
            if weighting:
                w_head[choice] = (
                    1.0 - head_loads[choice] / head_sizes[choice]
                )
            if head_loads[choice] >= head_sizes[choice]:
                full_head.append(choice)
                fhi = np.asarray(full_head, dtype=np.int64)
            ccol = ccol_views[choice]
            np.add(ccol, c, out=ccol)
            np.subtract(
                ccol, tcol_views[choice], out=dcol_views[choice]
            )
            lo = ht_indptr_l[v]
            hi = ht_indptr_l[v + 1]
            if hi > lo:
                idx = ht_base[lo:hi] + choice
                vals = Ct_flat.take(idx)
                np.add(vals, ht_mult[lo:hi], out=vals)
                Ct_flat.put(idx, vals)

    return tail_assign, head_assign
