"""Optional compiled backend for the streaming-placement kernel.

The streaming placement loop is inherently sequential (every placement
changes the state every later score reads), so it cannot be batched in
numpy; the per-node interpreter overhead is the floor.  This module
removes that floor when a system C compiler is present: the whole loop
is a single C function (embedded below, ~IEEE-strict ``-O2``), compiled
on first use into a cached shared object and called through
``ctypes``.  Nothing is installed — no build-time dependency, no wheel;
if compilation fails for any reason the kernel silently stays on the
numpy path.

Semantics match the numpy kernel exactly:

* counts and the ``current`` matrix hold integer-valued doubles, so all
  accumulation is exact regardless of summation order;
* the cold path replays the legacy ops verbatim (sequential CDF, same
  comparisons), so cold placements are bitwise identical;
* warm scores use the same reassociated gain formula as the numpy
  path; sums are plain sequential C reductions, which differ from the
  numpy pairwise tree by ulps — absorbed by the relative tie band
  (see ``kernel.tie_threshold``);
* ties are enumerated in ascending group order with the same
  pre-drawn uniform consumed the same way.

Compilation, caching and the environment knobs
(``REPRO_NO_CKERNEL``, ``CC``, ``REPRO_CKERNEL_CACHE``) are shared
with the attribute kernels via :mod:`repro.core.ccompile`.
"""

from __future__ import annotations

import ctypes

import numpy as np

from ..ccompile import ckernels_disabled, compile_cached

__all__ = ["load_ckernel"]

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Return codes shared by both streams. */
#define OK 0
#define EXHAUSTED 1

static int64_t cold_choice(
    int64_t k,
    const int64_t *group_sizes,
    const int64_t *loads,
    double u,
    int32_t proportional,
    double *rem,
    double *cdf)
{
    double total = 0.0;
    for (int64_t j = 0; j < k; ++j) {
        double r = (double)group_sizes[j] - (double)loads[j];
        if (r < 0.0) r = 0.0;
        rem[j] = r;
        total += r;
    }
    if (!(total > 0.0)) return -1;
    if (!proportional) {
        int64_t best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (rem[j] > rem[best]) best = j;
        return best;
    }
    double acc = 0.0;
    for (int64_t j = 0; j < k; ++j) {
        acc += rem[j] / total;
        cdf[j] = acc;
    }
    int64_t idx = 0;
    while (idx < k && cdf[idx] <= u) idx++;
    if (idx >= k) {
        /* cdf[k-1] landed one ulp below 1.0 and u fell beyond it:
           place into the last group with remaining capacity. */
        for (idx = k - 1; idx > 0 && rem[idx] <= 0.0; --idx) {}
    }
    return idx;
}

int64_t sbm_part_stream(
    int64_t n, int64_t k,
    const int64_t *indptr, const int64_t *neighbors,
    const int64_t *order,
    const int64_t *group_sizes,
    const double *target,
    const double *uniforms,
    int32_t capacity_weighting, int32_t proportional,
    int32_t neg_divide,
    int64_t *assignment,   /* length n, prefilled -1 */
    double *work,          /* k*k + 6*k doubles, zeroed */
    int64_t *iwork,        /* 2*k, zeroed */
    int64_t *err_step)
{
    double *current = work;
    double *cnt    = work + k * k;
    double *score  = cnt + k;
    double *rem    = score + k;
    double *cdf    = rem + k;
    double *weight = cdf + k;
    double *wclip  = weight + k;
    int64_t *loads = iwork;
    int64_t *nz    = iwork + k;

    for (int64_t j = 0; j < k; ++j) {
        double w = group_sizes[j] > 0
            ? 1.0 - (double)loads[j] / (double)group_sizes[j]
            : 0.0;
        weight[j] = w;
        wclip[j] = w > 1e-9 ? w : 1e-9;
    }

    for (int64_t step = 0; step < n; ++step) {
        int64_t v = order[step];
        int64_t s = 0;
        for (int64_t j = 0; j < k; ++j) cnt[j] = 0.0;
        for (int64_t e = indptr[v]; e < indptr[v + 1]; ++e) {
            int64_t a = assignment[neighbors[e]];
            if (a >= 0) {
                if (cnt[a] == 0.0) nz[s++] = a;
                cnt[a] += 1.0;
            }
        }
        int64_t choice;
        if (s == 0) {
            choice = cold_choice(
                k, group_sizes, loads, uniforms[step],
                proportional, rem, cdf);
            if (choice < 0) { *err_step = step; return EXHAUSTED; }
        } else {
            double S2 = 0.0;
            for (int64_t i = 0; i < s; ++i) {
                double cv = cnt[nz[i]];
                S2 += cv * cv;
            }
            double best = -INFINITY;
            for (int64_t t = 0; t < k; ++t) {
                if (loads[t] >= group_sizes[t]) {
                    score[t] = -INFINITY;
                    continue;
                }
                const double *cur = current + t * k;
                const double *tg = target + t * k;
                double R = 0.0;
                for (int64_t i = 0; i < s; ++i) {
                    int64_t j = nz[i];
                    R += (cur[j] - tg[j]) * cnt[j];
                }
                double d = cur[t] - tg[t];
                double ct = cnt[t];
                double gain = ct * (2.0 * d + ct) - 4.0 * R - 2.0 * S2;
                double sc;
                if (!capacity_weighting) sc = gain;
                else if (!neg_divide) sc = gain * weight[t];
                else sc = gain >= 0.0
                    ? gain * weight[t]
                    : gain / wclip[t];
                score[t] = sc;
                if (sc > best) best = sc;
            }
            if (best == -INFINITY) { *err_step = step; return EXHAUSTED; }
            double ab = fabs(best);
            double thresh = best - 1e-12 * (ab > 1.0 ? ab : 1.0);
            int64_t ncand = 0, first = -1;
            for (int64_t t = 0; t < k; ++t) {
                if (score[t] >= thresh) {
                    if (first < 0) first = t;
                    ncand++;
                }
            }
            if (ncand == 1) {
                choice = first;
            } else {
                double maxrem = -INFINITY;
                int64_t topcount = 0;
                for (int64_t t = 0; t < k; ++t) {
                    if (score[t] < thresh) continue;
                    double r = (double)group_sizes[t]
                        - (double)loads[t];
                    if (r > maxrem) { maxrem = r; topcount = 1; }
                    else if (r == maxrem) topcount++;
                }
                int64_t pick = topcount > 1
                    ? (int64_t)(uniforms[step] * (double)topcount)
                    : 0;
                choice = first;
                int64_t seen = 0;
                for (int64_t t = 0; t < k; ++t) {
                    if (score[t] < thresh) continue;
                    double r = (double)group_sizes[t]
                        - (double)loads[t];
                    if (r != maxrem) continue;
                    if (seen == pick) { choice = t; break; }
                    seen++;
                }
            }
            /* Legacy update order: row +=, column +=, diagonal -=. */
            double *crow = current + choice * k;
            for (int64_t i = 0; i < s; ++i) {
                int64_t j = nz[i];
                crow[j] += cnt[j];
            }
            for (int64_t i = 0; i < s; ++i) {
                int64_t j = nz[i];
                current[j * k + choice] += cnt[j];
            }
            crow[choice] -= cnt[choice];
        }
        assignment[v] = choice;
        loads[choice] += 1;
        if (group_sizes[choice] > 0) {
            double w = 1.0
                - (double)loads[choice] / (double)group_sizes[choice];
            weight[choice] = w;
            wclip[choice] = w > 1e-9 ? w : 1e-9;
        }
    }
    return OK;
}

int64_t ldg_stream(
    int64_t n, int64_t k,
    const int64_t *indptr, const int64_t *neighbors,
    const int64_t *order,
    const int64_t *capacities,
    const double *uniforms,   /* may be NULL when has_ties == 0 */
    int32_t has_ties,
    int64_t *assignment,      /* length n, prefilled -1 */
    double *work,             /* 2*k doubles, zeroed */
    int64_t *iwork,           /* k, zeroed */
    int64_t *err_step)
{
    double *cnt = work;
    double *weight = work + k;
    int64_t *loads = iwork;

    for (int64_t j = 0; j < k; ++j)
        weight[j] = capacities[j] > 0
            ? 1.0 - (double)loads[j] / (double)capacities[j]
            : -INFINITY;

    for (int64_t step = 0; step < n; ++step) {
        int64_t v = order[step];
        for (int64_t j = 0; j < k; ++j) cnt[j] = 0.0;
        for (int64_t e = indptr[v]; e < indptr[v + 1]; ++e) {
            int64_t a = assignment[neighbors[e]];
            if (a >= 0) cnt[a] += 1.0;
        }
        /* Scores are recomputed per pass below; with k small that is
           cheaper than a third scratch array. */
        double best = -INFINITY;
        int64_t am = -1;
        for (int64_t t = 0; t < k; ++t) {
            double sc = loads[t] >= capacities[t]
                ? -INFINITY
                : cnt[t] * weight[t];
            if (sc > best) { best = sc; am = t; }
        }
        if (am < 0) { *err_step = step; return EXHAUSTED; }
        int64_t ncand = 0;
        for (int64_t t = 0; t < k; ++t) {
            double sc = loads[t] >= capacities[t]
                ? -INFINITY
                : cnt[t] * weight[t];
            if (sc == best) ncand++;
        }
        int64_t choice = am;
        if (ncand > 1) {
            if (has_ties) {
                int64_t pick =
                    (int64_t)(uniforms[step] * (double)ncand);
                int64_t seen = 0;
                for (int64_t t = 0; t < k; ++t) {
                    double sc = loads[t] >= capacities[t]
                        ? -INFINITY
                        : cnt[t] * weight[t];
                    if (sc != best) continue;
                    if (seen == pick) { choice = t; break; }
                    seen++;
                }
            } else {
                int64_t bestload = -1;
                for (int64_t t = 0; t < k; ++t) {
                    double sc = loads[t] >= capacities[t]
                        ? -INFINITY
                        : cnt[t] * weight[t];
                    if (sc != best) continue;
                    if (bestload < 0 || loads[t] < bestload) {
                        bestload = loads[t];
                        choice = t;
                    }
                }
            }
        }
        assignment[v] = choice;
        loads[choice] += 1;
        if (capacities[choice] > 0)
            weight[choice] = 1.0
                - (double)loads[choice] / (double)capacities[choice];
    }
    return OK;
}
"""

_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


class _CKernel:
    """ctypes facade over the compiled stream functions."""

    def __init__(self, lib):
        self._lib = lib
        lib.sbm_part_stream.restype = ctypes.c_int64
        lib.sbm_part_stream.argtypes = [
            ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, _I64P, _I64P,
            _F64P, _F64P,
            ctypes.c_int32, ctypes.c_int32, ctypes.c_int32,
            _I64P, _F64P, _I64P,
            ctypes.POINTER(ctypes.c_int64),
        ]
        lib.ldg_stream.restype = ctypes.c_int64
        lib.ldg_stream.argtypes = [
            ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, _I64P, _I64P,
            ctypes.c_void_p, ctypes.c_int32,
            _I64P, _F64P, _I64P,
            ctypes.POINTER(ctypes.c_int64),
        ]

    def sbm_part_stream(
        self, prep, group_sizes, target, uniforms,
        capacity_weighting, cold_start, negative_gain,
    ):
        n = prep.num_nodes
        k = group_sizes.size
        assignment = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return assignment
        work = np.zeros(k * k + 6 * k, dtype=np.float64)
        iwork = np.zeros(2 * k, dtype=np.int64)
        err_step = ctypes.c_int64(0)
        rc = self._lib.sbm_part_stream(
            n, k,
            np.ascontiguousarray(prep.indptr, dtype=np.int64),
            np.ascontiguousarray(prep.neighbors, dtype=np.int64),
            np.ascontiguousarray(prep.order, dtype=np.int64),
            np.ascontiguousarray(group_sizes, dtype=np.int64),
            np.ascontiguousarray(target, dtype=np.float64),
            np.ascontiguousarray(uniforms, dtype=np.float64),
            int(bool(capacity_weighting)),
            int(cold_start == "proportional"),
            int(negative_gain == "divide"),
            assignment, work, iwork,
            ctypes.byref(err_step),
        )
        if rc:
            raise RuntimeError("group capacities exhausted mid-stream")
        return assignment

    def ldg_stream(self, prep, capacities, uniforms):
        n = prep.num_nodes
        k = capacities.size
        assignment = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return assignment
        work = np.zeros(2 * k, dtype=np.float64)
        iwork = np.zeros(k, dtype=np.int64)
        err_step = ctypes.c_int64(0)
        has_ties = uniforms is not None
        if has_ties:
            uni = np.ascontiguousarray(uniforms, dtype=np.float64)
            uni_ptr = uni.ctypes.data_as(ctypes.c_void_p)
        else:
            uni_ptr = None
        rc = self._lib.ldg_stream(
            n, k,
            np.ascontiguousarray(prep.indptr, dtype=np.int64),
            np.ascontiguousarray(prep.neighbors, dtype=np.int64),
            np.ascontiguousarray(prep.order, dtype=np.int64),
            np.ascontiguousarray(capacities, dtype=np.int64),
            uni_ptr, int(has_ties),
            assignment, work, iwork,
            ctypes.byref(err_step),
        )
        if rc:
            raise RuntimeError("no partition with remaining capacity")
        return assignment


_LOADED = False
_KERNEL = None


def load_ckernel():
    """The compiled kernel, or ``None`` when unavailable.

    Compilation is attempted once per process; any failure (no
    compiler, sandboxed subprocess, unwritable cache) permanently
    falls back to ``None`` so the numpy path takes over silently.
    """
    global _LOADED, _KERNEL
    if _LOADED:
        return _KERNEL
    _LOADED = True
    if ckernels_disabled():
        return None
    try:
        lib = compile_cached(_SOURCE, "matchkernel")
        _KERNEL = _CKernel(lib) if lib is not None else None
    except Exception:
        _KERNEL = None
    return _KERNEL
