"""Property-to-node matching: SBM-Part and its baselines (Section 4.2)."""

from .baselines import greedy_label_match, ldg_degree_match
from .bipartite import BipartiteMatchResult, bipartite_sbm_part_match
from .random_matching import random_match
from .sbm_part import SbmPartResult, sbm_part_assign, sbm_part_match
from .targets import bipartite_edge_count_target, edge_count_target

__all__ = [
    "BipartiteMatchResult",
    "SbmPartResult",
    "bipartite_edge_count_target",
    "bipartite_sbm_part_match",
    "edge_count_target",
    "greedy_label_match",
    "ldg_degree_match",
    "random_match",
    "sbm_part_assign",
    "sbm_part_match",
]
