"""Property-to-node matching: SBM-Part and its baselines (Section 4.2).

The streaming matchers all run on the shared placement kernel
(:mod:`repro.core.matching.kernel`); the original per-node loops are
preserved verbatim in :mod:`repro.core.matching.legacy` as equivalence
and benchmark baselines.
"""

from .baselines import greedy_label_match, ldg_degree_match
from .bipartite import BipartiteMatchResult, bipartite_sbm_part_match
from .kernel import (
    MatchPrep,
    available_impls,
    prepare_match_stream,
    tie_threshold,
)
from .random_matching import random_match
from .sbm_part import SbmPartResult, sbm_part_assign, sbm_part_match
from .targets import bipartite_edge_count_target, edge_count_target

__all__ = [
    "BipartiteMatchResult",
    "MatchPrep",
    "SbmPartResult",
    "available_impls",
    "bipartite_edge_count_target",
    "bipartite_sbm_part_match",
    "edge_count_target",
    "greedy_label_match",
    "ldg_degree_match",
    "prepare_match_stream",
    "random_match",
    "sbm_part_assign",
    "sbm_part_match",
    "tie_threshold",
]
