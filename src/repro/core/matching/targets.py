"""Target matrices for SBM-Part.

SBM-Part minimises the Frobenius distance between the evolving
inter-group edge-count matrix and a target ``W`` derived from the
user-supplied joint distribution ``P(X, Y)`` and the structure's edge
count ``m`` (Section 4.2).  The convention here matches
:func:`repro.partitioning.metrics.mixing_matrix`: a symmetric matrix
whose off-diagonal entries each hold the *full* count of edges between
the two groups and whose diagonal holds intra-group counts once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_count_target", "bipartite_edge_count_target"]


def edge_count_target(joint, num_edges):
    """Monopartite target ``W`` in mixing-matrix convention.

    ``W[i, i] = m P(i, i)`` and ``W[i, j] = 2 m P(i, j)`` for ``i != j``
    (the joint stores the unordered pair mass split across the two
    symmetric entries, so doubling restores the full pair count).
    """
    if num_edges < 0:
        raise ValueError("num_edges must be nonnegative")
    p = joint.matrix
    target = 2.0 * float(num_edges) * p
    diag = float(num_edges) * np.diag(p)
    np.fill_diagonal(target, diag)
    return target


def bipartite_edge_count_target(matrix, num_edges):
    """Bipartite target: ``W[i, j] = m P(i, j)`` (no symmetry assumed).

    ``matrix`` is a (k_tail, k_head) joint over (tail value, head value);
    it is normalised here.
    """
    p = np.asarray(matrix, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError("bipartite joint must be a 2-D matrix")
    if (p < 0).any():
        raise ValueError("joint entries must be nonnegative")
    total = p.sum()
    if total <= 0:
        raise ValueError("joint must have positive mass")
    return float(num_edges) * (p / total)
