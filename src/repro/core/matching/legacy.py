"""Frozen reference implementations of the streaming matchers.

These are the original per-node Python loops of ``sbm_part_assign``,
``bipartite_sbm_part_match`` and ``ldg_partition``, preserved verbatim
when the streaming-placement kernel (:mod:`repro.core.matching.kernel`)
replaced them on the hot path.  They exist for two reasons:

* **equivalence proofs** — ``tests/test_matching_kernel.py`` streams
  randomised instances through both paths and asserts byte-identical
  assignments, and ``tests/golden/matching/`` freezes the outputs these
  loops produced on fixed seeds;
* **benchmark baselines** — ``benchmarks/bench_ablation_matchers.py``
  reports the kernel's speedup against exactly this code.

Do not "fix" or optimise anything here; the entire value of the module
is that it never changes.  Note the tie tolerance is the original
*absolute* ``1e-12`` (the kernel uses a relative band; see
``kernel.tie_threshold``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "legacy_bipartite_assignments",
    "legacy_ldg_partition",
    "legacy_sbm_part_assign",
]


def legacy_sbm_part_assign(
    table,
    group_sizes,
    target,
    order=None,
    capacity_weighting=True,
    tie_stream=None,
    cold_start="proportional",
    negative_gain="divide",
):
    """The original O(k^2)-per-node SBM-Part streaming loop."""
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.ndim != 1 or group_sizes.size == 0:
        raise ValueError("group_sizes must be a non-empty 1-D array")
    if (group_sizes < 0).any():
        raise ValueError("group sizes must be nonnegative")
    n = table.num_nodes
    if int(group_sizes.sum()) < n:
        raise ValueError(
            f"group sizes sum to {int(group_sizes.sum())} < n = {n}"
        )
    k = group_sizes.size
    target = np.asarray(target, dtype=np.float64)
    if target.shape != (k, k):
        raise ValueError(
            f"target must be ({k}, {k}), got {target.shape}"
        )

    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != n:
            raise ValueError("order must enumerate all n nodes")
    if tie_stream is None:
        from ...prng import RandomStream

        tie_stream = RandomStream(0, "sbm-part.coldstart")

    indptr, neighbors, _ = table.adjacency_csr()
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k, dtype=np.int64)
    current = np.zeros((k, k), dtype=np.float64)
    caps = group_sizes.astype(np.float64)
    counts = np.zeros(k, dtype=np.float64)

    for step, v in enumerate(order):
        nbrs = neighbors[indptr[v]:indptr[v + 1]]
        placed = assignment[nbrs]
        placed = placed[placed >= 0]
        counts[:] = 0.0
        if placed.size:
            np.add.at(counts, placed, 1.0)

        if not counts.any():
            remaining = np.maximum(caps - loads, 0.0)
            total = remaining.sum()
            if total <= 0:
                raise RuntimeError(
                    "group capacities exhausted mid-stream"
                )
            if cold_start == "proportional":
                u = float(tie_stream.uniform(np.int64(step)))
                cdf = np.cumsum(remaining / total)
                choice = int(np.searchsorted(cdf, u, side="right"))
            elif cold_start == "greedy":
                choice = int(np.argmax(remaining))
            else:
                raise ValueError(
                    f"unknown cold_start {cold_start!r}"
                )
            assignment[v] = choice
            loads[choice] += 1
            continue

        diff = current - target
        cross = diff * counts[np.newaxis, :]
        sq = counts * counts
        row_term = 2.0 * (2.0 * cross.sum(axis=1) + sq.sum())
        diag_idx = np.arange(k)
        diag_term = (
            2.0 * diff[diag_idx, diag_idx] * counts + sq
        )
        delta = row_term - 2.0 * (2.0 * cross[diag_idx, diag_idx] + sq) \
            + diag_term

        gain = -delta
        if capacity_weighting:
            with np.errstate(divide="ignore", invalid="ignore"):
                weight = np.where(caps > 0, 1.0 - loads / caps, 0.0)
            if negative_gain == "divide":
                score = np.where(
                    gain >= 0,
                    gain * weight,
                    gain / np.maximum(weight, 1e-9),
                )
            elif negative_gain == "multiply":
                score = gain * weight
            else:
                raise ValueError(
                    f"unknown negative_gain {negative_gain!r}"
                )
        else:
            score = gain.copy()
        score[loads >= group_sizes] = -np.inf
        best = float(score.max())
        if not np.isfinite(best):
            raise RuntimeError("group capacities exhausted mid-stream")
        candidates = np.flatnonzero(score >= best - 1e-12)
        if candidates.size == 1:
            choice = int(candidates[0])
        else:
            remaining = caps[candidates] - loads[candidates]
            top = candidates[remaining == remaining.max()]
            if top.size > 1:
                pick = int(
                    tie_stream.randint(np.int64(step), 0, top.size)
                )
                choice = int(top[pick])
            else:
                choice = int(top[0])

        assignment[v] = choice
        loads[choice] += 1
        current[choice, :] += counts
        current[:, choice] += counts
        current[choice, choice] -= counts[choice]
    return assignment


def legacy_ldg_partition(table, capacities, order=None, tie_stream=None):
    """The original per-node LDG streaming loop."""
    capacities = np.asarray(capacities, dtype=np.int64)
    if capacities.ndim != 1 or capacities.size == 0:
        raise ValueError("capacities must be a non-empty 1-D array")
    if (capacities < 0).any():
        raise ValueError("capacities must be nonnegative")
    n = table.num_nodes
    if int(capacities.sum()) < n:
        raise ValueError(
            f"capacities sum to {int(capacities.sum())} < n = {n}"
        )
    k = capacities.size
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != n:
            raise ValueError("order must enumerate all n nodes")

    indptr, neighbors, _ = table.adjacency_csr()
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k, dtype=np.int64)
    caps = capacities.astype(np.float64)
    neighbor_counts = np.zeros(k, dtype=np.float64)

    for step, v in enumerate(order):
        nbrs = neighbors[indptr[v]:indptr[v + 1]]
        placed = assignment[nbrs]
        placed = placed[placed >= 0]
        neighbor_counts[:] = 0.0
        if placed.size:
            np.add.at(neighbor_counts, placed, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            weight = np.where(caps > 0, 1.0 - loads / caps, -np.inf)
        scores = neighbor_counts * weight
        scores[loads >= capacities] = -np.inf
        best = float(scores.max())
        if not np.isfinite(best):
            raise RuntimeError("no partition with remaining capacity")
        candidates = np.flatnonzero(scores == best)
        if candidates.size == 1:
            choice = int(candidates[0])
        elif tie_stream is not None:
            pick = int(tie_stream.randint(np.int64(step), 0, candidates.size))
            choice = int(candidates[pick])
        else:
            choice = int(candidates[np.argmin(loads[candidates])])
        assignment[v] = choice
        loads[choice] += 1
    return assignment


def legacy_bipartite_assignments(
    table,
    tail_sizes,
    head_sizes,
    target,
    order=None,
    capacity_weighting=True,
):
    """The original interleaved bipartite SBM-Part streaming loop.

    Returns ``(tail_assignment, head_assignment)``; target building,
    mapping and the achieved matrix live in the public wrapper.
    """
    nt, nh = table.num_tail_nodes, table.num_head_nodes
    tail_sizes = np.asarray(tail_sizes, dtype=np.int64)
    head_sizes = np.asarray(head_sizes, dtype=np.int64)
    kt, kh = tail_sizes.size, head_sizes.size
    target = np.asarray(target, dtype=np.float64)

    if order is None:
        order = np.arange(nt + nh, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != nt + nh:
            raise ValueError("order must enumerate all tail+head nodes")

    # Tail -> heads
    order_t = np.argsort(table.tails, kind="stable")
    t_indptr = np.zeros(nt + 1, dtype=np.int64)
    np.cumsum(np.bincount(table.tails, minlength=nt), out=t_indptr[1:])
    t_neighbors = table.heads[order_t]
    # Head -> tails
    order_h = np.argsort(table.heads, kind="stable")
    h_indptr = np.zeros(nh + 1, dtype=np.int64)
    np.cumsum(np.bincount(table.heads, minlength=nh), out=h_indptr[1:])
    h_neighbors = table.tails[order_h]

    tail_assign = np.full(nt, -1, dtype=np.int64)
    head_assign = np.full(nh, -1, dtype=np.int64)
    tail_loads = np.zeros(kt, dtype=np.int64)
    head_loads = np.zeros(kh, dtype=np.int64)
    current = np.zeros((kt, kh), dtype=np.float64)

    for combined in order:
        if combined < nt:
            v = int(combined)
            nbrs = t_neighbors[t_indptr[v]:t_indptr[v + 1]]
            placed = head_assign[nbrs]
            placed = placed[placed >= 0]
            counts = np.zeros(kh, dtype=np.float64)
            if placed.size:
                np.add.at(counts, placed, 1.0)
            diff = current - target
            delta = (
                2.0 * (diff * counts[np.newaxis, :]).sum(axis=1)
                + (counts * counts).sum()
            )
            gain = -delta
            if capacity_weighting:
                with np.errstate(divide="ignore", invalid="ignore"):
                    weight = np.where(
                        tail_sizes > 0, 1.0 - tail_loads / tail_sizes, 0.0
                    )
                score = gain * weight
            else:
                score = gain
            score = np.where(tail_loads >= tail_sizes, -np.inf, score)
            best = float(score.max())
            if not np.isfinite(best):
                raise RuntimeError("tail group capacities exhausted")
            ties = np.flatnonzero(score >= best - 1e-12)
            remaining = (tail_sizes - tail_loads)[ties]
            choice = int(ties[np.argmax(remaining)])
            tail_assign[v] = choice
            tail_loads[choice] += 1
            if counts.any():
                current[choice, :] += counts
        else:
            v = int(combined - nt)
            nbrs = h_neighbors[h_indptr[v]:h_indptr[v + 1]]
            placed = tail_assign[nbrs]
            placed = placed[placed >= 0]
            counts = np.zeros(kt, dtype=np.float64)
            if placed.size:
                np.add.at(counts, placed, 1.0)
            diff = current - target
            delta = (
                2.0 * (diff * counts[:, np.newaxis]).sum(axis=0)
                + (counts * counts).sum()
            )
            gain = -delta
            if capacity_weighting:
                with np.errstate(divide="ignore", invalid="ignore"):
                    weight = np.where(
                        head_sizes > 0, 1.0 - head_loads / head_sizes, 0.0
                    )
                score = gain * weight
            else:
                score = gain
            score = np.where(head_loads >= head_sizes, -np.inf, score)
            best = float(score.max())
            if not np.isfinite(best):
                raise RuntimeError("head group capacities exhausted")
            ties = np.flatnonzero(score >= best - 1e-12)
            remaining = (head_sizes - head_loads)[ties]
            choice = int(ties[np.argmax(remaining)])
            head_assign[v] = choice
            head_loads[choice] += 1
            if counts.any():
                current[:, choice] += counts

    return tail_assign, head_assign
