"""Bipartite SBM-Part (paper Section 4.2, closing remark).

"A small variation of SBM-Part can also be applied to bi-partite
graphs, since the SBM can model this type of graphs as well.  If the
bi-partite graph is between two different node types, the input would
contain two PTs instead of one."

Both sides stream together (interleaved by the arrival order over the
union of node ids); the target is the (k_tail, k_head) edge-count matrix
``m P(X, Y)`` and placing a node only perturbs one row (tail side) or
one column (head side) of the current-count matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sbm_part import _mapping_from_assignment
from .targets import bipartite_edge_count_target

__all__ = ["BipartiteMatchResult", "bipartite_sbm_part_match"]


@dataclass
class BipartiteMatchResult:
    """Outcome of a bipartite SBM-Part run."""

    tail_assignment: np.ndarray
    head_assignment: np.ndarray
    tail_mapping: np.ndarray
    head_mapping: np.ndarray
    target: np.ndarray
    achieved: np.ndarray

    @property
    def frobenius_error(self):
        return float(
            np.linalg.norm(self.achieved - self.target, ord="fro")
        )


def _bipartite_adjacency(table):
    """CSR adjacency for both sides of a bipartite table."""
    nt, nh = table.num_tail_nodes, table.num_head_nodes
    # Tail -> heads
    order_t = np.argsort(table.tails, kind="stable")
    t_indptr = np.zeros(nt + 1, dtype=np.int64)
    np.cumsum(np.bincount(table.tails, minlength=nt), out=t_indptr[1:])
    t_neighbors = table.heads[order_t]
    # Head -> tails
    order_h = np.argsort(table.heads, kind="stable")
    h_indptr = np.zeros(nh + 1, dtype=np.int64)
    np.cumsum(np.bincount(table.heads, minlength=nh), out=h_indptr[1:])
    h_neighbors = table.tails[order_h]
    return (t_indptr, t_neighbors), (h_indptr, h_neighbors)


def bipartite_sbm_part_match(
    tail_ptable,
    head_ptable,
    joint_matrix,
    table,
    order=None,
    capacity_weighting=True,
):
    """Match two PTs to the two sides of a bipartite structure.

    Parameters
    ----------
    tail_ptable, head_ptable:
        the two property tables (paper: "two PTs instead of one").
    joint_matrix:
        ``(k_tail, k_head)`` target joint over (tail value, head value);
        normalised internally.
    table:
        bipartite :class:`~repro.tables.EdgeTable`.
    order:
        arrival order over the combined id space: ids ``0..nt-1`` are
        tail nodes, ``nt..nt+nh-1`` are head nodes.  Interleaved natural
        order when omitted.
    """
    nt, nh = table.num_tail_nodes, table.num_head_nodes
    tail_codes, _ = tail_ptable.codes()
    head_codes, _ = head_ptable.codes()
    tail_sizes = np.bincount(tail_codes)
    head_sizes = np.bincount(head_codes)
    kt, kh = tail_sizes.size, head_sizes.size
    target = bipartite_edge_count_target(joint_matrix, table.num_edges)
    if target.shape != (kt, kh):
        raise ValueError(
            f"joint is {target.shape}, but PTs induce ({kt}, {kh}) groups"
        )
    if len(tail_ptable) < nt or len(head_ptable) < nh:
        raise ValueError("property tables smaller than the structure sides")

    if order is None:
        order = np.arange(nt + nh, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.size != nt + nh:
            raise ValueError("order must enumerate all tail+head nodes")

    (t_indptr, t_neighbors), (h_indptr, h_neighbors) = \
        _bipartite_adjacency(table)

    tail_assign = np.full(nt, -1, dtype=np.int64)
    head_assign = np.full(nh, -1, dtype=np.int64)
    tail_loads = np.zeros(kt, dtype=np.int64)
    head_loads = np.zeros(kh, dtype=np.int64)
    current = np.zeros((kt, kh), dtype=np.float64)

    for combined in order:
        if combined < nt:
            v = int(combined)
            nbrs = t_neighbors[t_indptr[v]:t_indptr[v + 1]]
            placed = head_assign[nbrs]
            placed = placed[placed >= 0]
            counts = np.zeros(kh, dtype=np.float64)
            if placed.size:
                np.add.at(counts, placed, 1.0)
            diff = current - target
            # Placing v in tail group t adds `counts` to row t.
            delta = (
                2.0 * (diff * counts[np.newaxis, :]).sum(axis=1)
                + (counts * counts).sum()
            )
            gain = -delta
            if capacity_weighting:
                with np.errstate(divide="ignore", invalid="ignore"):
                    weight = np.where(
                        tail_sizes > 0, 1.0 - tail_loads / tail_sizes, 0.0
                    )
                score = gain * weight
            else:
                score = gain
            score = np.where(tail_loads >= tail_sizes, -np.inf, score)
            best = float(score.max())
            if not np.isfinite(best):
                raise RuntimeError("tail group capacities exhausted")
            ties = np.flatnonzero(score >= best - 1e-12)
            remaining = (tail_sizes - tail_loads)[ties]
            choice = int(ties[np.argmax(remaining)])
            tail_assign[v] = choice
            tail_loads[choice] += 1
            if counts.any():
                current[choice, :] += counts
        else:
            v = int(combined - nt)
            nbrs = h_neighbors[h_indptr[v]:h_indptr[v + 1]]
            placed = tail_assign[nbrs]
            placed = placed[placed >= 0]
            counts = np.zeros(kt, dtype=np.float64)
            if placed.size:
                np.add.at(counts, placed, 1.0)
            diff = current - target
            delta = (
                2.0 * (diff * counts[:, np.newaxis]).sum(axis=0)
                + (counts * counts).sum()
            )
            gain = -delta
            if capacity_weighting:
                with np.errstate(divide="ignore", invalid="ignore"):
                    weight = np.where(
                        head_sizes > 0, 1.0 - head_loads / head_sizes, 0.0
                    )
                score = gain * weight
            else:
                score = gain
            score = np.where(head_loads >= head_sizes, -np.inf, score)
            best = float(score.max())
            if not np.isfinite(best):
                raise RuntimeError("head group capacities exhausted")
            ties = np.flatnonzero(score >= best - 1e-12)
            remaining = (head_sizes - head_loads)[ties]
            choice = int(ties[np.argmax(remaining)])
            head_assign[v] = choice
            head_loads[choice] += 1
            if counts.any():
                current[:, choice] += counts

    tail_mapping = _mapping_from_assignment(tail_assign, tail_codes)
    head_mapping = _mapping_from_assignment(head_assign, head_codes)
    achieved = np.zeros((kt, kh), dtype=np.float64)
    np.add.at(
        achieved,
        (tail_assign[table.tails], head_assign[table.heads]),
        1.0,
    )
    return BipartiteMatchResult(
        tail_assignment=tail_assign,
        head_assignment=head_assign,
        tail_mapping=tail_mapping,
        head_mapping=head_mapping,
        target=target,
        achieved=achieved,
    )
