"""Bipartite SBM-Part (paper Section 4.2, closing remark).

"A small variation of SBM-Part can also be applied to bi-partite
graphs, since the SBM can model this type of graphs as well.  If the
bi-partite graph is between two different node types, the input would
contain two PTs instead of one."

Both sides stream together (interleaved by the arrival order over the
union of node ids); the target is the (k_tail, k_head) edge-count matrix
``m P(X, Y)`` and placing a node only perturbs one row (tail side) or
one column (head side) of the current-count matrix.

The interleaved loop runs on the shared streaming-placement kernel
(:mod:`repro.core.matching.kernel`), which maintains
``current - target`` incrementally per touched row/column and reads
placed-neighbour counts from per-side streaming counts matrices; the
original loop is preserved in :mod:`repro.core.matching.legacy` and
pinned byte-for-byte by ``tests/golden/matching/``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernel import bipartite_stream
from .sbm_part import _mapping_from_assignment
from .targets import bipartite_edge_count_target

__all__ = ["BipartiteMatchResult", "bipartite_sbm_part_match"]


@dataclass
class BipartiteMatchResult:
    """Outcome of a bipartite SBM-Part run."""

    tail_assignment: np.ndarray
    head_assignment: np.ndarray
    tail_mapping: np.ndarray
    head_mapping: np.ndarray
    target: np.ndarray
    achieved: np.ndarray

    @property
    def frobenius_error(self):
        return float(
            np.linalg.norm(self.achieved - self.target, ord="fro")
        )


def bipartite_sbm_part_match(
    tail_ptable,
    head_ptable,
    joint_matrix,
    table,
    order=None,
    capacity_weighting=True,
):
    """Match two PTs to the two sides of a bipartite structure.

    Parameters
    ----------
    tail_ptable, head_ptable:
        the two property tables (paper: "two PTs instead of one").
    joint_matrix:
        ``(k_tail, k_head)`` target joint over (tail value, head value);
        normalised internally.
    table:
        bipartite :class:`~repro.tables.EdgeTable`.
    order:
        arrival order over the combined id space: ids ``0..nt-1`` are
        tail nodes, ``nt..nt+nh-1`` are head nodes.  Interleaved natural
        order when omitted.
    """
    nt, nh = table.num_tail_nodes, table.num_head_nodes
    tail_codes, _ = tail_ptable.codes()
    head_codes, _ = head_ptable.codes()
    tail_sizes = np.bincount(tail_codes)
    head_sizes = np.bincount(head_codes)
    kt, kh = tail_sizes.size, head_sizes.size
    target = bipartite_edge_count_target(joint_matrix, table.num_edges)
    if target.shape != (kt, kh):
        raise ValueError(
            f"joint is {target.shape}, but PTs induce ({kt}, {kh}) groups"
        )
    if len(tail_ptable) < nt or len(head_ptable) < nh:
        raise ValueError("property tables smaller than the structure sides")

    tail_assign, head_assign = bipartite_stream(
        table,
        tail_sizes,
        head_sizes,
        target,
        order=order,
        capacity_weighting=capacity_weighting,
    )

    tail_mapping = _mapping_from_assignment(tail_assign, tail_codes)
    head_mapping = _mapping_from_assignment(head_assign, head_codes)
    achieved = np.zeros((kt, kh), dtype=np.float64)
    np.add.at(
        achieved,
        (tail_assign[table.tails], head_assign[table.heads]),
        1.0,
    )
    return BipartiteMatchResult(
        tail_assignment=tail_assign,
        head_assignment=head_assign,
        tail_mapping=tail_mapping,
        head_mapping=head_mapping,
        target=target,
        achieved=achieved,
    )
