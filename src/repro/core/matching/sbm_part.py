"""SBM-Part: the paper's property-to-node matching algorithm (Section 4.2).

The problem: given a generated graph structure ``g``, a property table
``p`` whose values induce groups of sizes ``Q = {q_0..q_{k-1}}``, and a
target joint distribution ``P(X, Y)``, assign each structure node a row
of ``p`` so that the joint distribution observed over the edges of ``g``
approximates ``P``.

The algorithm is a variation of LDG streaming partitioning: nodes arrive
one at a time with their edges; the arriving node is placed into the
group ``t`` minimising the Frobenius distance between the updated
inter-group edge-count matrix ``W_t`` and the target ``W``:

    argmin_t || W_t - W ||_F^2

with the score balanced by the remaining group capacity
``(1 - s_t / q_t)`` exactly as in LDG.  Our implementation computes the
Frobenius *delta* incrementally: placing node ``v`` with ``c_j``
already-placed neighbours in group ``j`` only perturbs row/column ``t``,
so the delta for every candidate ``t`` is computable in O(k) total
per candidate — O(k^2 + deg(v)) per node, O(n k^2 + m) overall, and in
vectorised form the k candidates are evaluated at once.

Two implementation choices resolve ambiguities the paper leaves open
(both improve measured quality on the paper's own protocol and are
exercised by the ablation benchmarks):

* **cold start** — a node with no placed neighbours has identical
  (zero) delta for every group; it is spread proportionally to
  remaining capacity rather than sent to the emptiest group, avoiding
  a deterministic pile-up in the largest group at stream start;
* **negative-gain balancing** — the LDG capacity factor multiplies
  nonnegative scores; for negative gains (every choice makes the
  matrix worse) multiplying by a small remaining-capacity factor would
  *favour* nearly-full groups, so negative gains are divided by the
  factor instead, keeping the balancing direction uniform.

The per-node loop itself lives in the shared streaming-placement
kernel (:mod:`repro.core.matching.kernel`), which maintains
``current - target`` incrementally and scores candidates in O(k·deg)
per node instead of the original O(k^2); the original loop is kept
verbatim in :mod:`repro.core.matching.legacy` and the kernel's
assignments are pinned byte-for-byte against it by
``tests/golden/matching/``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernel import sbm_part_stream
from .targets import edge_count_target

__all__ = ["SbmPartResult", "sbm_part_assign", "sbm_part_match"]


@dataclass
class SbmPartResult:
    """Outcome of a monopartite SBM-Part run.

    Attributes
    ----------
    assignment:
        ``(n,)`` group label per structure node.
    mapping:
        ``(n,)`` PT row id per structure node (the paper's function
        ``f``); only set by :func:`sbm_part_match`.
    target:
        the ``W`` matrix the run aimed for.
    achieved:
        the final inter-group edge-count matrix actually realised.
    """

    assignment: np.ndarray
    mapping: np.ndarray | None
    target: np.ndarray
    achieved: np.ndarray

    @property
    def frobenius_error(self):
        """``||achieved - target||_F`` at the end of the stream."""
        return float(np.linalg.norm(self.achieved - self.target, ord="fro"))


def sbm_part_assign(
    table,
    group_sizes,
    target,
    order=None,
    capacity_weighting=True,
    tie_stream=None,
    cold_start="proportional",
    negative_gain="divide",
    impl="auto",
    prep=None,
):
    """Core streaming assignment loop.

    Parameters
    ----------
    table:
        monopartite :class:`~repro.tables.EdgeTable`.
    group_sizes:
        ``(k,)`` capacities ``q_t`` (must sum to >= n).
    target:
        ``(k, k)`` edge-count target in mixing-matrix convention.
    order:
        arrival order of node ids; natural order when omitted.  The
        paper's evaluation streams nodes randomly.
    capacity_weighting:
        apply the LDG-style ``(1 - s_t / q_t)`` balancing factor
        (ablation A3 turns this off).
    tie_stream:
        optional :class:`~repro.prng.RandomStream` for tie-breaking;
        ties otherwise go to the group with most remaining capacity.
    cold_start:
        placement rule for nodes with no placed neighbours:
        "proportional" (default — remaining-capacity-proportional
        random draw) or "greedy" (most remaining capacity, a literal
        LDG-style reading); ablated in
        ``benchmarks/bench_ablation_implementation.py``.
    negative_gain:
        balancing of negative Frobenius gains: "divide" (default —
        keeps the balancing direction uniform) or "multiply" (literal
        application of the LDG factor); same ablation bench.
    impl:
        kernel implementation: "auto" (default — compiled C when a
        system compiler is available, else numpy), "numpy" or "c".
    prep:
        optional precomputed
        :class:`~repro.core.matching.kernel.MatchPrep` for this
        ``(table, order)`` pair (the executor's ``match_prepare`` task
        builds one in a worker).

    Returns
    -------
    (n,) int64 group label per node.
    """
    return sbm_part_stream(
        table,
        group_sizes,
        target,
        order=order,
        capacity_weighting=capacity_weighting,
        tie_stream=tie_stream,
        cold_start=cold_start,
        negative_gain=negative_gain,
        impl=impl,
        prep=prep,
    )


def _mapping_from_assignment(assignment, codes):
    """Build ``f`` (structure node -> PT row) from group labels.

    PT rows are bucketed by their value code; nodes of group ``g``
    consume the rows of code ``g`` in ascending id order.
    """
    codes = np.asarray(codes, dtype=np.int64)
    k = int(codes.max()) + 1 if codes.size else 0
    rows_by_code = [np.flatnonzero(codes == g) for g in range(k)]
    cursors = np.zeros(k, dtype=np.int64)
    mapping = np.empty(assignment.size, dtype=np.int64)
    for v, g in enumerate(assignment):
        bucket = rows_by_code[g]
        cursor = cursors[g]
        if cursor >= bucket.size:
            raise RuntimeError(
                f"group {g} over-assigned: no PT rows left"
            )
        mapping[v] = bucket[cursor]
        cursors[g] = cursor + 1
    return mapping


def sbm_part_match(
    ptable,
    joint,
    table,
    order=None,
    capacity_weighting=True,
    tie_stream=None,
    cold_start="proportional",
    negative_gain="divide",
    impl="auto",
    prep=None,
):
    """Full matching: PT + joint + structure -> mapping ``f``.

    This is the *match graph* task of Figure 2: group sizes come from
    the PT's value counts, the target from the joint and the structure's
    edge count, and the result maps every structure node to a concrete
    PT row whose value realises the assigned group.

    Returns
    -------
    :class:`SbmPartResult`
    """
    from ...partitioning import mixing_matrix

    codes, _categories = ptable.codes()
    group_sizes = np.bincount(codes)
    if joint.k != group_sizes.size:
        raise ValueError(
            f"joint has {joint.k} categories but PT {ptable.name!r} has "
            f"{group_sizes.size} distinct values"
        )
    if len(ptable) < table.num_nodes:
        raise ValueError(
            f"PT {ptable.name!r} has {len(ptable)} rows but the structure "
            f"has {table.num_nodes} nodes"
        )
    target = edge_count_target(joint, table.num_edges)
    assignment = sbm_part_assign(
        table,
        group_sizes,
        target,
        order=order,
        capacity_weighting=capacity_weighting,
        tie_stream=tie_stream,
        cold_start=cold_start,
        negative_gain=negative_gain,
        impl=impl,
        prep=prep,
    )
    mapping = _mapping_from_assignment(assignment, codes)
    achieved = mixing_matrix(table, assignment, k=group_sizes.size)
    return SbmPartResult(
        assignment=assignment,
        mapping=mapping,
        target=target,
        achieved=achieved,
    )
