"""Random matching: the uncorrelated path of Section 4.2.

"In those cases where an edge type is not correlated with any property,
the matching is done randomly."  A random bijection between structure
node ids and PT row ids; also the natural baseline for the matcher
ablation (A1).
"""

from __future__ import annotations

import numpy as np

from ...prng import RandomStream

__all__ = ["random_match"]


def random_match(ptable, table, seed=0):
    """Uniform random bijection from structure nodes to PT rows.

    Requires ``len(ptable) >= table.num_nodes``; surplus rows stay
    unused (they correspond to entities that simply have no edges of
    this type).

    Returns
    -------
    (n,) int64 mapping ``f`` (structure node id -> PT row id).
    """
    n = table.num_nodes
    if len(ptable) < n:
        raise ValueError(
            f"PT {ptable.name!r} has {len(ptable)} rows but the structure "
            f"has {n} nodes"
        )
    stream = RandomStream(seed, f"random_match.{ptable.name}")
    return stream.permutation(len(ptable))[:n]
