"""Shared compile-and-cache helper for optional C inner loops.

Two subsystems embed a C hot loop and call it through ``ctypes``: the
streaming-placement matcher (``core/matching/_ckernel.py``) and the
attribute-generation kernels (``properties/_ckernel.py``).  Both follow
the same zero-install contract — compile with the system ``cc`` on
first use into a per-user cache, and fall back to numpy silently on
any failure — so the machinery lives here once.

Environment knobs (shared by every embedded kernel):

``REPRO_NO_CKERNEL=1``
    disables compiled kernels entirely.
``CC``
    overrides the compiler.
``REPRO_CKERNEL_CACHE``
    sets the shared-object cache directory (default: a per-user
    directory under the system temp dir).
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["compile_cached", "ckernels_disabled"]


def ckernels_disabled():
    """True when the user opted out of compiled kernels."""
    return bool(os.environ.get("REPRO_NO_CKERNEL"))


def _cache_dir():
    configured = os.environ.get("REPRO_CKERNEL_CACHE")
    if configured:
        return Path(configured)
    try:
        user = getpass.getuser()
    except Exception:  # pragma: no cover - exotic hosts
        user = "anon"
    return Path(tempfile.gettempdir()) / f"repro-ckernel-{user}"


def compile_cached(source, prefix):
    """Compile C ``source`` to a cached shared object; return the CDLL.

    The cache key is a hash of the source, so editing the embedded C
    transparently recompiles.  Returns ``None`` when no compiler is on
    PATH; raises on compile errors (callers catch and fall back).
    """
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if not compiler:
        return None
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"{prefix}-{digest}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        src_path = cache / f"{prefix}-{digest}.c"
        src_path.write_text(source)
        fd, tmp_so = tempfile.mkstemp(
            suffix=".so", prefix=f"{prefix}-", dir=cache
        )
        os.close(fd)
        try:
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC",
                 "-o", tmp_so, str(src_path)],
                check=True, capture_output=True, timeout=120,
            )
            os.replace(tmp_so, so_path)
        finally:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
    return ctypes.CDLL(str(so_path))
