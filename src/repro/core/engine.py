"""The generation engine: executes the task DAG (Figure 2).

For each edge type the engine generates node properties and graph
structure independently, then *matches* them (assigning node ids to
structure nodes) to reproduce the requested joint distributions, and
finally generates edge properties — exactly the pipeline of Figure 2.

The engine is deterministic: every task draws from a stream derived
from ``(root seed, task id)``, so regenerating any single table requires
only the seed and the schema — the distributed-generation story of the
paper, which :mod:`repro.core.parallel` exercises explicitly.
"""

from __future__ import annotations

import numpy as np

from ..prng import RandomStream, derive_seed
from ..properties.registry import create_property_generator
from ..structure.registry import create_generator
from ..tables import PropertyTable
from .dependency import DependencyError, build_task_graph
from .matching import (
    bipartite_sbm_part_match,
    random_match,
    sbm_part_match,
)
from .result import PropertyGraph
from .schema import Cardinality, SchemaError

__all__ = ["GraphGenerator"]


class GraphGenerator:
    """Generates property graphs from a schema and a scale spec.

    Parameters
    ----------
    schema:
        :class:`~repro.core.schema.Schema`.
    scale:
        dict of node type -> count and/or edge type -> edge count (at
        least one anchor; everything else is inferred, Section 4.2).
    seed:
        root seed; all randomness derives from it.

    Examples
    --------
    >>> generator = GraphGenerator(schema, {"Person": 1000}, seed=7)
    >>> graph = generator.generate()
    >>> graph.num_nodes("Person")
    1000
    """

    def __init__(self, schema, scale, seed=0):
        self.schema = schema.validate()
        self.scale = dict(scale)
        self.seed = int(seed)
        unknown = [
            name
            for name in self.scale
            if name not in schema.node_types
            and name not in schema.edge_types
        ]
        if unknown:
            raise SchemaError(
                f"scale spec names unknown types: {unknown}"
            )

    # -- planning ------------------------------------------------------------

    def plan(self):
        """The ordered task list (exposed for inspection and tests)."""
        graph = build_task_graph(self.schema, self.scale)
        return graph.topological_order()

    def _stream(self, task_id):
        return RandomStream(derive_seed(self.seed, task_id))

    # -- execution -------------------------------------------------------------

    def generate(self):
        """Run all tasks and return the :class:`PropertyGraph`."""
        result = PropertyGraph(self.schema, self.seed)
        structures = {}  # edge -> ET with structure ids
        generators = {}  # edge -> instantiated SG
        for task in self.plan():
            if task.kind == "count":
                self._run_count(task, result, structures)
            elif task.kind == "property":
                self._run_node_property(task, result)
            elif task.kind == "structure":
                self._run_structure(task, result, structures, generators)
            elif task.kind == "match":
                self._run_match(task, result, structures)
            elif task.kind == "edge_property":
                self._run_edge_property(task, result)
            else:  # pragma: no cover - guarded by build_task_graph
                raise DependencyError(f"unknown task kind {task.kind!r}")
        return result

    # -- task implementations ----------------------------------------------------

    def _run_count(self, task, result, structures):
        name = task.subject
        if name in self.scale:
            result.node_counts[name] = int(self.scale[name])
            return
        # Inferred from a structure task (listed as the dependency).
        for dep in task.depends_on:
            if dep.startswith("structure:"):
                edge_name = dep[len("structure:"):]
                edge = self.schema.edge_type(edge_name)
                table = structures[edge_name]
                if edge.head_type == name:
                    result.node_counts[name] = table.num_head_nodes
                else:
                    result.node_counts[name] = table.num_tail_nodes
                return
        raise DependencyError(
            f"count task for {name!r} has no source"
        )

    def _run_node_property(self, task, result):
        type_name, prop_name = task.subject.split(".", 1)
        node_type = self.schema.node_type(type_name)
        prop = node_type.property_named(prop_name)
        if prop.generator is None:
            raise SchemaError(
                f"{task.subject}: no property generator declared"
            )
        count = result.node_counts[type_name]
        generator = create_property_generator(
            prop.generator.name, **prop.generator.params
        )
        stream = self._stream(task.task_id)
        ids = np.arange(count, dtype=np.int64)
        dep_arrays = [
            result.node_property(type_name, dep).values
            for dep in prop.depends_on
        ]
        values = generator.run_many(ids, stream, *dep_arrays)
        result.node_properties[task.subject] = PropertyTable(
            task.subject, values
        )

    def _structure_size(self, edge, generator, result):
        """Resolve the ``n`` to call ``run`` with (Section 4.2)."""
        if edge.name in self.scale:
            # Scale anchored on the edge count: invert via get_num_nodes
            # ("use the result to size the graph structure and the
            # number of Persons").
            return generator.get_num_nodes(int(self.scale[edge.name]))
        return result.node_counts[edge.tail_type]

    def _run_structure(self, task, result, structures, generators):
        edge = self.schema.edge_type(task.subject)
        if edge.structure is None:
            raise SchemaError(
                f"edge type {edge.name!r}: no structure generator declared"
            )
        sg_seed = derive_seed(self.seed, task.task_id)
        generator = create_generator(
            edge.structure.name, seed=sg_seed, **edge.structure.params
        )
        generators[edge.name] = generator
        n = self._structure_size(edge, generator, result)
        structures[edge.name] = generator.run(n)

    def _align_joint(self, joint, categories, values):
        """Reorder a joint's matrix into sorted-category order.

        The declared joint may cover values that happen not to occur in
        the generated PT (small scale factors); those rows/columns are
        dropped and the matrix renormalised.  Observed values missing
        from the declaration are an error.
        """
        from ..stats import JointDistribution

        if values is None:
            return joint
        values = list(values)
        position = {v: i for i, v in enumerate(values)}
        unknown = [c for c in categories if c not in position]
        if unknown:
            raise SchemaError(
                "property values not covered by the correlation "
                f"declaration: {unknown!r}"
            )
        perm = np.array(
            [position[c] for c in categories], dtype=np.int64
        )
        matrix = np.asarray(
            joint.matrix if isinstance(joint, JointDistribution) else joint,
            dtype=np.float64,
        )
        reordered = matrix[np.ix_(perm, perm)]
        if reordered.sum() <= 0:
            raise SchemaError(
                "correlation joint has no mass on the observed values"
            )
        if isinstance(joint, JointDistribution):
            return JointDistribution(reordered)
        return reordered / reordered.sum()

    def _run_match(self, task, result, structures):
        edge = self.schema.edge_type(task.subject)
        structure = structures[edge.name]
        stream = self._stream(task.task_id)
        corr = edge.correlation

        if edge.cardinality in (
            Cardinality.ONE_TO_MANY, Cardinality.ONE_TO_ONE
        ):
            # Strict-cardinality edges: tails are matched to tail-type
            # ids (randomly — a permutation preserves the degree
            # distribution), heads keep identity (they *define* the head
            # instances).
            n_tail = result.node_counts[edge.tail_type]
            if structure.num_tail_nodes > n_tail:
                raise SchemaError(
                    f"edge {edge.name!r}: structure has more tails than "
                    f"{edge.tail_type!r} instances"
                )
            perm = stream.substream("tails").permutation(n_tail)
            tail_map = perm[:structure.num_tail_nodes]
            head_map = np.arange(
                structure.num_head_nodes, dtype=np.int64
            )
            final = structure.relabeled(tail_map, head_map)
            result.edge_tables[edge.name] = final
            result.match_results[edge.name] = None
            return

        if not edge.is_monopartite:
            if corr is None or corr.head_property is None:
                # Uncorrelated bipartite many-to-many: permute each side.
                tail_map = stream.substream("tails").permutation(
                    result.node_counts[edge.tail_type]
                )[:structure.num_tail_nodes]
                head_map = stream.substream("heads").permutation(
                    result.node_counts[edge.head_type]
                )[:structure.num_head_nodes]
                result.edge_tables[edge.name] = structure.relabeled(
                    tail_map, head_map
                )
                result.match_results[edge.name] = None
                return
            tail_pt = result.node_property(
                edge.tail_type, corr.tail_property
            )
            head_pt = result.node_property(
                edge.head_type, corr.head_property
            )
            match = bipartite_sbm_part_match(
                tail_pt,
                head_pt,
                np.asarray(corr.joint, dtype=np.float64),
                structure,
                order=stream.substream("arrival").permutation(
                    structure.num_tail_nodes + structure.num_head_nodes
                ),
            )
            result.edge_tables[edge.name] = structure.relabeled(
                match.tail_mapping, match.head_mapping
            )
            result.match_results[edge.name] = match
            return

        # Monopartite many-to-many.
        n = result.node_counts[edge.tail_type]
        if structure.num_nodes > n:
            raise SchemaError(
                f"edge {edge.name!r}: structure has {structure.num_nodes}"
                f" nodes but {edge.tail_type!r} has {n} instances"
            )
        if corr is None:
            pt_ids = PropertyTable(edge.name, np.arange(n, dtype=np.int64))
            mapping = random_match(
                pt_ids, structure, seed=derive_seed(self.seed, task.task_id)
            )
            result.edge_tables[edge.name] = structure.relabeled(mapping)
            result.match_results[edge.name] = None
            return
        pt = result.node_property(edge.tail_type, corr.tail_property)
        _, categories = pt.codes()
        joint = self._align_joint(corr.joint, list(categories), corr.values)
        match = sbm_part_match(
            pt,
            joint,
            structure,
            order=stream.substream("arrival").permutation(
                structure.num_nodes
            ),
            tie_stream=stream.substream("ties"),
        )
        result.edge_tables[edge.name] = structure.relabeled(match.mapping)
        result.match_results[edge.name] = match

    def _run_edge_property(self, task, result):
        edge_name, prop_name = task.subject.split(".", 1)
        edge = self.schema.edge_type(edge_name)
        prop = edge.property_named(prop_name)
        if prop.generator is None:
            raise SchemaError(
                f"{task.subject}: no property generator declared"
            )
        table = result.edge_tables[edge_name]
        generator = create_property_generator(
            prop.generator.name, **prop.generator.params
        )
        stream = self._stream(task.task_id)
        ids = np.arange(len(table), dtype=np.int64)
        dep_arrays = []
        for dep in prop.depends_on:
            if dep.startswith("tail."):
                pt = result.node_property(
                    edge.tail_type, dep[len("tail."):]
                )
                dep_arrays.append(pt.gather(table.tails))
            elif dep.startswith("head."):
                pt = result.node_property(
                    edge.head_type, dep[len("head."):]
                )
                dep_arrays.append(pt.gather(table.heads))
            else:
                dep_arrays.append(
                    result.edge_property(edge_name, dep).values
                )
        values = generator.run_many(ids, stream, *dep_arrays)
        result.edge_properties[task.subject] = PropertyTable(
            task.subject, values
        )
