"""The generation engine: executes the task DAG (Figure 2).

For each edge type the engine generates node properties and graph
structure independently, then *matches* them (assigning node ids to
structure nodes) to reproduce the requested joint distributions, and
finally generates edge properties — exactly the pipeline of Figure 2.

The engine is deterministic: every task draws from a stream derived
from ``(root seed, task id)``, so regenerating any single table requires
only the seed and the schema — the distributed-generation story of the
paper.  The task bodies themselves live in :mod:`repro.core.tasks` as
pure functions; the serial path below and the shard-parallel
:mod:`repro.core.executor` are two schedulers over the same
implementations, which is why ``generate(workers=k)`` is bit-identical
to ``generate()`` for every ``k`` (see DESIGN.md).
"""

from __future__ import annotations

from .dependency import build_task_graph
from .result import PropertyGraph
from .schema import SchemaError
from .tasks import apply_task, export_task_output

__all__ = ["GraphGenerator"]


class GraphGenerator:
    """Generates property graphs from a schema and a scale spec.

    Parameters
    ----------
    schema:
        :class:`~repro.core.schema.Schema`.
    scale:
        dict of node type -> count and/or edge type -> edge count (at
        least one anchor; everything else is inferred, Section 4.2).
    seed:
        root seed; all randomness derives from it.
    workers:
        default worker count for :meth:`generate`; ``1`` (the default)
        runs the serial in-process path, ``> 1`` dispatches the task
        DAG to a process pool via
        :class:`~repro.core.executor.ParallelExecutor`.

    Examples
    --------
    >>> from repro.datasets import social_network_schema
    >>> schema = social_network_schema(num_countries=8)
    >>> generator = GraphGenerator(schema, {"Person": 500}, seed=7)
    >>> graph = generator.generate()
    >>> graph.num_nodes("Person")
    500
    >>> graph.num_nodes("Message") == graph.num_edges("creates")
    True
    """

    def __init__(self, schema, scale, seed=0, workers=1):
        self.schema = schema.validate()
        self.scale = dict(scale)
        self.seed = int(seed)
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        unknown = [
            name
            for name in self.scale
            if name not in schema.node_types
            and name not in schema.edge_types
        ]
        if unknown:
            raise SchemaError(
                f"scale spec names unknown types: {unknown}"
            )

    # -- planning ------------------------------------------------------------

    def plan(self):
        """The ordered task list (exposed for inspection and tests)."""
        graph = build_task_graph(self.schema, self.scale)
        return graph.topological_order()

    # -- execution -------------------------------------------------------------

    def generate(self, workers=None, sink=None):
        """Run all tasks and return the :class:`PropertyGraph`.

        ``workers`` overrides the constructor default for this call.
        Any worker count produces bit-identical output; ``workers > 1``
        simply runs independent tasks (and id-range shards of large
        property tables) concurrently.

        ``sink`` streams the graph to disk *while it is generated*: a
        :class:`~repro.io.streaming.GraphSink` receives each completed
        table in serial plan order and writes it in id-range chunks,
        producing bytes identical to exporting the finished graph (and
        identical for every worker count).
        """
        workers = self.workers if workers is None else int(workers)
        if workers > 1:
            from .executor import ParallelExecutor

            return ParallelExecutor(
                self.schema, self.scale, self.seed, workers=workers
            ).run(sink=sink)
        result = PropertyGraph(self.schema, self.seed)
        structures = {}  # edge -> ET with structure ids (pre-matching)
        if sink is not None:
            sink.begin(result)
        for task in self.plan():
            apply_task(
                task, self.schema, self.scale, self.seed,
                result, structures,
            )
            export_task_output(task, sink)
        if sink is not None:
            sink.finish()
        return result
