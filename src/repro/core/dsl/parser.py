"""Recursive-descent parser for the schema DSL.

Grammar (EBNF-ish)::

    graph       := "graph" NAME "{" item* "}"
    item        := node | edge | scale
    node        := "node" NAME "{" property* "}"
    edge        := "edge" NAME ":" NAME ("--" | "->") NAME
                   "[" cardinality "]" "{" edge_item* "}"
    cardinality := ("1" | "*") ".." ("1" | "*")
    edge_item   := structure | correlate | property
    structure   := "structure" "=" call
    correlate   := "correlate" NAME ("with" NAME)? "joint" expr
                   ("values" expr)?
    property    := NAME ":" NAME ("=" call)? ("depends" "(" deps ")")?
    deps        := dep ("," dep)*       dep := NAME ("." NAME)?
    call        := NAME "(" (NAME "=" expr ("," NAME "=" expr)*)? ")"
    expr        := STRING | NUMBER | BOOL | "@" NAME | list
    list        := "[" (expr ("," expr)*)? "]"
    scale       := "scale" "{" (NAME "=" NUMBER)* "}"
"""

from __future__ import annotations

from .ast_nodes import (
    CallNode,
    CorrelationNode,
    EdgeNode,
    GraphNode,
    ListNode,
    LiteralNode,
    NodeTypeNode,
    PropertyNode,
    RefNode,
    ScaleNode,
)
from .errors import DslSyntaxError
from .tokenizer import tokenize

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.position + offset,
                               len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def error(self, message, token=None):
        token = token or self.peek()
        raise DslSyntaxError(
            f"{message} (found {token.describe()})",
            token.line,
            token.column,
        )

    def expect(self, kind, value=None):
        token = self.peek()
        if token.kind != kind or (value is not None
                                  and token.value != value):
            wanted = value if value is not None else kind
            self.error(f"expected {wanted!r}", token)
        return self.advance()

    def accept(self, kind, value=None):
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect_word(self):
        """A NAME or keyword used as a plain identifier (kwarg keys,
        scale entries, dependency segments)."""
        token = self.peek()
        if token.kind in ("NAME", "KEYWORD"):
            self.advance()
            return token.value
        self.error("expected an identifier", token)

    # -- grammar -----------------------------------------------------------

    def parse_graph(self):
        self.expect("KEYWORD", "graph")
        name = self.expect("NAME").value
        self.expect("LBRACE")
        graph = GraphNode(name)
        while not self.accept("RBRACE"):
            token = self.peek()
            if token.kind == "KEYWORD" and token.value == "node":
                graph.node_types.append(self.parse_node())
            elif token.kind == "KEYWORD" and token.value == "edge":
                graph.edge_types.append(self.parse_edge())
            elif token.kind == "KEYWORD" and token.value == "scale":
                if graph.scale is not None:
                    self.error("duplicate scale block", token)
                graph.scale = self.parse_scale()
            else:
                self.error("expected node, edge or scale", token)
        self.expect("EOF")
        return graph

    def parse_node(self):
        self.expect("KEYWORD", "node")
        name = self.expect("NAME").value
        self.expect("LBRACE")
        node = NodeTypeNode(name)
        while not self.accept("RBRACE"):
            node.properties.append(self.parse_property())
        return node

    def parse_edge(self):
        self.expect("KEYWORD", "edge")
        name = self.expect("NAME").value
        self.expect("COLON")
        tail = self.expect("NAME").value
        arrow = self.peek()
        if arrow.kind == "UNDIRECTED":
            directed = False
        elif arrow.kind == "DIRECTED":
            directed = True
        else:
            self.error("expected -- or ->", arrow)
        self.advance()
        head = self.expect("NAME").value
        self.expect("LBRACKET")
        cardinality = self.parse_cardinality()
        self.expect("RBRACKET")
        self.expect("LBRACE")
        edge = EdgeNode(name, tail, head, directed, cardinality)
        while not self.accept("RBRACE"):
            token = self.peek()
            if token.kind == "KEYWORD" and token.value == "structure":
                if edge.structure is not None:
                    self.error("duplicate structure clause", token)
                self.advance()
                self.expect("EQUALS")
                edge.structure = self.parse_call()
            elif token.kind == "KEYWORD" and token.value == "correlate":
                if edge.correlation is not None:
                    self.error("duplicate correlate clause", token)
                edge.correlation = self.parse_correlate()
            else:
                edge.properties.append(self.parse_property())
        return edge

    def parse_cardinality(self):
        def side():
            token = self.peek()
            if token.kind == "STAR":
                self.advance()
                return "*"
            if token.kind == "NUMBER" and token.value == 1:
                self.advance()
                return "1"
            self.error("expected 1 or *", token)

        left = side()
        self.expect("RANGE")
        right = side()
        return f"{left}..{right}"

    def parse_correlate(self):
        self.expect("KEYWORD", "correlate")
        tail_prop = self.expect("NAME").value
        head_prop = None
        if self.accept("KEYWORD", "with"):
            head_prop = self.expect("NAME").value
        self.expect("KEYWORD", "joint")
        joint = self.parse_expr()
        values = None
        if self.accept("KEYWORD", "values"):
            values = self.parse_expr()
        return CorrelationNode(tail_prop, joint, head_prop, values)

    def parse_property(self):
        name_token = self.peek()
        if name_token.kind == "KEYWORD":
            # Allow keyword-looking property names only where unambiguous.
            self.error("unexpected keyword", name_token)
        name = self.expect("NAME").value
        self.expect("COLON")
        dtype = self.expect("NAME").value
        generator = None
        if self.accept("EQUALS"):
            generator = self.parse_call()
        depends = []
        if self.accept("KEYWORD", "depends"):
            self.expect("LPAREN")
            depends.append(self.parse_dependency())
            while self.accept("COMMA"):
                depends.append(self.parse_dependency())
            self.expect("RPAREN")
        return PropertyNode(name, dtype, generator, depends)

    def parse_dependency(self):
        base = self.expect_word()
        if self.accept("DOT"):
            suffix = self.expect_word()
            return f"{base}.{suffix}"
        return base

    def parse_call(self):
        name = self.expect("NAME").value
        self.expect("LPAREN")
        kwargs = {}
        if not self.accept("RPAREN"):
            while True:
                key = self.expect_word()
                self.expect("EQUALS")
                if key in kwargs:
                    self.error(f"duplicate argument {key!r}")
                kwargs[key] = self.parse_expr()
                if self.accept("RPAREN"):
                    break
                self.expect("COMMA")
        return CallNode(name, kwargs)

    def parse_expr(self):
        token = self.peek()
        if token.kind == "STRING" or token.kind == "NUMBER" \
                or token.kind == "BOOL":
            self.advance()
            return LiteralNode(token.value)
        if token.kind == "AT":
            self.advance()
            name = self.expect_word()
            return RefNode(name)
        if token.kind == "LBRACKET":
            self.advance()
            items = []
            if not self.accept("RBRACKET"):
                items.append(self.parse_expr())
                while self.accept("COMMA"):
                    items.append(self.parse_expr())
                self.expect("RBRACKET")
            return ListNode(items)
        self.error("expected a value", token)

    def parse_scale(self):
        self.expect("KEYWORD", "scale")
        self.expect("LBRACE")
        scale = ScaleNode()
        while not self.accept("RBRACE"):
            name = self.expect_word()
            self.expect("EQUALS")
            count = self.expect("NUMBER").value
            if not isinstance(count, int) or count < 0:
                self.error("scale counts must be nonnegative integers")
            if name in scale.entries:
                self.error(f"duplicate scale entry {name!r}")
            scale.entries[name] = count
        return scale


def parse(text):
    """Parse DSL source into a :class:`GraphNode` AST."""
    return _Parser(tokenize(text)).parse_graph()
