"""Tokenizer for the DataSynth schema DSL.

The DSL is a small curly-brace language (see :mod:`repro.core.dsl` for
the grammar).  The tokenizer produces a flat list of
:class:`Token` with line/column positions for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import DslSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "graph",
    "node",
    "edge",
    "structure",
    "correlate",
    "joint",
    "with",
    "depends",
    "scale",
    "true",
    "false",
    "values",
}

_PUNCTUATION = {
    "{": "LBRACE",
    "}": "RBRACE",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ":": "COLON",
    "=": "EQUALS",
    ",": "COMMA",
    "@": "AT",
    ".": "DOT",
    "*": "STAR",
}


@dataclass(frozen=True)
class Token:
    """One lexical unit: ``kind`` is NAME/KEYWORD/STRING/NUMBER/...,
    ``value`` the decoded payload."""

    kind: str
    value: object
    line: int
    column: int

    def describe(self):
        return f"{self.kind}({self.value!r})"


def tokenize(text):
    """Convert DSL source text to a token list (EOF token appended)."""
    tokens = []
    line = 1
    column = 1
    i = 0
    length = len(text)

    def error(message):
        raise DslSyntaxError(message, line, column)

    while i < length:
        ch = text[i]
        # Whitespace / newlines.
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # Comments: '#' or '//' to end of line.
        if ch == "#" or text.startswith("//", i):
            while i < length and text[i] != "\n":
                i += 1
            continue
        # Arrows and ranges.
        if text.startswith("--", i):
            tokens.append(Token("UNDIRECTED", "--", line, column))
            i += 2
            column += 2
            continue
        if text.startswith("->", i):
            tokens.append(Token("DIRECTED", "->", line, column))
            i += 2
            column += 2
            continue
        if text.startswith("..", i):
            tokens.append(Token("RANGE", "..", line, column))
            i += 2
            column += 2
            continue
        # Strings.
        if ch in "'\"":
            quote = ch
            start_line, start_col = line, column
            i += 1
            column += 1
            chars = []
            while i < length and text[i] != quote:
                if text[i] == "\n":
                    raise DslSyntaxError(
                        "unterminated string", start_line, start_col
                    )
                if text[i] == "\\" and i + 1 < length:
                    escape = text[i + 1]
                    mapped = {"n": "\n", "t": "\t", quote: quote,
                              "\\": "\\"}.get(escape)
                    if mapped is None:
                        raise DslSyntaxError(
                            f"bad escape \\{escape}", line, column
                        )
                    chars.append(mapped)
                    i += 2
                    column += 2
                    continue
                chars.append(text[i])
                i += 1
                column += 1
            if i >= length:
                raise DslSyntaxError(
                    "unterminated string", start_line, start_col
                )
            i += 1
            column += 1
            tokens.append(
                Token("STRING", "".join(chars), start_line, start_col)
            )
            continue
        # Numbers (ints, floats, scientific, leading minus).
        if ch.isdigit() or (
            ch == "-" and i + 1 < length and (text[i + 1].isdigit()
                                              or text[i + 1] == ".")
        ):
            start = i
            start_col = column
            i += 1
            column += 1
            is_float = False
            while i < length and (
                text[i].isdigit()
                or (text[i] == "." and not text.startswith("..", i))
                or text[i] in "eE"
                or (text[i] in "+-" and text[i - 1] in "eE")
            ):
                if text[i] == "." or text[i] in "eE":
                    is_float = True
                i += 1
                column += 1
            literal = text[start:i]
            try:
                value = float(literal) if is_float else int(literal)
            except ValueError:
                raise DslSyntaxError(
                    f"bad number literal {literal!r}", line, start_col
                ) from None
            tokens.append(Token("NUMBER", value, line, start_col))
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
                column += 1
            word = text[start:i]
            if word in ("true", "false"):
                tokens.append(
                    Token("BOOL", word == "true", line, start_col)
                )
            elif word in KEYWORDS:
                tokens.append(Token("KEYWORD", word, line, start_col))
            else:
                tokens.append(Token("NAME", word, line, start_col))
            continue
        # Punctuation.
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
            i += 1
            column += 1
            continue
        error(f"unexpected character {ch!r}")
    tokens.append(Token("EOF", None, line, column))
    return tokens
