"""The DataSynth schema DSL.

A small curly-brace language covering all the requirements of Section 2
(schema, structure, distributions, scale factor).  Example::

    graph social {
      node Person {
        country: string = categorical(values=@countries,
                                      weights=@weights)
        sex:     string = categorical(values=["female", "male"])
        name:    string = conditional(table=@names) depends (country, sex)
        creationDate: date = date_range(start=1262304000,
                                        end=1483228800)
      }
      node Message {
        topic: string = weighted_dict(values=@topics)
      }
      edge knows: Person -- Person [*..*] {
        structure = lfr(avg_degree=20, max_degree=50, mu=0.1)
        correlate country joint @country_joint values @countries
        creationDate: date = after_dependency(min_gap=1)
            depends (tail.creationDate, head.creationDate)
      }
      edge creates: Person -> Message [1..*] {
        structure = one_to_many(degree_distribution=@d_creates)
        creationDate: date = after_dependency(min_gap=1)
            depends (tail.creationDate)
      }
      scale { Person = 10000 }
    }

``@name`` references resolve against the environment dict passed to
:func:`load_schema` — the channel for non-literal parameters such as
distribution objects and joint matrices.
"""

from .compiler import compile_schema, load_schema
from .errors import DslCompileError, DslError, DslSyntaxError
from .parser import parse
from .tokenizer import Token, tokenize

__all__ = [
    "DslCompileError",
    "DslError",
    "DslSyntaxError",
    "Token",
    "compile_schema",
    "load_schema",
    "parse",
    "tokenize",
]
