"""AST node dataclasses for the schema DSL."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CallNode",
    "CorrelationNode",
    "EdgeNode",
    "GraphNode",
    "ListNode",
    "LiteralNode",
    "NodeTypeNode",
    "PropertyNode",
    "RefNode",
    "ScaleNode",
]


@dataclass
class LiteralNode:
    """A literal value: string, number, or boolean."""

    value: object


@dataclass
class RefNode:
    """An ``@name`` reference into the compile-time environment."""

    name: str


@dataclass
class ListNode:
    """A ``[item, item, ...]`` literal list."""

    items: list


@dataclass
class CallNode:
    """A generator invocation ``name(key=value, ...)``."""

    name: str
    kwargs: dict = field(default_factory=dict)


@dataclass
class PropertyNode:
    """A property declaration inside a node or edge block."""

    name: str
    dtype: str
    generator: CallNode | None
    depends_on: list = field(default_factory=list)


@dataclass
class NodeTypeNode:
    """A ``node Name { ... }`` block."""

    name: str
    properties: list = field(default_factory=list)


@dataclass
class CorrelationNode:
    """``correlate prop [with head_prop] joint <expr>``."""

    tail_property: str
    joint: object
    head_property: str | None = None
    values: object = None


@dataclass
class EdgeNode:
    """An ``edge name: Tail --/-> Head [card] { ... }`` block."""

    name: str
    tail_type: str
    head_type: str
    directed: bool
    cardinality: str
    structure: CallNode | None = None
    correlation: CorrelationNode | None = None
    properties: list = field(default_factory=list)


@dataclass
class ScaleNode:
    """A ``scale { Type = count, ... }`` block."""

    entries: dict = field(default_factory=dict)


@dataclass
class GraphNode:
    """The root: ``graph name { ... }``."""

    name: str
    node_types: list = field(default_factory=list)
    edge_types: list = field(default_factory=list)
    scale: ScaleNode | None = None
