"""Lower the DSL AST to a :class:`~repro.core.schema.Schema` + scale.

Generator names in calls are validated against the PG / SG registries
at compile time, so typos surface with the offending name rather than
at generation time.  ``@name`` references resolve against a caller-
supplied *environment* dict — the mechanism for passing non-literal
parameters (distribution objects, joint matrices, dictionaries) into
the textual schema.
"""

from __future__ import annotations

from ...properties.registry import available_property_generators
from ...structure.registry import available_generators
from ..schema import (
    Cardinality,
    CorrelationSpec,
    EdgeType,
    GeneratorSpec,
    NodeType,
    PropertyDef,
    Schema,
)
from .ast_nodes import CallNode, ListNode, LiteralNode, RefNode
from .errors import DslCompileError
from .parser import parse

__all__ = ["compile_schema", "load_schema"]


def _evaluate(expr, environment):
    """Evaluate an expression node to a Python value."""
    if isinstance(expr, LiteralNode):
        return expr.value
    if isinstance(expr, RefNode):
        if expr.name not in environment:
            raise DslCompileError(
                f"unresolved reference @{expr.name}; "
                f"available: {sorted(environment)}"
            )
        return environment[expr.name]
    if isinstance(expr, ListNode):
        return [_evaluate(item, environment) for item in expr.items]
    raise DslCompileError(f"cannot evaluate {type(expr).__name__}")


def _compile_call(call, environment, registry, kind):
    if call.name not in registry:
        raise DslCompileError(
            f"unknown {kind} generator {call.name!r}; "
            f"available: {sorted(registry)}"
        )
    params = {
        key: _evaluate(value, environment)
        for key, value in call.kwargs.items()
    }
    return GeneratorSpec(call.name, params)


def compile_schema(ast, environment=None):
    """Compile a parsed AST into ``(schema, scale_dict, graph_name)``."""
    environment = dict(environment or {})
    pg_registry = available_property_generators()
    sg_registry = available_generators()

    node_types = []
    for node_ast in ast.node_types:
        properties = []
        for prop_ast in node_ast.properties:
            generator = None
            if prop_ast.generator is not None:
                generator = _compile_call(
                    prop_ast.generator, environment, pg_registry,
                    "property",
                )
            properties.append(
                PropertyDef(
                    prop_ast.name,
                    prop_ast.dtype,
                    generator,
                    tuple(prop_ast.depends_on),
                )
            )
        node_types.append(NodeTypeNodeFactory(node_ast.name, properties))

    edge_types = []
    for edge_ast in ast.edge_types:
        structure = None
        if edge_ast.structure is not None:
            structure = _compile_call(
                edge_ast.structure, environment, sg_registry, "structure"
            )
        correlation = None
        if edge_ast.correlation is not None:
            corr_ast = edge_ast.correlation
            joint = _evaluate(corr_ast.joint, environment)
            values = (
                tuple(_evaluate(corr_ast.values, environment))
                if corr_ast.values is not None
                else None
            )
            correlation = CorrelationSpec(
                tail_property=corr_ast.tail_property,
                joint=joint,
                head_property=corr_ast.head_property,
                values=values,
            )
        properties = []
        for prop_ast in edge_ast.properties:
            generator = None
            if prop_ast.generator is not None:
                generator = _compile_call(
                    prop_ast.generator, environment, pg_registry,
                    "property",
                )
            properties.append(
                PropertyDef(
                    prop_ast.name,
                    prop_ast.dtype,
                    generator,
                    tuple(prop_ast.depends_on),
                )
            )
        edge_types.append(
            EdgeType(
                edge_ast.name,
                tail_type=edge_ast.tail_type,
                head_type=edge_ast.head_type,
                cardinality=Cardinality.parse(edge_ast.cardinality),
                structure=structure,
                properties=properties,
                correlation=correlation,
                directed=edge_ast.directed,
            )
        )

    schema = Schema(node_types=node_types, edge_types=edge_types)
    scale = dict(ast.scale.entries) if ast.scale else {}
    for name in scale:
        if name not in schema.node_types and name not in schema.edge_types:
            raise DslCompileError(
                f"scale entry {name!r} names no declared type"
            )
    return schema, scale, ast.name


def NodeTypeNodeFactory(name, properties):
    """Indirection kept for monkeypatching in tests."""
    return NodeType(name, properties)


def load_schema(text, environment=None):
    """Parse + compile DSL source text.

    Returns ``(schema, scale, graph_name)``.
    """
    return compile_schema(parse(text), environment)
