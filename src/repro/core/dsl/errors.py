"""DSL error types with source positions."""

from __future__ import annotations

__all__ = ["DslError", "DslSyntaxError", "DslCompileError"]


class DslError(ValueError):
    """Base class for DSL failures."""


class DslSyntaxError(DslError):
    """Tokenizer/parser failure, annotated with line and column."""

    def __init__(self, message, line, column):
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class DslCompileError(DslError):
    """Semantic failure while lowering the AST to a Schema."""
