"""Property graph schema model (the *schema* requirement of Section 2).

A schema declares node types, edge types, their properties, and edge
cardinalities, mirroring the running example of Figure 1:

    Person  (name, country, interest, sex, creationDate)
    Message (topic, text)
    knows:   Person *--* Person   (creationDate)
    creates: Person 1--* Message  (creationDate)

Property declarations bind a generator spec (the PG and its parameters,
plus the properties it depends on); edge declarations bind a structure
generator spec and optionally a property-structure correlation (the
property whose joint with itself — or with the other endpoint type's
property for bipartite edges — must be reproduced by matching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "Cardinality",
    "CorrelationSpec",
    "EdgeType",
    "GeneratorSpec",
    "NodeType",
    "PropertyDef",
    "Schema",
    "SchemaError",
]


class SchemaError(ValueError):
    """Raised for inconsistent schema declarations."""


class Cardinality(Enum):
    """Edge cardinality classes of the paper (1→1, 1→*, *→*)."""

    ONE_TO_ONE = "1..1"
    ONE_TO_MANY = "1..*"
    MANY_TO_MANY = "*..*"

    @classmethod
    def parse(cls, text):
        """Parse ``"1..1" | "1..*" | "*..*"`` (also accepts ``->`` arrows)."""
        normalized = str(text).strip().replace("->", "..").replace("→", "..")
        for member in cls:
            if member.value == normalized:
                return member
        raise SchemaError(f"unknown cardinality {text!r}")


@dataclass
class GeneratorSpec:
    """A named generator binding: ``name`` resolved in a registry plus
    keyword parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise SchemaError("generator spec needs a name")


@dataclass
class PropertyDef:
    """A property of a node or edge type.

    Attributes
    ----------
    name:
        property name, unique within its owner type.
    dtype:
        logical type tag ("string", "long", "double", "date", "bool").
    generator:
        :class:`GeneratorSpec` of the PG producing the values.
    depends_on:
        names of sibling properties whose values feed the PG's ``run``
        as the optional trailing arguments (conditional distributions:
        ``P(name | sex, country)`` in the running example).
    """

    name: str
    dtype: str = "string"
    generator: GeneratorSpec | None = None
    depends_on: tuple = ()

    _VALID_DTYPES = ("string", "long", "double", "date", "bool")

    def __post_init__(self):
        if not self.name:
            raise SchemaError("property needs a name")
        if self.dtype not in self._VALID_DTYPES:
            raise SchemaError(
                f"property {self.name!r}: unknown dtype {self.dtype!r}; "
                f"expected one of {self._VALID_DTYPES}"
            )
        self.depends_on = tuple(self.depends_on)


@dataclass
class NodeType:
    """A node type with its property list."""

    name: str
    properties: list = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise SchemaError("node type needs a name")
        seen = set()
        for prop in self.properties:
            if prop.name in seen:
                raise SchemaError(
                    f"node type {self.name!r}: duplicate property "
                    f"{prop.name!r}"
                )
            seen.add(prop.name)

    def property_named(self, name):
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise SchemaError(
            f"node type {self.name!r} has no property {name!r}"
        )

    def property_names(self):
        return [prop.name for prop in self.properties]


@dataclass
class CorrelationSpec:
    """Property-structure correlation request for an edge type.

    ``tail_property`` (and ``head_property`` for bipartite edges) name
    endpoint-type properties; ``joint`` is a
    :class:`~repro.stats.JointDistribution` (monopartite) or a raw
    ``(k_tail, k_head)`` matrix (bipartite).  The category order of the
    joint is the *sorted unique values* of the property table unless
    ``values`` pins an explicit order.
    """

    tail_property: str
    joint: object
    head_property: str | None = None
    values: tuple | None = None
    head_values: tuple | None = None


@dataclass
class EdgeType:
    """An edge type: endpoints, cardinality, SG binding, properties."""

    name: str
    tail_type: str
    head_type: str
    cardinality: Cardinality = Cardinality.MANY_TO_MANY
    structure: GeneratorSpec | None = None
    properties: list = field(default_factory=list)
    correlation: CorrelationSpec | None = None
    directed: bool = False

    def __post_init__(self):
        if not self.name:
            raise SchemaError("edge type needs a name")
        seen = set()
        for prop in self.properties:
            if prop.name in seen:
                raise SchemaError(
                    f"edge type {self.name!r}: duplicate property "
                    f"{prop.name!r}"
                )
            seen.add(prop.name)

    @property
    def is_monopartite(self):
        return self.tail_type == self.head_type

    def property_named(self, name):
        for prop in self.properties:
            if prop.name == name:
                return prop
        raise SchemaError(
            f"edge type {self.name!r} has no property {name!r}"
        )


class Schema:
    """A validated property-graph schema.

    Parameters
    ----------
    node_types, edge_types:
        declarations; validated for referential integrity (edge endpoint
        types exist, dependency references exist, no dependency cycles
        within a type's properties).
    """

    def __init__(self, node_types=(), edge_types=()):
        self.node_types = {}
        self.edge_types = {}
        for node_type in node_types:
            self.add_node_type(node_type)
        for edge_type in edge_types:
            self.add_edge_type(edge_type)

    # -- construction -----------------------------------------------------

    def add_node_type(self, node_type):
        if node_type.name in self.node_types:
            raise SchemaError(f"duplicate node type {node_type.name!r}")
        if node_type.name in self.edge_types:
            raise SchemaError(
                f"{node_type.name!r} already names an edge type"
            )
        self._check_property_dependencies(node_type)
        self.node_types[node_type.name] = node_type
        return node_type

    def add_edge_type(self, edge_type):
        if edge_type.name in self.edge_types:
            raise SchemaError(f"duplicate edge type {edge_type.name!r}")
        if edge_type.name in self.node_types:
            raise SchemaError(
                f"{edge_type.name!r} already names a node type"
            )
        for side, type_name in (
            ("tail", edge_type.tail_type),
            ("head", edge_type.head_type),
        ):
            if type_name not in self.node_types:
                raise SchemaError(
                    f"edge type {edge_type.name!r}: {side} type "
                    f"{type_name!r} is not declared"
                )
        if edge_type.correlation is not None:
            corr = edge_type.correlation
            tail = self.node_types[edge_type.tail_type]
            tail.property_named(corr.tail_property)
            if corr.head_property is not None:
                head = self.node_types[edge_type.head_type]
                head.property_named(corr.head_property)
            elif not edge_type.is_monopartite:
                raise SchemaError(
                    f"edge type {edge_type.name!r}: bipartite correlation "
                    "needs both tail_property and head_property"
                )
        self.edge_types[edge_type.name] = edge_type
        return edge_type

    @staticmethod
    def _check_property_dependencies(owner):
        """Reject missing or cyclic intra-type property dependencies."""
        names = {prop.name for prop in owner.properties}
        for prop in owner.properties:
            for dep in prop.depends_on:
                if dep not in names:
                    raise SchemaError(
                        f"{owner.name}.{prop.name} depends on unknown "
                        f"property {dep!r}"
                    )
        # Cycle detection by iterative colouring.
        state = {}  # name -> 0 visiting, 1 done
        graph = {
            prop.name: list(prop.depends_on) for prop in owner.properties
        }

        def visit(name, stack):
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(stack + [name])
                raise SchemaError(
                    f"{owner.name}: property dependency cycle: {cycle}"
                )
            state[name] = 0
            for dep in graph[name]:
                visit(dep, stack + [name])
            state[name] = 1

        for prop in owner.properties:
            visit(prop.name, [])

    # -- lookups -------------------------------------------------------------

    def node_type(self, name):
        if name not in self.node_types:
            raise SchemaError(f"unknown node type {name!r}")
        return self.node_types[name]

    def edge_type(self, name):
        if name not in self.edge_types:
            raise SchemaError(f"unknown edge type {name!r}")
        return self.edge_types[name]

    def validate(self):
        """Re-run all cross-references; returns self for chaining."""
        for edge_type in self.edge_types.values():
            if edge_type.tail_type not in self.node_types:
                raise SchemaError(
                    f"edge {edge_type.name!r}: missing tail type"
                )
            if edge_type.head_type not in self.node_types:
                raise SchemaError(
                    f"edge {edge_type.name!r}: missing head type"
                )
        for node_type in self.node_types.values():
            self._check_property_dependencies(node_type)
        return self

    def __repr__(self):
        return (
            f"Schema(nodes={sorted(self.node_types)}, "
            f"edges={sorted(self.edge_types)})"
        )
